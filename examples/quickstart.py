#!/usr/bin/env python3
"""Quickstart: recognize HPC applications from 2 minutes of one metric.

Walks the full EFD pipeline from the paper:

1. generate a labeled dataset (the synthetic stand-in for the public
   Taxonomist dataset — 11 applications, inputs X/Y/Z(+L), 4 nodes),
2. learn an Execution Fingerprint Dictionary (rounding depth tuned by
   cross-validation inside the training set),
3. recognize held-out executions from the [60 s, 120 s] interval of the
   single metric ``nr_mapped_vmstat``,
4. peek inside the dictionary (the paper's Table 4 view).

Run:  python examples/quickstart.py
"""

from repro import EFDRecognizer, generate_dataset
from repro.data.splits import kfold_splits
from repro.experiments.tables import example_efd, render_table4


def main() -> None:
    print("=== 1. Generate the evaluation dataset (Table 2 shape) ===")
    dataset = generate_dataset(repetitions=6, seed=42)
    summary = dataset.summary()
    print(
        f"{summary['executions']} executions: "
        f"{len(summary['applications'])} applications x inputs "
        f"{summary['input_sizes']} x {summary['repetitions'][0]} repetitions "
        f"on {summary['node_count']} nodes\n"
    )

    print("=== 2. Split and learn ===")
    split = kfold_splits(dataset, k=3, seed=0)[0]
    train = dataset.subset(list(split.train_indices))
    test = dataset.subset(list(split.test_indices))
    recognizer = EFDRecognizer(
        metric="nr_mapped_vmstat", interval=(60.0, 120.0)
    ).fit(train)
    stats = recognizer.stats()
    print(
        f"learned dictionary: rounding depth {recognizer.depth_} "
        f"(selected by in-training CV), {stats.n_keys} keys from "
        f"{stats.n_insertions} fingerprints "
        f"(pruning ratio {stats.pruning_ratio:.0%})\n"
    )

    print("=== 3. Recognize held-out executions ===")
    hits = 0
    for record in list(test)[:10]:
        detail = recognizer.predict_detail(record)
        prediction = detail.prediction or "unknown"
        marker = "OK  " if prediction == record.app_name else "MISS"
        hits += prediction == record.app_name
        print(
            f"  {marker} true={record.label:14s} -> {prediction:10s} "
            f"votes={dict(detail.votes)}"
        )
    accuracy = recognizer.score(test)
    print(f"\nheld-out accuracy over all {len(test)} test executions: "
          f"{accuracy:.1%}\n")

    print("=== 4. Inside the dictionary (paper Table 4 excerpt) ===")
    table = render_table4(example_efd(dataset, apps=("ft", "mg", "sp", "bt")))
    print("\n".join(table.splitlines()[:18]))
    print("  ... (sp/bt share depth-2 keys: the paper's collision example)")


if __name__ == "__main__":
    main()
