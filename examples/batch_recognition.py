#!/usr/bin/env python3
"""Batch recognition at scale: the sharded dictionary + batch engine.

The paper recognizes one execution at a time against one in-memory
dictionary.  A recognition service in front of a production cluster
sees *batches* — a scheduler flush of finished jobs, or hundreds of
streaming sessions crossing the [60 s, 120 s] mark together.  This
example walks the scale-out path:

1. learn a flat EFD, then partition it into 8 hash shards,
2. recognize a whole dataset in one ``BatchRecognizer`` call and check
   it against the sequential reference loop,
3. drive 50 concurrent streaming sessions and batch-resolve them,
4. persist the shard directory and reload it,
5. read the engine's operational counters.

Run:  python examples/batch_recognition.py
"""

import tempfile
import time

from repro import (
    BatchRecognizer,
    EFDRecognizer,
    ShardedDictionary,
    StreamingRecognizer,
    generate_dataset,
    load_sharded,
    save_sharded,
)
from repro.core.fingerprint import build_fingerprints
from repro.core.matcher import match_fingerprints


def main() -> None:
    print("=== 1. Learn a dictionary, partition it into shards ===")
    dataset = generate_dataset(repetitions=6, seed=42)
    recognizer = EFDRecognizer(metric="nr_mapped_vmstat", depth=3).fit(dataset)
    flat = recognizer.dictionary_
    sharded = ShardedDictionary.from_flat(flat, n_shards=8)
    print(f"flat dictionary : {len(flat)} keys")
    print(f"sharded         : {sharded.shard_sizes()} keys per shard\n")

    print("=== 2. Batch-recognize the whole dataset in one call ===")
    records = list(dataset)
    engine = BatchRecognizer(
        sharded, metric="nr_mapped_vmstat", depth=recognizer.depth_,
        backend="thread", n_workers=4,
    )
    t0 = time.perf_counter()
    batch_results = engine.recognize_records(records)
    t_batch = time.perf_counter() - t0

    t0 = time.perf_counter()
    sequential = [
        match_fingerprints(
            flat, build_fingerprints(r, "nr_mapped_vmstat", recognizer.depth_)
        )
        for r in records
    ]
    t_seq = time.perf_counter() - t0
    assert batch_results == sequential, "engine must equal the reference path"
    print(f"batch     : {len(records)} executions in {t_batch * 1e3:.1f} ms "
          f"({len(records) / t_batch:.0f} exec/s)")
    print(f"sequential: {len(records)} executions in {t_seq * 1e3:.1f} ms "
          f"({len(records) / t_seq:.0f} exec/s)")
    print(f"identical verdicts, {t_seq / t_batch:.1f}x faster\n")

    print("=== 3. Fifty concurrent streaming sessions, one verdict pass ===")
    streaming = StreamingRecognizer.from_recognizer(recognizer)
    live = records[:50]
    sessions = [streaming.open_session(n_nodes=r.n_nodes) for r in live]
    for session, record in zip(sessions, live):  # interleaved feeding
        for node in range(record.n_nodes):
            series = record.series("nr_mapped_vmstat", node)
            session.ingest_many(node, series.times, series.values)
    verdicts = engine.recognize_sessions(sessions)
    correct = sum(
        1 for v, r in zip(verdicts, live) if v.prediction == r.app_name
    )
    print(f"{correct}/{len(live)} live sessions recognized correctly\n")

    print("=== 4. Persist and reload the shard directory ===")
    with tempfile.TemporaryDirectory() as tmp:
        save_sharded(sharded, tmp)
        restored = load_sharded(tmp)
        print(f"round trip: {len(restored)} keys across "
              f"{restored.n_shards} shard files (checksummed manifest)\n")

    print("=== 5. Engine counters ===")
    print(engine.stats.render())


if __name__ == "__main__":
    main()
