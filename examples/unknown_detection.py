#!/usr/bin/env python3
"""Robustness against unknown applications (§5) and the fix (§6).

    "If unknown applications produce execution fingerprints that are not
    in the dictionary, they will not be recognized and thus correctly
    labeled as unknown.  This is an in-built safeguard..."

The example probes that safeguard honestly:

1. a batch of never-seen applications with realistic metric levels —
   most are flagged unknown, but some collide with known fingerprints
   on a single metric (the paper's stated limitation);
2. an *adversarial* unknown pinned exactly onto ft's fingerprint level —
   guaranteed to fool the single-metric EFD;
3. the paper's proposed remedy: combinatorial multi-metric fingerprints,
   which the imposter no longer passes.

Run:  python examples/unknown_detection.py
"""

from repro import EFDRecognizer
from repro.cluster.execution import ExecutionEngine
from repro.core.multimetric import MultiMetricRecognizer
from repro.data.dataset import ExecutionRecord
from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.workloads.unknown import make_unknown_app

METRICS = ["nr_mapped_vmstat", "Committed_AS_meminfo", "nr_active_anon_vmstat"]


def main() -> None:
    print("=== Train recognizers on the production mix ===")
    config = DatasetConfig(metrics=tuple(METRICS), repetitions=5, seed=3)
    history = TaxonomistDatasetGenerator(config).generate()
    single = EFDRecognizer(metric=METRICS[0]).fit(history)
    combined = MultiMetricRecognizer(METRICS, mode="combine").fit(history)
    print(f"single-metric EFD depth={single.depth_}, "
          f"combined fingerprints over {len(METRICS)} metrics\n")

    engine = ExecutionEngine(metrics=METRICS)

    print("=== 1. Random never-seen applications ===")
    flagged = 0
    n = 10
    for i in range(n):
        app = make_unknown_app(f"novel{i}")
        record = ExecutionRecord.from_result(
            engine.run(app, "X", n_nodes=4, rng=100 + i, duration=150.0), i
        )
        verdict = single.predict_one(record)
        if verdict == "unknown":
            flagged += 1
        else:
            print(f"  novel{i} slipped through as '{verdict}' "
                  f"(single-metric collision)")
    print(f"single-metric EFD flagged {flagged}/{n} unknowns\n")

    print("=== 2. Adversarial imposter on ft's fingerprint ===")
    imposter = make_unknown_app("imposter", near_app_level=6000.0)
    record = ExecutionRecord.from_result(
        engine.run(imposter, "X", n_nodes=4, rng=7, duration=150.0), 99
    )
    print(f"single-metric verdict:  {single.predict_one(record)} "
          f"(fooled — one metric is spoofable)")

    print("\n=== 3. Combinatorial fingerprints (paper's future work) ===")
    verdict = combined.predict_one(record)
    print(f"combined-key verdict:   {verdict}")
    if verdict == "unknown":
        print("the imposter matches ft on one metric but not on all "
              "three simultaneously — exclusiveness restored")


if __name__ == "__main__":
    main()
