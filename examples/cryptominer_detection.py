#!/usr/bin/env python3
"""Detecting allocation abuse: cryptocurrency mining on HPC nodes.

The paper motivates recognition with jobs that "deviate from allocation
purpose (e.g. cryptocurrency mining)".  This example replays a job
stream through the simulated cluster scheduler:

- legitimate jobs are recognized two minutes into execution;
- a miner disguised under an innocuous job name produces fingerprints
  the dictionary has never seen -> flagged UNKNOWN while still running;
- once the incident is triaged and the miner's fingerprints are added
  (one ``partial_fit``), the *next* mining job is recognized by name.

Run:  python examples/cryptominer_detection.py
"""

from repro import EFDRecognizer, generate_dataset
from repro.cluster.execution import ExecutionEngine
from repro.cluster.job import Job
from repro.cluster.scheduler import Scheduler
from repro.cluster.system import Cluster
from repro.data.dataset import ExecutionRecord
from repro.workloads.cryptominer import make_cryptominer
from repro.workloads.registry import default_workloads


def main() -> None:
    print("=== Learn the production application mix ===")
    history = generate_dataset(repetitions=6, seed=11)
    recognizer = EFDRecognizer().fit(history)
    print(f"dictionary covers {recognizer.dictionary_.app_names()}\n")

    workloads = default_workloads()
    engine = ExecutionEngine(metrics=["nr_mapped_vmstat"])

    print("=== Replay a job stream through the scheduler ===")
    cluster = Cluster(8)
    miner = make_cryptominer()
    jobs = [
        Job(0, workloads.get("ft"), "X", n_nodes=4, submit_time=0.0),
        Job(1, workloads.get("miniAMR"), "Y", n_nodes=4, submit_time=30.0),
        # The abuser's job script claims to be "lu" but runs a miner.
        Job(2, miner, "X", n_nodes=4, submit_time=60.0),
        Job(3, workloads.get("lu"), "Z", n_nodes=4, submit_time=90.0),
    ]
    declared = {0: "ft", 1: "miniAMR", 2: "lu (claimed!)", 3: "lu"}
    schedule = Scheduler(cluster).run(jobs)

    incident_record = None
    for entry in sorted(schedule, key=lambda s: s.job_id):
        app = miner if entry.job_id == 2 else workloads.get(entry.app_name)
        result = engine.run(app, entry.input_size, n_nodes=4,
                            rng=entry.job_id, duration=150.0)
        record = ExecutionRecord.from_result(result, 1000 + entry.job_id)
        verdict = recognizer.predict_one(record)
        flag = ""
        if verdict == "unknown":
            flag = "  <-- ALERT: fingerprints match no known application"
            incident_record = record
        print(
            f"job {entry.job_id}: declared={declared[entry.job_id]:14s} "
            f"recognized={verdict:10s} (2 min into execution){flag}"
        )

    print("\n=== Triage: operators label the incident and update the EFD ===")
    assert incident_record is not None
    recognizer.partial_fit(incident_record, label="xmr_miner_X")
    print("added the miner's fingerprints under label 'xmr_miner_X'")

    print("\n=== The next mining attempt is recognized by name ===")
    repeat = ExecutionRecord.from_result(
        engine.run(miner, "X", n_nodes=4, rng=77, duration=150.0), 2000
    )
    verdict = recognizer.predict_one(repeat)
    print(f"new job recognized as: {verdict}")
    assert verdict == "xmr_miner"


if __name__ == "__main__":
    main()
