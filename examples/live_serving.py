#!/usr/bin/env python3
"""Live serving: async ingestion of an interleaved multi-job stream.

`examples/batch_recognition.py` resolves sessions that are already
complete; this example runs the operational mode on top of it — a
monitoring bus delivers samples for many jobs at once, and the
`IngestService` produces each verdict while the stream is still
flowing:

1. learn an EFD, shard it, wrap it in a `BatchRecognizer`,
2. replay a 40-job interleaved telemetry stream through the service
   with a small bounded queue (blocking backpressure) and watch
   verdicts arrive mid-stream via the callback,
3. prove the async verdicts element-wise identical to the synchronous
   `recognize_sessions` path on the same samples,
4. shed-policy pass on a deliberately tiny queue: bounded latency, lossy,
5. evict a job that stops sending samples before its interval completes,
6. read the serving counters (queue depth, sheds, evictions, latency).

Run:  python examples/live_serving.py
"""

import asyncio

from repro import (
    BatchRecognizer,
    EFDRecognizer,
    IngestService,
    ServeConfig,
    ShardedDictionary,
    StreamingRecognizer,
    generate_dataset,
)
from repro.serve import Sample, interleave_records

METRIC = "nr_mapped_vmstat"


def main() -> None:
    print("=== 1. Learn, shard, build the batch engine ===")
    dataset = generate_dataset(repetitions=4, seed=42, duration_cap=150.0)
    recognizer = EFDRecognizer(metric=METRIC, depth=3).fit(dataset)
    sharded = ShardedDictionary.from_flat(recognizer.dictionary_, n_shards=8)
    engine = BatchRecognizer(sharded, metric=METRIC, depth=recognizer.depth_)
    # Stride across the app-sorted dataset so the stream mixes apps.
    records = list(dataset)[:: max(1, len(dataset) // 40)][:40]
    job_ids = [f"job-{i:04d}" for i in range(len(records))]
    print(f"dictionary: {len(recognizer.dictionary_)} keys, 8 shards; "
          f"stream: {len(records)} concurrent jobs\n")

    print("=== 2. Serve the stream (block policy, queue=256) ===")
    arrived = []

    async def serve() -> IngestService:
        config = ServeConfig(
            max_pending_samples=256,    # small bounded buffer
            backpressure="block",       # lossless: producer slows down
            batch_max_sessions=16,      # micro-batch coalescing
            batch_max_delay=0.005,
        )
        service = IngestService(
            engine, config,
            on_verdict=lambda job, r: arrived.append((job, r)),
        )
        async with service:
            for sample in interleave_records(records, METRIC, job_ids):
                await service.submit(sample)
            await service.drain()
        return service

    service = asyncio.run(serve())
    correct = sum(
        1 for (job, result), record in zip(sorted(arrived), records)
        if result.prediction == record.app_name
    )
    print(f"{len(arrived)} verdicts delivered mid-stream, "
          f"{correct}/{len(records)} correct\n")

    print("=== 3. Async verdicts == synchronous batch path ===")
    streaming = StreamingRecognizer.from_recognizer(recognizer)
    sessions = []
    for record, job in zip(records, job_ids):
        session = streaming.open_session(n_nodes=record.n_nodes, session_id=job)
        for node in range(record.n_nodes):
            series = record.series(METRIC, node)
            session.ingest_many(node, series.times, series.values)
        sessions.append(session)
    reference = BatchRecognizer(
        sharded, metric=METRIC, depth=recognizer.depth_
    ).recognize_sessions(sessions, force=True)
    results = service.results
    assert [results[job] for job in job_ids] == reference, \
        "async service must equal the synchronous engine"
    print("element-wise identical across all "
          f"{len(job_ids)} sessions\n")

    print("=== 4. Shed policy: more jobs than session slots ===")

    def engine_fresh() -> BatchRecognizer:
        return BatchRecognizer(sharded, metric=METRIC, depth=recognizer.depth_)

    async def shed_pass() -> IngestService:
        # Only 12 concurrent session slots for 40 jobs: samples for
        # overflow jobs are shed (counted, not queued) until verdicts
        # free slots.  Lossy, but latency and memory stay bounded.
        config = ServeConfig(
            max_sessions=12, backpressure="shed",
            batch_max_sessions=16, batch_max_delay=0.005,
        )
        service = IngestService(engine_fresh(), config)
        async with service:
            await service.submit_many(
                interleave_records(records, METRIC, job_ids)
            )
            await service.drain()
        return service

    shed_service = asyncio.run(shed_pass())
    stats = shed_service.stats
    print(f"shed {stats.n_shed} samples at the session cap; "
          f"{stats.n_recognized} jobs recognized, "
          f"{stats.n_unknowns} degraded to unknown\n")

    print("=== 5. Eviction: a job that stops reporting ===")

    async def evict_pass() -> None:
        config = ServeConfig(
            session_timeout=0.2,   # wall-clock inactivity budget
            evict="force",         # decide early from what arrived
            batch_max_delay=0.005,
        )
        async with IngestService(engine_fresh(), config) as service:
            # 70 in-interval samples, then silence: never reaches 120 s.
            for t in range(60, 110):
                await service.submit(
                    Sample(job="truncated", node=0, time=float(t),
                           value=180_000.0, n_nodes=1)
                )
            result = await asyncio.wait_for(
                service.verdict("truncated"), timeout=5
            )
            app = result.prediction or "unknown"
            print(f"evicted after 0.2s silence -> forced verdict: {app} "
                  f"(evictions={service.stats.n_evicted})\n")

    asyncio.run(evict_pass())

    print("=== 6. Serving counters ===")
    print(service.stats.render())


if __name__ == "__main__":
    main()
