# Developer entry points. Everything runs from the repo root with no
# installation: PYTHONPATH=src is injected here.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke docs-check docs-check-run selftest serve-demo serve-smoke reshard-smoke mutation-smoke faultinject-smoke replicate-smoke remote-smoke family-smoke

test:            ## tier-1 correctness suite (the merge gate)
	$(PYTHON) -m pytest -x -q

bench:           ## benchmarks (write reports to benchmarks/output/)
	$(PYTHON) -m pytest benchmarks -m bench -q

bench-smoke:     ## columnar codec bench at tiny scale (fast regression gate)
	BENCH_COLUMNAR_KEYS=20000 $(PYTHON) -m pytest \
	    benchmarks/test_bench_columnar_scale.py -m bench -q

serve-smoke:     ## boot a UDS listener, replay a tiny stream, assert a verdict
	$(PYTHON) -m pytest tests/test_serve_net.py -q -k smoke

reshard-smoke:   ## reshard N->M->N byte-identity + verdict equivalence gate
	$(PYTHON) -m pytest tests/test_reshard.py -q

faultinject-smoke: ## crash/fault-injection sweep over the columnar write paths
	$(PYTHON) -m pytest tests/test_faultinject.py -q

replicate-smoke: ## one live leader->replica bootstrap/trickle/swap round trip
	$(PYTHON) -m pytest tests/test_replicate.py -q -k smoke

remote-smoke:    ## live 3-host fan-out: v2 protocol + fault sweep + wire-tax gate
	$(PYTHON) -m pytest tests/test_remote_v2.py -q
	$(PYTHON) -m pytest tests/test_faultinject.py -q -k TestRemoteFaultSweep
	BENCH_REMOTE_PROBES=50000 BENCH_REMOTE_KEYS=5000 \
	    BENCH_REMOTE_MAX_WIRE_TAX=1.6 $(PYTHON) -m pytest \
	    benchmarks/test_bench_remote_fanout.py -m bench -q

family-smoke:    ## cascade property/unit tier + coarse-absorption bench
	$(PYTHON) -m pytest tests/test_family_cascade.py -q
	BENCH_FAMILY_EXECS=500 $(PYTHON) -m pytest \
	    benchmarks/test_bench_family_cascade.py -m bench -q

mutation-smoke:  ## delta-log write-throughput bench at tiny scale
	BENCH_MUTATION_KEYS=20000 BENCH_MUTATION_APPENDS=200 $(PYTHON) -m pytest \
	    benchmarks/test_bench_mutation.py -m bench -q

docs-check:      ## markdown cross-links + examples import health
	$(PYTHON) -m repro._util.doccheck

docs-check-run:  ## docs-check, plus actually execute every example
	$(PYTHON) -m repro._util.doccheck --run

selftest:        ## engine equivalence smoke check
	$(PYTHON) -m repro engine selftest

serve-demo:      ## async live-serving demo
	$(PYTHON) -m repro serve --demo
