"""Figure 2 — EFD vs Taxonomist across the five experiments.

The paper's headline figure.  Expected shape (not absolute numbers):

- EFD normal fold / soft input / soft unknown: >= 0.95 with ONE metric
  and the first two minutes;
- Taxonomist (all collected metrics, full window): comparably high on
  the three experiments it was evaluated on, "n/a" on the hard ones;
- EFD hard input: markedly lower (input-dependent applications break);
- EFD hard unknown: between the two ("room for improvement").
"""

from repro.experiments.figures import figure2_series, render_figure2
from repro.experiments.protocol import EXPERIMENT_NAMES


def test_bench_figure2_comparison(benchmark, table3_dataset, save_report):
    series = benchmark.pedantic(
        lambda: figure2_series(
            table3_dataset,
            efd_metric="nr_mapped_vmstat",
            taxonomist_metrics=None,  # all 13 collected metrics
            k=5,
            seed=0,
        ),
        rounds=1, iterations=1,
    )

    efd = dict(zip(EXPERIMENT_NAMES, series["EFD"]))
    taxo = dict(zip(EXPERIMENT_NAMES, series["Taxonomist"]))

    # EFD headline claim: >95 % on normal operations with 1 metric, 2 min.
    assert efd["normal_fold"] > 0.95
    assert efd["soft_input"] > 0.95
    assert efd["soft_unknown"] > 0.95
    # Hard experiments show the paper's "room for improvement".
    assert efd["hard_input"] < efd["normal_fold"] - 0.2
    assert efd["hard_input"] < efd["hard_unknown"]
    assert efd["hard_unknown"] < efd["soft_unknown"]

    # Taxonomist: comparable on its three experiments, absent on hard.
    assert taxo["normal_fold"] > 0.9
    assert taxo["soft_input"] > 0.9
    assert taxo["soft_unknown"] > 0.85
    assert taxo["hard_input"] is None
    assert taxo["hard_unknown"] is None

    # The comparison claim: EFD is within a few points of the baseline
    # that consumes two orders of magnitude more data.
    for exp in ("normal_fold", "soft_input", "soft_unknown"):
        assert efd[exp] > taxo[exp] - 0.05

    save_report("figure2_comparison", render_figure2(series))
