"""Benchmark fixtures: full-scale datasets (the public subset's shape).

Datasets are session-scoped — they are pure functions of their config,
and several benches share them.  Every bench writes its rendered table /
figure to ``benchmarks/output/<name>.txt`` so results survive pytest's
stdout capture (run with ``-s`` to also see them inline).

Every bench run additionally appends one machine-readable record —
benchmark name, problem size, wall time, throughput, git revision — to
``BENCH_engine.json`` at the repo root via the autouse
:func:`bench_record` fixture, so the repo accumulates a performance
trajectory across revisions.  Benches that know their own ``n`` /
throughput set them on the yielded record; the wall time defaults to
the test's own duration.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Optional

import pytest

from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.telemetry.metrics import TABLE3_METRICS

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
BENCH_LOG = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_engine.json")
)


class BenchRecord:
    """One row of the performance trajectory, filled in by a bench."""

    def __init__(self, name: str, git_rev: str):
        self.name = name
        self.git_rev = git_rev
        self.n: Optional[int] = None
        self.seconds: Optional[float] = None
        self.throughput: Optional[float] = None
        self.extra: dict = {}

    def as_dict(self) -> dict:
        row = {
            "bench": self.name,
            "n": self.n,
            "seconds": self.seconds,
            "throughput": self.throughput,
            "git_rev": self.git_rev,
            "recorded_at": round(time.time(), 3),
        }
        row.update(self.extra)
        return row


def append_bench_record(row: dict, path: str = BENCH_LOG) -> None:
    """Append ``row`` to the JSON array at ``path`` (created on demand).

    The rewrite is atomic (temp file + ``os.replace``), so a reader —
    or an overlapping bench run — never sees a torn file.  An
    unreadable history is moved aside, never silently discarded: the
    trajectory is the whole point of this file.
    """
    records = []
    if os.path.isfile(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
            if isinstance(loaded, list):
                records = loaded
        except (ValueError, OSError):
            aside = f"{path}.corrupt-{int(time.time())}"
            os.replace(path, aside)
            print(f"bench trajectory unreadable; moved aside to {aside}")
    records.append(row)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)


@pytest.fixture(scope="session")
def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(__file__),
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    setattr(item, f"_bench_report_{report.when}", report)


@pytest.fixture(autouse=True)
def bench_record(request, _git_rev):
    """Autouse trajectory writer: every bench appends one record.

    Failed runs are recorded too (they are part of the trajectory) but
    carry ``outcome: "failed"`` so consumers never mistake numbers from
    a run that missed its thresholds for a healthy data point.
    """
    record = BenchRecord(request.node.name, _git_rev)
    t0 = time.perf_counter()
    yield record
    wall = time.perf_counter() - t0
    if record.seconds is None:
        record.seconds = round(wall, 6)
    report = getattr(request.node, "_bench_report_call", None)
    row = record.as_dict()
    passed = report is not None and report.passed
    row["outcome"] = "passed" if passed else "failed"
    if not passed:
        # A failed run otherwise lands as `n: null, throughput: null`
        # with nothing to diagnose it by; keep a one-line summary of
        # what went wrong next to the (partial) numbers.
        row["error"] = _failure_summary(report)
    append_bench_record(row)


def _failure_summary(report, limit: int = 200) -> str:
    """A short, single-line explanation of a failed bench run."""
    if report is None:
        return "no call-phase report (setup error or interrupted run)"
    summary = ""
    longrepr = report.longrepr
    if longrepr is not None:
        crash = getattr(longrepr, "reprcrash", None)
        summary = getattr(crash, "message", "") or str(longrepr)
    summary = " ".join(summary.split()) or "failed without a recorded error"
    if len(summary) > limit:
        summary = summary[:limit - 1] + "…"
    return summary


@pytest.fixture(scope="session")
def paper_dataset():
    """The paper's configuration: 11 apps, 10 repetitions, 1 metric."""
    config = DatasetConfig(
        metrics=("nr_mapped_vmstat",), repetitions=10, seed=2021
    )
    return TaxonomistDatasetGenerator(config).generate()


@pytest.fixture(scope="session")
def table3_dataset():
    """All thirteen Table 3 metrics at full repetition count."""
    config = DatasetConfig(
        metrics=tuple(TABLE3_METRICS), repetitions=10, seed=2021
    )
    return TaxonomistDatasetGenerator(config).generate()


@pytest.fixture(scope="session")
def save_report():
    """Writer for bench reports: save_report(name, text)."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)

    def _save(name: str, text: str) -> str:
        path = os.path.join(OUTPUT_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
