"""Benchmark fixtures: full-scale datasets (the public subset's shape).

Datasets are session-scoped — they are pure functions of their config,
and several benches share them.  Every bench writes its rendered table /
figure to ``benchmarks/output/<name>.txt`` so results survive pytest's
stdout capture (run with ``-s`` to also see them inline).
"""

from __future__ import annotations

import os

import pytest

from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.telemetry.metrics import TABLE3_METRICS

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="session")
def paper_dataset():
    """The paper's configuration: 11 apps, 10 repetitions, 1 metric."""
    config = DatasetConfig(
        metrics=("nr_mapped_vmstat",), repetitions=10, seed=2021
    )
    return TaxonomistDatasetGenerator(config).generate()


@pytest.fixture(scope="session")
def table3_dataset():
    """All thirteen Table 3 metrics at full repetition count."""
    config = DatasetConfig(
        metrics=tuple(TABLE3_METRICS), repetitions=10, seed=2021
    )
    return TaxonomistDatasetGenerator(config).generate()


@pytest.fixture(scope="session")
def save_report():
    """Writer for bench reports: save_report(name, text)."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)

    def _save(name: str, text: str) -> str:
        path = os.path.join(OUTPUT_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
