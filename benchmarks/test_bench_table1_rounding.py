"""Table 1 — the rounding-depth mechanism.

Regenerates the paper's rounding showcase and benchmarks the vectorized
rounding kernel (it sits on the per-fingerprint hot path).
"""

import numpy as np

from repro.core.rounding import round_depth, round_depth_array
from repro.experiments.tables import render_table1, table1_rows


def test_bench_table1_rounding(benchmark, save_report):
    values = np.abs(np.random.default_rng(0).normal(0, 1e4, 100_000)) + 1e-3

    result = benchmark(round_depth_array, values, 2)

    assert result.shape == values.shape
    # Regenerate the paper's exact rows.
    rows = table1_rows()
    assert rows[0] == ["1358", "-", "1358", "1360", "1400", "1000"]
    assert rows[1] == ["5.28", "-", "-", "5.28", "5.3", "5"]
    assert rows[2] == ["0.038", "-", "-", "-", "0.038", "0.04"]
    assert round_depth(1358.0, 2) == 1400.0  # the canonical cell
    save_report("table1_rounding", render_table1())
