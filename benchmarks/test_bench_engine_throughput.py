"""Engine throughput: batch/sharded recognition vs. the flat sequential path.

The acceptance bar for the engine subsystem: a 500-execution batch
against a sharded dictionary (>= 4 shards, thread or process backend)
must run at >= 3x the executions/sec of the reference loop
(``build_fingerprints`` + ``match_fingerprints`` per record against the
flat dictionary) — while producing element-wise identical MatchResults.

The speedup is algorithmic, not parallel-hardware luck: batch-wide
vectorized interval means, one shard-parallel (node, value) tuple index
instead of per-lookup dataclass hashing, and verdict memoization across
repeated fingerprint patterns.  It therefore holds on a single core.
"""

from __future__ import annotations

import time

import pytest

from repro.core.fingerprint import build_fingerprints
from repro.core.matcher import match_fingerprints
from repro.core.recognizer import EFDRecognizer
from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.engine import BatchRecognizer, ShardedDictionary

METRIC = "nr_mapped_vmstat"
DEPTH = 3
BATCH_SIZE = 500
N_SHARDS = 8
REQUIRED_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def batch_dataset():
    """Enough repetitions of the paper's 37 app-input pairs for a
    500-execution batch (14 reps -> 518 executions)."""
    config = DatasetConfig(metrics=(METRIC,), repetitions=14, seed=2021)
    return TaxonomistDatasetGenerator(config).generate()


def _best_of(fn, repeats=5):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_engine_throughput(batch_dataset, save_report, bench_record):
    recognizer = EFDRecognizer(metric=METRIC, depth=DEPTH).fit(batch_dataset)
    flat = recognizer.dictionary_
    batch = list(batch_dataset)[:BATCH_SIZE]
    assert len(batch) == BATCH_SIZE

    t_base, sequential = _best_of(
        lambda: [
            match_fingerprints(flat, build_fingerprints(r, METRIC, DEPTH))
            for r in batch
        ]
    )

    sharded = ShardedDictionary.from_flat(flat, N_SHARDS)
    rows = []
    speedups = {}
    for backend, workers in (("serial", None), ("thread", 4), ("process", 2)):
        engine = BatchRecognizer(
            sharded, metric=METRIC, depth=DEPTH,
            backend=backend, n_workers=workers,
        )
        # Cold pass: includes building the shard-parallel lookup index.
        t_cold0 = time.perf_counter()
        cold = engine.recognize_records(batch)
        t_cold = time.perf_counter() - t_cold0
        assert cold == sequential, f"batch != sequential on {backend}"
        t_warm, warm = _best_of(lambda: engine.recognize_records(batch))
        assert warm == sequential, f"batch != sequential on {backend}"
        speedups[backend] = t_base / t_warm
        rows.append(
            (f"batch/{backend}", t_warm, BATCH_SIZE / t_warm,
             t_base / t_warm, t_base / t_cold)
        )

    bench_record.n = BATCH_SIZE
    bench_record.throughput = max(
        rate for _, _, rate, _, _ in rows
    )
    bench_record.extra["speedups"] = {
        backend: round(s, 2) for backend, s in speedups.items()
    }
    lines = [
        "Engine throughput: 500-execution batch, "
        f"{len(flat)} keys, {N_SHARDS} shards",
        "",
        f"{'path':16s} {'seconds':>9s} {'exec/s':>10s} "
        f"{'speedup':>8s} {'cold':>6s}",
        f"{'sequential/flat':16s} {t_base:9.4f} {BATCH_SIZE / t_base:10.0f} "
        f"{'1.0x':>8s} {'-':>6s}",
    ]
    for name, seconds, rate, warm_speedup, cold_speedup in rows:
        lines.append(
            f"{name:16s} {seconds:9.4f} {rate:10.0f} "
            f"{warm_speedup:7.1f}x {cold_speedup:5.1f}x"
        )
    lines += [
        "",
        f"requirement: thread or process backend >= {REQUIRED_SPEEDUP}x "
        "with identical MatchResults",
    ]
    save_report("engine_throughput", "\n".join(lines))

    assert max(speedups["thread"], speedups["process"]) >= REQUIRED_SPEEDUP, (
        f"engine speedup below bar: {speedups}"
    )


def test_bulk_add_scales_with_shards(batch_dataset, save_report):
    """Shard-parallel learning: bulk_add equals a sequential add loop."""
    records = list(batch_dataset)[:200]
    pairs = []
    for record in records:
        for fp in build_fingerprints(record, METRIC, DEPTH):
            if fp is not None:
                pairs.append((fp, record.label))

    t_seq0 = time.perf_counter()
    reference = ShardedDictionary(N_SHARDS)
    for fp, label in pairs:
        reference.add(fp, label)
    t_seq = time.perf_counter() - t_seq0

    t_bulk0 = time.perf_counter()
    bulk = ShardedDictionary(N_SHARDS)
    bulk.bulk_add(pairs, backend="thread", n_workers=4)
    t_bulk = time.perf_counter() - t_bulk0

    assert list(bulk.entries()) == list(reference.entries())
    assert bulk.stats() == reference.stats()
    save_report(
        "engine_bulk_add",
        f"bulk_add: {len(pairs)} pairs into {N_SHARDS} shards\n"
        f"sequential add loop : {t_seq:.4f}s\n"
        f"bulk_add (thread)   : {t_bulk:.4f}s\n"
        f"entries identical   : yes",
    )
