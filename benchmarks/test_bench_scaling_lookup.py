"""Scaling — dictionary lookup stays O(1) as the EFD grows.

The production pitch of the EFD is MODA-friendly latency: recognition is
a handful of hash lookups regardless of how many applications the
dictionary has accumulated.  This bench grows the dictionary by two
orders of magnitude and checks the lookup latency stays flat.
"""

import time

import numpy as np

from repro._util.tables import TextTable
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.core.matcher import match_fingerprints


def _grown_dictionary(n_keys: int) -> ExecutionFingerprintDictionary:
    rng = np.random.default_rng(0)
    efd = ExecutionFingerprintDictionary()
    values = rng.integers(10, 10_000_000, size=n_keys)
    for i, value in enumerate(values.tolist()):
        efd.add(
            Fingerprint("nr_mapped_vmstat", i % 4, (60.0, 120.0), float(value)),
            f"app{i % 500}_X",
        )
    return efd


def _lookup_latency(efd, probes=2000):
    rng = np.random.default_rng(1)
    fingerprints = [
        Fingerprint("nr_mapped_vmstat", int(n), (60.0, 120.0),
                    float(rng.integers(10, 10_000_000)))
        for n in rng.integers(0, 4, probes)
    ]
    start = time.perf_counter()
    for fp in fingerprints:
        match_fingerprints(efd, [fp])
    return (time.perf_counter() - start) / probes


def test_bench_scaling_lookup(benchmark, save_report):
    sizes = (1_000, 10_000, 100_000)

    def sweep():
        return {n: _lookup_latency(_grown_dictionary(n)) for n in sizes}

    latencies = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # O(1): a 100x larger dictionary must not cost anywhere near 100x —
    # allow a generous 5x envelope for cache effects.
    assert latencies[100_000] < 5 * latencies[1_000] + 1e-6

    table = TextTable(
        ["Dictionary keys", "Lookup+vote latency"],
        title="Scaling: recognition latency vs dictionary size (O(1) claim)",
    )
    for n in sizes:
        table.add_row([f"{n:,}", f"{latencies[n] * 1e6:.1f} us"])
    save_report("scaling_lookup", table.render())
