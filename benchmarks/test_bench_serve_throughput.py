"""Serving throughput: the async ingestion front-end at 1000 sessions.

The acceptance bar for ``repro.serve``: a 1000-session interleaved
telemetry stream (one `StreamSession` per job, ~600 samples each —
0.6 M samples end to end) must flow through `IngestService` — bounded
queue, micro-batching, executor-resolved verdicts — with every verdict
element-wise identical to the synchronous
``BatchRecognizer.recognize_sessions`` path, at a sustained rate of at
least 50 sessions/sec on one core.

The report records sustained sessions/sec and samples/sec for both
backpressure policies, plus verdict latency percentiles from the
engine's own counters.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.recognizer import EFDRecognizer
from repro.core.streaming import StreamingRecognizer
from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.engine import BatchRecognizer, ShardedDictionary
from repro.serve import IngestService, ServeConfig, interleave_records

METRIC = "nr_mapped_vmstat"
DEPTH = 3
N_SESSIONS = 1000
N_SHARDS = 8
REQUIRED_SESSIONS_PER_SEC = 50.0

CONFIGS = {
    "block": ServeConfig(max_pending_samples=8192, backpressure="block",
                         batch_max_sessions=128, batch_max_delay=0.005),
    "shed-ample": ServeConfig(max_pending_samples=1_000_000,
                              backpressure="shed",
                              batch_max_sessions=128, batch_max_delay=0.005),
}


@pytest.fixture(scope="module")
def serving_setup():
    config = DatasetConfig(
        metrics=(METRIC,), repetitions=6, seed=2021, duration_cap=150.0
    )
    dataset = TaxonomistDatasetGenerator(config).generate()
    recognizer = EFDRecognizer(metric=METRIC, depth=DEPTH).fit(dataset)
    sharded = ShardedDictionary.from_flat(recognizer.dictionary_, N_SHARDS)
    # Cycle the record pool up to 1000 distinct job ids.
    pool = list(dataset)
    records = [pool[i % len(pool)] for i in range(N_SESSIONS)]
    job_ids = [f"job-{i:04d}" for i in range(N_SESSIONS)]
    return recognizer, sharded, records, job_ids


def _reference(recognizer, sharded, records, job_ids):
    streaming = StreamingRecognizer.from_recognizer(recognizer)
    sessions = []
    for record, job in zip(records, job_ids):
        session = streaming.open_session(n_nodes=record.n_nodes, session_id=job)
        for node in range(record.n_nodes):
            series = record.series(METRIC, node)
            session.ingest_many(node, series.times, series.values)
        sessions.append(session)
    engine = BatchRecognizer(sharded, metric=METRIC, depth=DEPTH)
    t0 = time.perf_counter()
    results = engine.recognize_sessions(sessions, force=True)
    t_sync = time.perf_counter() - t0
    return dict(zip(job_ids, results)), t_sync


async def _serve_stream(engine, config, samples):
    service = IngestService(engine, config)
    async with service:
        await service.submit_many(samples)
        await service.drain()
    return service


def test_serve_throughput_1000_sessions(serving_setup, save_report,
                                        bench_record):
    recognizer, sharded, records, job_ids = serving_setup
    reference, t_sync = _reference(recognizer, sharded, records, job_ids)
    n_samples = sum(
        len(r.series(METRIC, node).values)
        for r in records for node in range(r.n_nodes)
    )

    rows = []
    rates = {}
    for name, config in CONFIGS.items():
        engine = BatchRecognizer(sharded, metric=METRIC, depth=DEPTH)
        samples = interleave_records(records, METRIC, job_ids)
        t0 = time.perf_counter()
        service = asyncio.run(_serve_stream(engine, config, samples))
        elapsed = time.perf_counter() - t0

        stats = engine.stats
        assert stats.n_shed == 0, f"{name}: unexpected sheds"
        assert stats.n_evicted == 0, f"{name}: unexpected evictions"
        results = service.results
        assert len(results) == N_SESSIONS
        for job in job_ids:
            assert results[job] == reference[job], f"{name}: {job}"

        rates[name] = N_SESSIONS / elapsed
        bench_record.extra[f"sessions_per_s_{name}"] = round(rates[name], 1)
        rows.append(
            (name, elapsed, N_SESSIONS / elapsed, n_samples / elapsed,
             stats.n_batches, stats.max_batch,
             stats.mean_latency * 1e3, stats.max_latency * 1e3)
        )

    bench_record.n = N_SESSIONS
    bench_record.throughput = max(rates.values())
    lines = [
        f"Serve throughput: {N_SESSIONS} interleaved sessions, "
        f"{n_samples} samples, {len(sharded)} keys, {N_SHARDS} shards",
        f"sync reference  : recognize_sessions on prefilled sessions "
        f"in {t_sync:.3f}s (resolution only, no ingestion)",
        "",
        f"{'policy':12s} {'seconds':>8s} {'sess/s':>8s} {'samp/s':>10s} "
        f"{'batches':>8s} {'maxB':>5s} {'lat-mean':>9s} {'lat-max':>8s}",
    ]
    for name, secs, sps, smps, nb, mb, lmean, lmax in rows:
        lines.append(
            f"{name:12s} {secs:8.3f} {sps:8.0f} {smps:10.0f} "
            f"{nb:8d} {mb:5d} {lmean:7.1f}ms {lmax:6.1f}ms"
        )
    lines += [
        "",
        f"requirement: >= {REQUIRED_SESSIONS_PER_SEC:.0f} sessions/s "
        "sustained with element-wise identical verdicts",
    ]
    save_report("serve_throughput", "\n".join(lines))

    assert max(rates.values()) >= REQUIRED_SESSIONS_PER_SEC, (
        f"serving throughput below bar: {rates}"
    )
