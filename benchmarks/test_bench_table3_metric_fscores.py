"""Table 3 — per-metric normal-fold F-scores.

Runs the normal-fold experiment once per Table 3 metric and prints
measured vs paper-reported F-scores.  The shape to reproduce: the four
memory-footprint metrics at the top reach F = 1.0, the remaining memory
metrics sit just below, and the NIC counters trail at ~0.95.
"""

import numpy as np

from repro.experiments.tables import render_table3, table3_scores
from repro.telemetry.metrics import TABLE3_METRICS


def test_bench_table3_metric_fscores(benchmark, table3_dataset, save_report):
    scores = benchmark.pedantic(
        lambda: table3_scores(table3_dataset, k=5, seed=0),
        rounds=1, iterations=1,
    )

    assert set(scores) == set(TABLE3_METRICS)
    # The paper's headline metric is perfect on the normal fold.
    assert scores["nr_mapped_vmstat"] == 1.0
    # Every Table 3 metric achieves the paper's ">95 percent" claim band
    # (allowing a small tolerance for the synthetic substrate).
    for metric, value in scores.items():
        assert value > 0.85, (metric, value)
    # Shape: the four 1.0-metrics outrank the 0.95-band NIC metrics.
    top4 = [m for m, paper_f in TABLE3_METRICS.items() if paper_f == 1.0]
    nic = [m for m in TABLE3_METRICS if m.endswith("_metric_set_nic")]
    assert np.mean([scores[m] for m in top4]) >= \
        np.mean([scores[m] for m in nic]) - 1e-9
    # Measured deviates from the paper's numbers by at most a few points.
    for metric, paper_f in TABLE3_METRICS.items():
        assert abs(scores[metric] - paper_f) < 0.08, (metric, scores[metric])

    save_report("table3_metric_fscores", render_table3(scores))
