"""Ablation — node-vote aggregation (§5, "The impact of node configuration").

    "It ... stands to reason that we recognize an application through all
    involved nodes."

Compares recognition using all four nodes' fingerprints against using
only node 0.  Expected: the full vote wins — per-node asymmetries (SP/BT
rank-0 effects) and uncorrelated per-node wander make single-node
recognition strictly weaker.
"""

import numpy as np

from repro._util.tables import TextTable
from repro.core.fingerprint import build_fingerprints
from repro.core.matcher import match_fingerprints
from repro.core.recognizer import EFDRecognizer
from repro.data.splits import kfold_splits
from repro.ml.metrics import f1_score


class _SingleNodeEFD(EFDRecognizer):
    """EFD variant that only fingerprints one node (ablation arm)."""

    def __init__(self, node: int, **kwargs):
        super().__init__(**kwargs)
        self.node = node

    def _fingerprints(self, record):
        fps = build_fingerprints(record, self.metric, self.depth_, self.interval)
        return [fps[self.node]]


def _evaluate(dataset, factory, k=5):
    scores = []
    for split in kfold_splits(dataset, k, 0):
        recognizer = factory()
        recognizer.fit(dataset.subset(list(split.train_indices)))
        test = dataset.subset(list(split.test_indices))
        y_pred = [recognizer.predict_one(r) for r in test]
        scores.append(
            f1_score(list(split.expected), y_pred,
                     labels=sorted(set(split.expected)), average="macro")
        )
    return float(np.mean(scores))


def test_bench_ablation_voting(benchmark, paper_dataset, save_report):
    def sweep():
        return {
            "all 4 nodes (paper)": _evaluate(
                paper_dataset, lambda: EFDRecognizer(depth=3)
            ),
            "node 0 only": _evaluate(
                paper_dataset, lambda: _SingleNodeEFD(0, depth=3)
            ),
            "node 3 only": _evaluate(
                paper_dataset, lambda: _SingleNodeEFD(3, depth=3)
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    assert results["all 4 nodes (paper)"] >= results["node 0 only"]
    assert results["all 4 nodes (paper)"] > 0.95

    table = TextTable(
        ["Aggregation", "Normal-Fold F"],
        title="Ablation: whole-execution vote vs single-node fingerprints",
    )
    for name, score in results.items():
        table.add_row([name, f"{score:.3f}"])
    save_report("ablation_voting", table.render())
