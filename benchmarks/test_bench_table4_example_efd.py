"""Table 4 — the example Execution Fingerprint Dictionary.

Builds the paper's illustration: the 7-application subset at fixed
rounding depth 2, exhibiting (a) the SP/BT collision, (b) per-node
asymmetry for SP/BT/LU, and (c) miniAMR_Z's multiple fingerprints.
"""

from repro.core.rounding import round_depth
from repro.experiments.tables import TABLE4_APPS, example_efd, render_table4


def test_bench_table4_example_efd(benchmark, paper_dataset, save_report):
    efd = benchmark.pedantic(
        lambda: example_efd(paper_dataset), rounds=3, iterations=1
    )

    # (a) SP and BT collide at depth 2 (the paper's headline example).
    colliding_apps = set()
    for fp, labels in efd.collisions():
        for label in labels:
            colliding_apps.add(label.rsplit("_", 1)[0])
    assert {"sp", "bt"} <= colliding_apps

    # (b) Per-node asymmetry: sp/bt node 0 bucket differs from node 3's.
    sp_values = {
        fp.node: fp.value
        for fp, labels in efd.entries()
        if any(l.startswith("sp_") for l in labels)
    }
    assert sp_values[0] != sp_values[3]

    # (c) miniAMR_Z produced more than one fingerprint value per node
    # (measurement variation), exactly like the paper's Table 4.
    amr_z_values = set()
    for fp, labels in efd.entries():
        if "miniAMR_Z" in labels:
            amr_z_values.add(fp.value)
    assert len(amr_z_values) >= 2

    # (d) ft keys are input-independent: one key covers ft_X, ft_Y, ft_Z.
    ft_keys = [labels for _, labels in efd.entries()
               if any(l.startswith("ft_") for l in labels)]
    assert any({"ft_X", "ft_Y", "ft_Z"} <= set(labels) for labels in ft_keys)

    save_report("table4_example_efd", render_table4(efd))
