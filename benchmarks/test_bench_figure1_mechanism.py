"""Figure 1 — the recognition mechanism, end to end.

Figure 1 is a schematic, so the bench times its three stages on real
data instead: (1) learning (rounded fingerprints -> dictionary),
(2) lookup of an unlabeled execution, (3) returning the application
name.  Stage 2+3 — the production-latency path — must be microseconds:
that is the "straightforward mechanism of recognition" claim.
"""

from repro.core.fingerprint import build_fingerprints
from repro.core.matcher import match_fingerprints
from repro.core.recognizer import EFDRecognizer
from repro.experiments.reporting import render_mechanism_diagram


def test_bench_figure1_learning(benchmark, paper_dataset, save_report):
    recognizer = benchmark.pedantic(
        lambda: EFDRecognizer(depth=3).fit(paper_dataset),
        rounds=3, iterations=1,
    )
    stats = recognizer.stats()
    assert stats.n_insertions == len(paper_dataset) * 4
    assert stats.pruning_ratio > 0.3  # rounding actually prunes
    save_report("figure1_mechanism", render_mechanism_diagram())


def test_bench_figure1_lookup_latency(benchmark, paper_dataset):
    recognizer = EFDRecognizer(depth=3).fit(paper_dataset)
    record = paper_dataset[0]
    fingerprints = build_fingerprints(record, "nr_mapped_vmstat", 3)

    result = benchmark(match_fingerprints, recognizer.dictionary_, fingerprints)

    assert result.prediction == record.app_name
    # O(1) dictionary lookups: the whole verdict in well under a millisecond.
    assert benchmark.stats["mean"] < 1e-3
