"""Ablation — fingerprint interval placement.

The paper chooses [60 s, 120 s] "to avoid the perturbations in the
initialization phase while still reporting results relatively early".
This bench slides a 60 s window across the execution start: windows
overlapping the init phase must score visibly worse, and any window
clear of it performs like the paper's.
"""

from repro._util.tables import TextTable
from repro.experiments.protocol import make_efd_factory, run_experiment


def test_bench_ablation_interval_placement(benchmark, paper_dataset, save_report):
    starts = (0.0, 20.0, 40.0, 60.0, 90.0, 120.0)

    def sweep():
        scores = {}
        for start in starts:
            result = run_experiment(
                "normal_fold", paper_dataset,
                make_efd_factory(interval=(start, start + 60.0)), k=3,
            )
            scores[start] = result.fscore
        return scores

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Windows inside the init phase (starting at 0) are clearly worse
    # than the paper's [60:120].
    assert scores[60.0] > scores[0.0] + 0.1
    # Once clear of initialization, placement barely matters.
    assert abs(scores[90.0] - scores[60.0]) < 0.1

    table = TextTable(
        ["Window", "Normal-Fold F"],
        title="Ablation: fingerprint interval placement (60 s windows)",
    )
    for start in starts:
        table.add_row([f"[{start:g}:{start + 60:g}]", f"{scores[start]:.3f}"])
    save_report("ablation_interval", table.render())
