"""Table 2 — dataset composition.

Regenerates the evaluation dataset's composition table and benchmarks
synthetic dataset generation (the substrate's throughput).
"""

from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.experiments.tables import render_table2


def test_bench_table2_dataset(benchmark, paper_dataset, save_report):
    # Benchmark a reduced generation run (1 repetition) to keep the
    # benchmark loop affordable; the report uses the full fixture.
    config = DatasetConfig(metrics=("nr_mapped_vmstat",), repetitions=1, seed=1)

    dataset = benchmark.pedantic(
        lambda: TaxonomistDatasetGenerator(config).generate(),
        rounds=3, iterations=1,
    )

    assert len(dataset) == 37
    summary = paper_dataset.summary()
    # Table 2's shape: 11 applications, X/Y/Z (+L subset), 4 nodes.
    assert len(summary["applications"]) == 11
    assert summary["node_count"] == 4
    assert summary["pairs"] == 37
    assert summary["repetitions"] == [10]
    save_report("table2_dataset", render_table2(paper_dataset))
