"""Negative-lookup fast path at production scale: unknown-heavy batches.

The paper's unknown-detection setting makes *misses* the dominant case
on open traffic — most probed fingerprints belong to applications that
were never learned.  The acceptance bar for the mmap + filter work:
against a ~1M-key store,

- an mmap store must be **query-ready in < 100 ms** (open = manifest +
  filters; no column bytes read), while the npz miss path historically
  decompressed and indexed the whole store first;
- a **99%-unknown 1k-batch** must resolve **>= 10x** faster than the
  pre-filter npz miss path (full-index build included), and
- a cold 1k-batch with a 10% hit mix must stay **>= 5x** over that npz
  index — all with element-wise identical answers.

``BENCH_NEGLOOKUP_KEYS`` scales the store down for smoke runs; the
hard thresholds only assert at full scale.  Every number lands in
``BENCH_engine.json`` via the shared trajectory writer.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.rounding import round_depth_array
from repro.engine import ShardedDictionary, load_columnar, save_columnar

METRIC = "synthetic_rate"
DEPTH = 3
INTERVAL = (60.0, 120.0)
N_NODES = 4
N_SHARDS = 8
N_KEYS = int(os.environ.get("BENCH_NEGLOOKUP_KEYS", "1000000"))
FULL_SCALE = N_KEYS >= 1_000_000
BATCH = 1_000

_LABELS = [f"app{i:02d}_X" for i in range(40)]


def _value_grid(per_node: int, exponents) -> np.ndarray:
    """Distinct raw values whose depth-3 roundings are pairwise
    distinct: mantissas 100..999 across the given exponent range."""
    mantissas = np.arange(100, 1000, dtype=np.float64)
    exponents = np.asarray(exponents, dtype=np.float64)
    if len(mantissas) * len(exponents) < per_node:
        raise ValueError(f"value grid too small for {per_node} keys/node")
    grid = (mantissas[None, :] * 10.0 ** exponents[:, None]).ravel()
    return grid[:per_node]


def _build_store():
    per_node = (N_KEYS + N_NODES - 1) // N_NODES
    known = round_depth_array(
        _value_grid(per_node, np.arange(-140, 140)), DEPTH
    )
    sharded = ShardedDictionary(N_SHARDS)
    inserted = 0
    for node in range(N_NODES):
        for i, value in enumerate(known.tolist()):
            if inserted >= N_KEYS:
                break
            sharded.add(
                Fingerprint(
                    metric=METRIC, node=node, interval=INTERVAL, value=value
                ),
                _LABELS[(node * per_node + i) % len(_LABELS)],
            )
            inserted += 1
    # Unknown probe values: a disjoint exponent band, so every probe is
    # a genuine miss (depth-3 roundings cannot collide across bands).
    unknown = round_depth_array(
        _value_grid(min(per_node, 20_000), np.arange(145, 170)), DEPTH
    )
    return sharded, known, unknown


def _probe_batch(known, unknown, n_hits: int, seed: int):
    rng = np.random.default_rng(seed)
    probes = []
    for value in rng.choice(unknown, size=BATCH - n_hits, replace=True):
        probes.append(
            Fingerprint(
                metric=METRIC,
                node=int(rng.integers(N_NODES)),
                interval=INTERVAL,
                value=float(value),
            )
        )
    for value in rng.choice(known, size=n_hits, replace=False):
        probes.append(
            Fingerprint(
                metric=METRIC,
                node=int(rng.integers(N_NODES)),
                interval=INTERVAL,
                value=float(value),
            )
        )
    rng.shuffle(probes)
    return probes


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def test_negative_lookup(tmp_path, save_report, bench_record):
    sharded, known, unknown = _build_store()
    n_keys = len(sharded)

    plain_dir = str(tmp_path / "npz-plain")   # the pre-filter miss path
    npz_dir = str(tmp_path / "npz-filtered")
    mmap_dir = str(tmp_path / "mmap")
    save_columnar(sharded, plain_dir, storage="npz", filters=False)
    save_columnar(sharded, npz_dir, storage="npz")
    save_columnar(sharded, mmap_dir, storage="mmap")
    del sharded
    # Settle writeback of the stores just written: on a small host the
    # kernel flushing ~100 MB of dirty pages otherwise lands on top of
    # the timed opens, measuring our own save instead of the open path.
    os.sync()

    batch_99 = _probe_batch(known, unknown, n_hits=BATCH // 100, seed=1)
    batch_90 = _probe_batch(known, unknown, n_hits=BATCH // 10, seed=2)

    # Query-ready: open = manifest + filters, no column bytes.  Best of
    # three — single-shot wall times on a 1-core box measure scheduler
    # noise as much as the open path.
    t_ready = {}
    stores = {}
    for name, directory in (
        ("npz-plain", plain_dir), ("npz", npz_dir), ("mmap", mmap_dir)
    ):
        samples = []
        for _ in range(3):
            t_open, stores[name] = _timed(
                lambda d=directory: load_columnar(d)
            )
            samples.append(t_open)
        t_ready[name] = min(samples)

    # Cold batches: first resolution on a fresh store object (best of
    # three fresh stores; the page cache is steady, so each repeat is
    # the same cold code path — full decompression + index build for
    # the pre-filter baseline, filter + hash-index probes for the
    # filtered stores — without cross-run scheduler noise).
    timings = {}
    for tag, batch in (("99pct-unknown", batch_99), ("90pct-unknown", batch_90)):
        results = {}
        timings[tag] = {}
        for name, directory in (
            ("npz-plain", plain_dir), ("npz", npz_dir), ("mmap", mmap_dir)
        ):
            colds = []
            for _ in range(3):
                store = load_columnar(directory)
                t_cold, out = _timed(
                    lambda s=store, b=batch: s.lookup_many(b)
                )
                colds.append(t_cold)
            t_warm, out2 = _timed(lambda s=store, b=batch: s.lookup_many(b))
            assert out == out2
            timings[tag][name] = {"cold_s": min(colds), "warm_s": t_warm}
            results[name] = out
        assert results["npz"] == results["npz-plain"], tag
        assert results["mmap"] == results["npz-plain"], tag
        n_hits = sum(1 for labels in results["mmap"] if labels)
        assert n_hits == (10 if tag == "99pct-unknown" else 100), tag

    speedup_99 = (
        timings["99pct-unknown"]["npz-plain"]["cold_s"]
        / timings["99pct-unknown"]["mmap"]["cold_s"]
    )
    speedup_90 = (
        timings["90pct-unknown"]["npz-plain"]["cold_s"]
        / timings["90pct-unknown"]["mmap"]["cold_s"]
    )

    report = "\n".join(
        [
            f"Negative lookup: {n_keys} keys, {N_SHARDS} shards, "
            f"{BATCH}-probe batches "
            f"({'full scale' if FULL_SCALE else 'smoke'})",
            "",
            "query-ready (open to first answerable probe):",
            *(
                f"  {name:<10s} {t_ready[name] * 1e3:10.1f} ms"
                for name in ("npz-plain", "npz", "mmap")
            ),
            "",
            "cold / warm 1k-batch resolution:",
            *(
                f"  {tag:<14s} {name:<10s} "
                f"{timings[tag][name]['cold_s'] * 1e3:10.1f} ms / "
                f"{timings[tag][name]['warm_s'] * 1e3:10.1f} ms"
                for tag in timings
                for name in timings[tag]
            ),
            "",
            f"99%-unknown speedup over the pre-filter npz miss path: "
            f"{speedup_99:5.1f}x (target >= 10x)",
            f"90%-unknown speedup: {speedup_90:5.1f}x (target >= 5x)",
            f"mmap query-ready: {t_ready['mmap'] * 1e3:.1f} ms "
            f"(target < 100 ms)",
        ]
    )
    save_report("negative_lookup", report)

    bench_record.n = n_keys
    bench_record.throughput = (
        BATCH / timings["99pct-unknown"]["mmap"]["cold_s"]
    )
    bench_record.extra.update(
        {
            "query_ready_s": {k: round(v, 4) for k, v in t_ready.items()},
            "batches": {
                tag: {
                    name: {kk: round(vv, 4) for kk, vv in row.items()}
                    for name, row in per.items()
                }
                for tag, per in timings.items()
            },
            "speedup_99pct_unknown": round(speedup_99, 2),
            "speedup_90pct_unknown": round(speedup_90, 2),
            "full_scale": FULL_SCALE,
        }
    )

    if FULL_SCALE:
        assert t_ready["mmap"] < 0.1, (
            f"mmap store took {t_ready['mmap'] * 1e3:.0f} ms to query-ready"
        )
        assert speedup_99 >= 10.0, (
            f"99%-unknown batch only {speedup_99:.1f}x the npz miss path"
        )
        assert speedup_90 >= 5.0, (
            f"90%-unknown cold batch only {speedup_90:.1f}x the npz index"
        )
