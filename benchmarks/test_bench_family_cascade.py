"""Coarse-tier absorption on a mixed recognition stream.

The acceptance bar for :mod:`repro.family`: on batch traffic mixing
repeat executions of known variants, new-version (near-family) probes,
and genuinely unknown applications, the coarse tier must resolve or
reject at least 80% of probes without full-depth refinement — repeats
dedup onto already-resolved coarse keys, and unknown-band probes
short-circuit at the coarse tier the way the columnar store's
negative-lookup filters would, one layer earlier and for every backend.

The stream is verdict-checked, not just timed: every known execution
must come back ``match`` under its own family, every drifted probe
``near-family``, every foreign-band probe ``unknown``.

Scale knobs: ``BENCH_FAMILY_EXECS`` (default 1,000 executions of 4
nodes each — the 1k mixed stream), ``BENCH_FAMILY_MIN_ABSORPTION``
(default 0.8).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.engine.stats import EngineStats
from repro.family import FamilyCascade, FamilySpec

N_EXECS = int(os.environ.get("BENCH_FAMILY_EXECS", 1_000))
MIN_ABSORPTION = float(os.environ.get("BENCH_FAMILY_MIN_ABSORPTION", 0.8))
N_NODES = 4

#: Variant -> band of stored depth-3 levels.  Bands sit in distinct
#: coarse (depth-1) buckets per family, mirroring the calibrated
#: nr_mapped lattice, so family voting is unambiguous.
BANDS = {
    "ft-1.0": 6000.0,
    "ft-2.0": 6200.0,
    "mg-1.0": 3000.0,
    "mg-2.0": 3200.0,
    "sp-1.0": 8000.0,
}
#: Unexplored tail of each family's coarse bucket: depth-3 keys never
#: stored (bands span base..base+90), yet close enough that the depth-1
#: projection stays on the family's coarse key — a "new version".
NEAR_OFFSET = 110.0
#: A decade no family occupies: coarse projections miss outright.
UNKNOWN_BASE = 40_000.0
#: Distinct stored levels per variant (the hot working set whose
#: repeats the cascade's per-batch dedup absorbs).
LEVELS_PER_APP = 10


def _fps(value):
    return [
        Fingerprint(metric="nr_mapped_vmstat", node=node,
                    interval=(60.0, 120.0), value=value)
        for node in range(N_NODES)
    ]


@pytest.mark.bench
def test_family_cascade_absorption(save_report, bench_record):
    fine = ExecutionFingerprintDictionary()
    for app, base in BANDS.items():
        for i in range(LEVELS_PER_APP):
            for fp in _fps(base + 10.0 * i):
                fine.add(fp, f"{app}_X")

    stats = EngineStats()
    cascade = FamilyCascade(
        fine,
        spec=FamilySpec.from_apps(fine.app_names()),
        coarse_depth=1,
        fine_depth=3,
        stats=stats,
    )

    rng = random.Random(2021)
    apps = sorted(BANDS)
    stream, kinds = [], []
    for _ in range(N_EXECS):
        roll = rng.random()
        app = rng.choice(apps)
        if roll < 0.55:  # repeat execution of a known variant
            value = BANDS[app] + 10.0 * rng.randrange(LEVELS_PER_APP)
            kinds.append(("match", app.rsplit("-", 1)[0]))
        elif roll < 0.80:  # same family, unseen version: drifted level
            value = BANDS[app] + NEAR_OFFSET + 10.0 * rng.randrange(5)
            kinds.append(("near-family", app.rsplit("-", 1)[0]))
        else:  # foreign decade: unknown application
            value = UNKNOWN_BASE + 100.0 * rng.randrange(50)
            kinds.append(("unknown", None))
        stream.append(_fps(value))

    t0 = time.perf_counter()
    verdicts = cascade.cascade_match(stream)
    elapsed = time.perf_counter() - t0

    tally = {"match": 0, "near-family": 0, "unknown": 0}
    for verdict, (kind, family) in zip(verdicts, kinds):
        assert verdict.outcome == kind, (verdict.describe(), kind)
        if family is not None:
            assert verdict.family == family
        tally[kind] += 1

    probes = stats.family_coarse_hits + stats.family_shortcircuits
    absorption = stats.coarse_absorption
    assert probes == N_EXECS * N_NODES
    assert absorption >= MIN_ABSORPTION, (
        f"coarse tier absorbed only {absorption:.1%} of {probes} probes "
        f"(refined {stats.family_refinements}); floor {MIN_ABSORPTION:.0%}"
    )

    tiers = cascade.coarse_stats()
    execs_per_s = N_EXECS / elapsed if elapsed else float("inf")
    bench_record.n = N_EXECS
    bench_record.seconds = round(elapsed, 6)
    bench_record.throughput = round(execs_per_s, 1)
    bench_record.extra.update(
        probes=probes,
        absorption=round(absorption, 4),
        refinements=stats.family_refinements,
        short_circuits=stats.family_shortcircuits,
        near_family=stats.family_near,
        coarse_keys=tiers["coarse_keys"],
        fine_keys=tiers["fine_keys"],
    )

    save_report("family_cascade_absorption", "\n".join([
        f"Family cascade: {N_EXECS} executions x {N_NODES} nodes "
        f"({tiers['fine_keys']} fine keys -> {tiers['coarse_keys']} "
        f"coarse keys, {tiers['families']} families)",
        f"  verdicts    : {tally['match']} match, "
        f"{tally['near-family']} near-family, {tally['unknown']} unknown",
        f"  coarse tier : {absorption:.1%} of {probes} probes absorbed "
        f"(refined {stats.family_refinements} unique keys, "
        f"short-circuited {stats.family_shortcircuits})",
        f"  throughput  : {execs_per_s:,.0f} executions/s "
        f"(floor {MIN_ABSORPTION:.0%} absorption)",
    ]))
