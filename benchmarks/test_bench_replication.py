"""Replication shipping rate and replica staleness under a live trickle.

The failover story (ISSUE 7) is only as good as the replica's lag: a
promoted replica serves whatever it had applied when the leader died.
This bench drives a leader→replica link at a paced ~1k-append/s
trickle — the learn-while-serving write rate the mutation bench proved
the delta-log sustains — with one mid-trickle compaction (a full base
swap shipped as a snapshot), and measures

- **shipping rate**: records/s and segment frames/s the publisher
  pushes to the follower, plus snapshot bytes for the base swap,
- **replica staleness**: the follower's ``(generations, records)`` lag
  sampled after every burst; the acceptance bar is that the replica of
  a full-scale (1M-key) dictionary never falls more than one
  generation behind and converges to the leader's exact position, and
- **swap cost**: wall time of the compaction fold and of the replica
  swallowing the resulting snapshot.

``BENCH_REPL_KEYS`` / ``BENCH_REPL_APPENDS`` scale the store down for
smoke runs; the rate and staleness floors only assert at full scale.
Every number lands in ``BENCH_engine.json`` via the shared trajectory
writer.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.rounding import round_depth_array
from repro.engine import (
    EngineStats,
    ShardedDictionary,
    load_columnar,
    save_columnar,
)

METRIC = "synthetic_rate"
DEPTH = 3
INTERVAL = (60.0, 120.0)
N_NODES = 4
N_SHARDS = 8
N_KEYS = int(os.environ.get("BENCH_REPL_KEYS", "1000000"))
N_APPENDS = int(os.environ.get("BENCH_REPL_APPENDS", "2000"))
FULL_SCALE = N_KEYS >= 1_000_000
TARGET_RATE = 1_000          # appends/s the trickle is paced at
BURST = 50                   # appends between pacing sleeps / lag samples
MIN_RECORDS_PER_S = 500      # shipped, asserted at full scale only
MAX_STALENESS_RECORDS = 1_000  # ~1 s of trickle, same-generation samples

_APPS = [f"app{i:02d}" for i in range(40)]
_INPUTS = ("X", "Y", "Z")
_LABELS = [f"{app}_{size}" for app in _APPS for size in _INPUTS]


def _node_values(per_node: int) -> np.ndarray:
    mantissas = np.arange(100, 1000, dtype=np.float64)
    exponents = np.arange(-140, 140, dtype=np.float64)
    if len(mantissas) * len(exponents) < per_node:
        raise ValueError(f"value grid too small for {per_node} keys/node")
    grid = (mantissas[None, :] * 10.0 ** exponents[:, None]).ravel()
    return grid[:per_node]


def _build_store() -> ShardedDictionary:
    per_node = (N_KEYS + N_NODES - 1) // N_NODES
    sharded = ShardedDictionary(N_SHARDS)
    inserted = 0
    for node in range(N_NODES):
        rounded = round_depth_array(_node_values(per_node), DEPTH)
        for i, value in enumerate(rounded.tolist()):
            if inserted >= N_KEYS:
                break
            sharded.add(
                Fingerprint(
                    metric=METRIC, node=node, interval=INTERVAL, value=value
                ),
                _LABELS[(node * per_node + i) % len(_LABELS)],
            )
            inserted += 1
    return sharded


def _new_key_values(n: int) -> list:
    # A mantissa grid at exponents beyond the base store's range: every
    # rounded value is distinct and misses the base.
    mantissas = np.arange(100, 1000, dtype=np.float64)
    exponents = np.arange(141, 141 + n // len(mantissas) + 1,
                          dtype=np.float64)
    grid = (mantissas[None, :] * 10.0 ** exponents[:, None]).ravel()
    return round_depth_array(grid[:n], DEPTH).tolist()


@pytest.mark.bench
def test_replication_shipping_and_staleness(tmp_path, save_report,
                                            bench_record):
    from repro.engine.replicate import (
        ReplicationFollower,
        ReplicationPublisher,
    )

    sharded = _build_store()
    n_keys = len(sharded)
    leader_dir = str(tmp_path / "leader")
    replica_dir = str(tmp_path / "replica")
    save_columnar(sharded, leader_dir)
    del sharded
    values = _new_key_values(N_APPENDS)
    stats = EngineStats()
    out = {}

    async def run():
        loop = asyncio.get_running_loop()
        leader = load_columnar(leader_dir)
        async with ReplicationPublisher(
            leader_dir, port=0, stats=stats,
            poll_interval=0.002, heartbeat=0.05,
        ) as publisher:
            host, port = publisher.tcp_address
            follower = ReplicationFollower(
                replica_dir, host=host, port=port, reconnect_delay=0.05
            )
            await follower.start()
            t0 = time.perf_counter()
            assert await follower.wait_ready(timeout=600.0), \
                "replica never bootstrapped"
            t_boot = time.perf_counter() - t0
            follower.attach(load_columnar(replica_dir))
            try:
                lag_samples = []
                t_compact = t_swap = 0.0
                t0 = time.perf_counter()
                next_due = t0
                for i in range(N_APPENDS):
                    leader.add_repeated(
                        Fingerprint(metric=METRIC, node=i % N_NODES,
                                    interval=INTERVAL, value=values[i]),
                        _LABELS[i % len(_LABELS)], 1,
                    )
                    if (i + 1) % BURST == 0:
                        next_due += BURST / TARGET_RATE
                        delay = next_due - time.perf_counter()
                        await asyncio.sleep(max(delay, 0))
                        lag_samples.append(follower.lag)
                    if i == N_APPENDS // 2:
                        # Base swap under load: fold on a worker thread
                        # so the publisher keeps streaming, then time
                        # how long the replica takes to swallow the
                        # snapshot and be current again.
                        t1 = time.perf_counter()
                        await loop.run_in_executor(
                            None, leader.compact_delta
                        )
                        t_compact = time.perf_counter() - t1
                        generation = leader._delta.generation
                        pending = leader.delta_pending
                        t1 = time.perf_counter()
                        assert await follower.wait_position(
                            generation, pending, timeout=600.0
                        ), f"replica never swapped (lag={follower.lag})"
                        t_swap = time.perf_counter() - t1
                        next_due = time.perf_counter()
                append_wall = time.perf_counter() - t0
                assert await follower.wait_position(
                    leader._delta.generation, leader.delta_pending,
                    timeout=600.0,
                ), f"replica never converged (lag={follower.lag})"
                converge_wall = time.perf_counter() - t0
                out.update(
                    t_boot=t_boot,
                    append_wall=append_wall,
                    converge_wall=converge_wall,
                    t_compact=t_compact,
                    t_swap=t_swap,
                    lag_samples=lag_samples,
                    final_generation=leader._delta.generation,
                )
            finally:
                await follower.close()

    asyncio.run(run())

    lag_samples = out["lag_samples"]
    max_lag_gen = max((g for g, _ in lag_samples), default=0)
    same_gen_records = [r for g, r in lag_samples if g == 0]
    max_staleness = max(same_gen_records, default=0)
    mean_staleness = (
        sum(same_gen_records) / len(same_gen_records)
        if same_gen_records else 0.0
    )
    # Rate over the *active* trickle wall: the compaction fold and the
    # snapshot catch-up are one-off swap costs, reported separately.
    active_wall = out["converge_wall"] - out["t_compact"] - out["t_swap"]
    records_per_s = (
        stats.repl_records_shipped / active_wall
        if active_wall > 0 else float("inf")
    )
    segments_per_s = (
        stats.repl_segments_shipped / active_wall
        if active_wall > 0 else float("inf")
    )

    # The replica never serves a state more than one base swap old —
    # structural at any scale, not just full scale.
    assert max_lag_gen <= 1, f"replica fell {max_lag_gen} generations behind"
    assert out["final_generation"] == 1
    assert stats.repl_snapshots_shipped >= 2  # bootstrap + base swap
    if FULL_SCALE:
        assert records_per_s >= MIN_RECORDS_PER_S, (
            f"shipped {records_per_s:.0f} records/s under "
            f"{MIN_RECORDS_PER_S}/s at full scale"
        )
        assert max_staleness <= MAX_STALENESS_RECORDS, (
            f"replica staleness peaked at {max_staleness} records "
            f"(> {MAX_STALENESS_RECORDS}) at a {TARGET_RATE}/s trickle"
        )

    report = "\n".join([
        f"Replication: {n_keys} keys, {N_APPENDS} appends paced at "
        f"{TARGET_RATE}/s ({'full scale' if FULL_SCALE else 'smoke'})",
        "",
        f"bootstrap  : {out['t_boot']:8.2f} s to snapshot the base to an "
        f"empty replica",
        f"shipping   : {records_per_s:10.0f} records/s, "
        f"{segments_per_s:8.1f} segment frames/s, "
        f"{stats.repl_bytes_shipped} B total",
        f"staleness  : max {max_staleness} / mean {mean_staleness:.1f} "
        f"record(s) behind at same generation; "
        f"max {max_lag_gen} generation(s) behind",
        f"base swap  : fold {out['t_compact']:6.2f} s, replica current "
        f"again {out['t_swap']:6.2f} s after it "
        f"({stats.repl_snapshots_shipped} snapshot(s) shipped)",
        f"converged  : leader position reached "
        f"{out['converge_wall'] - out['append_wall']:6.3f} s after the "
        f"last append",
    ])
    save_report("bench_replication", report)

    bench_record.n = N_APPENDS
    bench_record.seconds = round(out["converge_wall"], 6)
    bench_record.throughput = round(records_per_s, 1)
    bench_record.extra = {
        "n_keys": n_keys,
        "records_shipped_per_s": round(records_per_s, 1),
        "segments_shipped_per_s": round(segments_per_s, 2),
        "bytes_shipped": stats.repl_bytes_shipped,
        "snapshots_shipped": stats.repl_snapshots_shipped,
        "boot_s": round(out["t_boot"], 6),
        "staleness_records_max": max_staleness,
        "staleness_records_mean": round(mean_staleness, 2),
        "lag_generations_max": max_lag_gen,
        "swap_catchup_s": round(out["t_swap"], 6),
        "full_scale": FULL_SCALE,
    }
