"""Ablation — combinatorial fingerprints (the paper's future work, §5/§6).

    "Going forward, we can make fingerprints more exclusive by combining
    multiple system metrics..."

Compares one-metric EFD, multi-metric voting, and combinatorial
(tuple-key) fingerprints on the hard-unknown experiment — the setting
the paper says needs more exclusiveness.  Expected: combinatorial keys
reject unknown applications better than the single metric.
"""

import numpy as np

from repro._util.tables import TextTable
from repro.core.multimetric import MultiMetricRecognizer
from repro.data.splits import UNKNOWN_LABEL
from repro.experiments.protocol import evaluate_splits, make_efd_factory, splits_for

METRICS = [
    "nr_mapped_vmstat",
    "Committed_AS_meminfo",
    "nr_active_anon_vmstat",
]


def _multi_factory(mode):
    def factory():
        return MultiMetricRecognizer(
            METRICS, depth=3, mode=mode, unknown_label=UNKNOWN_LABEL
        )
    return factory


def test_bench_ablation_multimetric(benchmark, table3_dataset, save_report):
    splits = splits_for("hard_unknown", table3_dataset)
    normal_splits = splits_for("normal_fold", table3_dataset, k=3)

    def sweep():
        out = {}
        for name, factory in (
            ("EFD (1 metric)", make_efd_factory(depth=3)),
            ("multi-metric vote", _multi_factory("vote")),
            ("combinatorial", _multi_factory("combine")),
        ):
            hard = evaluate_splits(table3_dataset, splits, factory).fscore
            normal = evaluate_splits(
                table3_dataset, normal_splits, factory
            ).fscore
            out[name] = (normal, hard)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Combinatorial fingerprints are the most exclusive: best hard-unknown.
    assert results["combinatorial"][1] >= results["EFD (1 metric)"][1]
    # ... without giving up normal-fold recognition.
    assert results["combinatorial"][0] > 0.9

    table = TextTable(
        ["Fingerprint scheme", "Normal Fold F", "Hard Unknown F"],
        title="Ablation: fingerprint exclusiveness (paper's future work)",
    )
    for name, (normal, hard) in results.items():
        table.add_row([name, f"{normal:.3f}", f"{hard:.3f}"])
    save_report("ablation_multimetric", table.render())
