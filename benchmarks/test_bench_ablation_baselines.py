"""Ablation — dictionary lookup vs distance-based matching.

    "Computing distance measures for every example introduces unnecessary
    computational steps."  (§3, Pruning)

Compares the EFD against nearest-centroid and 1-NN recognizers that use
the *same* feature (per-node [60:120] interval means, unrounded).
Expected: comparable accuracy on the normal fold — the paper's point is
not that hashing is more accurate, but that it is simpler and O(1) —
while per-prediction latency favours the dictionary as the training set
grows.
"""

import time

import numpy as np

from repro._util.tables import TextTable
from repro.baselines.nearest import NearestCentroidRecognizer, OneNNRecognizer
from repro.core.recognizer import EFDRecognizer
from repro.data.splits import kfold_splits
from repro.ml.metrics import f1_score


def _evaluate(dataset, factory, k=3):
    scores = []
    predict_seconds = 0.0
    n_predictions = 0
    for split in kfold_splits(dataset, k, 0):
        recognizer = factory()
        recognizer.fit(dataset.subset(list(split.train_indices)))
        test = dataset.subset(list(split.test_indices))
        start = time.perf_counter()
        y_pred = [recognizer.predict_one(r) for r in test]
        predict_seconds += time.perf_counter() - start
        n_predictions += len(test)
        scores.append(
            f1_score(list(split.expected), y_pred,
                     labels=sorted(set(split.expected)), average="macro")
        )
    return float(np.mean(scores)), predict_seconds / n_predictions


def test_bench_ablation_baselines(benchmark, paper_dataset, save_report):
    def sweep():
        return {
            "EFD (dictionary)": _evaluate(
                paper_dataset, lambda: EFDRecognizer(depth=3)
            ),
            "nearest centroid": _evaluate(
                paper_dataset, lambda: NearestCentroidRecognizer(rel_threshold=0.05)
            ),
            "1-NN": _evaluate(
                paper_dataset, lambda: OneNNRecognizer(rel_threshold=0.05)
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    efd_f, _ = results["EFD (dictionary)"]
    # The EFD gives up little or no accuracy against distance matching.
    for name, (f, _) in results.items():
        assert efd_f > f - 0.05, (name, f, efd_f)
    assert efd_f > 0.95

    table = TextTable(
        ["Recognizer", "Normal-Fold F", "Prediction latency"],
        title="Ablation: dictionary lookup vs distance-based matching "
              "(same interval-mean feature)",
    )
    for name, (f, latency) in results.items():
        table.add_row([name, f"{f:.3f}", f"{latency * 1e6:.0f} us"])
    save_report("ablation_baselines", table.render())
