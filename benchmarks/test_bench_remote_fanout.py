"""Distributed scatter/gather probe throughput vs the in-process store.

The acceptance bar for :mod:`repro.engine.remote`: a recognition tier
probing a 3-host shard fleet over the wire (loopback TCP, one
:class:`~repro.engine.remote.ShardServerThread` per shard) must sustain
a floor of probes/s on million-key batch traffic while staying
element-wise identical to the single-process sharded store.  Protocol
v2 closes the wire tax with pooled pipelined connections, the binary
columnar probe codec, and server-side bulk lookup, so the bench also
gates the *tax* — the ratio of in-process to remote throughput — and
logs bytes/probe and the pool reuse rate so a regression in any layer
shows up in the trajectory log, not just as a vague slowdown.

``test_remote_unknown_heavy_mirror_resolution`` covers the open-world
case the paper's unknown-detection evaluation makes dominant: 99%-miss
traffic.  With warmed client-side Bloom-filter mirrors, definite
misses must resolve locally — most probes never cross the wire at all.

Scale knobs: ``BENCH_REMOTE_PROBES`` (default 1,000,000 probed keys),
``BENCH_REMOTE_KEYS`` (default 50,000 stored keys),
``BENCH_REMOTE_BATCH`` (default 20,000 keys per batch),
``BENCH_REMOTE_MIN_PROBES_PER_SEC`` (default 100,000),
``BENCH_REMOTE_MAX_WIRE_TAX`` (default 1.6),
``BENCH_REMOTE_MIN_MIRROR_RESOLVED`` (default 0.9).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.core.fingerprint import Fingerprint
from repro.engine import ShardedDictionary
from repro.engine.remote import RemoteShardBackend, ShardServerThread

N_SHARDS = 3
N_PROBES = int(os.environ.get("BENCH_REMOTE_PROBES", 1_000_000))
N_KEYS = int(os.environ.get("BENCH_REMOTE_KEYS", 50_000))
BATCH = int(os.environ.get("BENCH_REMOTE_BATCH", 20_000))
REQUIRED_PROBES_PER_SEC = float(
    os.environ.get("BENCH_REMOTE_MIN_PROBES_PER_SEC", 100_000)
)
MAX_WIRE_TAX = float(os.environ.get("BENCH_REMOTE_MAX_WIRE_TAX", 1.6))
REQUIRED_MIRROR_RESOLVED = float(
    os.environ.get("BENCH_REMOTE_MIN_MIRROR_RESOLVED", 0.9)
)


def _fp(i: int) -> Fingerprint:
    return Fingerprint(
        metric=f"m{i % 4}",
        node=i % 8,
        interval=(0.0, 60.0) if i % 3 else (60.0, 120.0),
        value=float(i) * 100.0,
    )


def _seed_store() -> ShardedDictionary:
    store = ShardedDictionary(N_SHARDS)
    for i in range(N_KEYS):
        store.add(_fp(i), f"app{i % 12}_X")
    return store


def _fleet(store):
    return [
        ShardServerThread(store, n_shards=N_SHARDS, shards=[k]).start()
        for k in range(N_SHARDS)
    ]


@pytest.mark.bench
def test_remote_fanout_throughput(save_report, bench_record):
    store = _seed_store()

    rng = random.Random(2021)
    # 80% hits sampled with repeats, 20% misses — recognition traffic.
    probes = [
        _fp(rng.randrange(N_KEYS)) if rng.random() < 0.8
        else _fp(N_KEYS + rng.randrange(N_KEYS))
        for _ in range(N_PROBES)
    ]
    batches = [probes[i:i + BATCH] for i in range(0, len(probes), BATCH)]

    # Single-process reference: the same batches through the sharded
    # store's own batch path.  Per-batch timing on both sides keeps
    # result retention (and the GC pressure of millions of held lists)
    # out of the measured number — serving discards verdicts too.
    expected = []
    local_elapsed = 0.0
    for batch in batches:
        t0 = time.perf_counter()
        answers = store.lookup_many(batch)
        local_elapsed += time.perf_counter() - t0
        expected.append(answers)

    threads = _fleet(store)
    try:
        remote = RemoteShardBackend(
            [f"{k}@{threads[k].endpoint}" for k in range(N_SHARDS)],
            n_shards=N_SHARDS,
            deadline=60.0,
            try_timeout=30.0,
            rng=random.Random(0),
        )
        # Pre-pay the filter-mirror fetch: steady-state serving warms
        # once, and the timed region below is the steady state.
        assert remote.warm_filter_mirrors()
        elapsed = 0.0
        for batch, answers in zip(batches, expected):
            t0 = time.perf_counter()
            got = remote.lookup_many(batch)
            elapsed += time.perf_counter() - t0
            assert got == answers, "remote fan-out diverged from in-process"
        assert remote.last_degraded == {}
        stats = remote.engine_stats
        assert stats.remote_degraded == 0
        # Every unique key per batch is accounted for: either billed to
        # a wire call or resolved locally from the filter mirrors.
        assert stats.remote_keys + stats.filter_mirror_hits >= sum(
            len(set(b)) for b in batches
        )
        remote.close()
    finally:
        for thread in threads:
            thread.stop()

    probes_per_s = N_PROBES / elapsed
    local_per_s = N_PROBES / local_elapsed
    wire_tax = local_per_s / probes_per_s
    wire_bytes = stats.remote_bytes_sent + stats.remote_bytes_received
    reuse_rate = (
        stats.remote_pool_reuses / stats.remote_pool_checkouts
        if stats.remote_pool_checkouts else 0.0
    )
    bench_record.n = N_PROBES
    bench_record.seconds = round(elapsed, 6)
    bench_record.throughput = round(probes_per_s, 1)
    bench_record.extra.update(
        stored_keys=N_KEYS,
        batch=BATCH,
        hosts=N_SHARDS,
        local_probes_per_s=round(local_per_s, 1),
        remote_calls=stats.remote_calls,
        retries=stats.remote_retries,
        hedges=stats.remote_hedges,
        wire_tax=round(wire_tax, 2),
        bytes_per_probe=round(wire_bytes / N_PROBES, 2),
        pool_reuse_rate=round(reuse_rate, 3),
        filter_mirror_hits=stats.filter_mirror_hits,
    )

    save_report("remote_fanout_throughput", "\n".join([
        f"Remote scatter/gather: {N_PROBES} probes over {N_SHARDS} shard "
        f"hosts ({N_KEYS} stored keys, batches of {BATCH})",
        f"elapsed         : {elapsed:.3f}s",
        f"probes/s        : {probes_per_s:.0f}",
        f"in-process      : {local_per_s:.0f} probes/s "
        f"(wire tax {wire_tax:.2f}x)",
        f"wire            : {wire_bytes / N_PROBES:.1f} B/probe, "
        f"pool reuse {reuse_rate:.1%}, "
        f"mirror hits {stats.filter_mirror_hits}",
        f"remote calls    : {stats.remote_calls} "
        f"(retries={stats.remote_retries}, hedges={stats.remote_hedges}, "
        f"timeouts={stats.remote_timeouts})",
        "",
        f"requirement: >= {REQUIRED_PROBES_PER_SEC:.0f} probes/s, wire "
        f"tax <= {MAX_WIRE_TAX:.2f}x, element-wise identical answers, "
        "zero degraded verdicts",
    ]))

    assert probes_per_s >= REQUIRED_PROBES_PER_SEC, (
        f"remote fan-out below bar: {probes_per_s:.0f} probes/s"
    )
    assert wire_tax <= MAX_WIRE_TAX, (
        f"wire tax above bar: {wire_tax:.2f}x in-process "
        f"({probes_per_s:.0f} vs {local_per_s:.0f} probes/s)"
    )


@pytest.mark.bench
def test_remote_unknown_heavy_mirror_resolution(save_report, bench_record):
    """99%-miss traffic: the open-world case.  With warmed mirrors a
    definite miss is a few Bloom lookups, not a wire round trip."""
    store = _seed_store()

    rng = random.Random(1717)
    n_probes = max(1, N_PROBES // 4)
    probes = [
        _fp(N_KEYS + rng.randrange(10 * N_KEYS)) if rng.random() < 0.99
        else _fp(rng.randrange(N_KEYS))
        for _ in range(n_probes)
    ]
    batches = [probes[i:i + BATCH] for i in range(0, len(probes), BATCH)]
    expected = [store.lookup_many(batch) for batch in batches]

    threads = _fleet(store)
    try:
        remote = RemoteShardBackend(
            [f"{k}@{threads[k].endpoint}" for k in range(N_SHARDS)],
            n_shards=N_SHARDS,
            deadline=60.0,
            try_timeout=30.0,
            rng=random.Random(0),
        )
        assert remote.warm_filter_mirrors()
        t0 = time.perf_counter()
        got = [remote.lookup_many(batch) for batch in batches]
        elapsed = time.perf_counter() - t0

        assert got == expected, "unknown-heavy fan-out diverged"
        assert remote.last_degraded == {}
        stats = remote.engine_stats
        unique = sum(len(set(b)) for b in batches)
        resolved = stats.filter_mirror_hits / unique
        remote.close()
    finally:
        for thread in threads:
            thread.stop()

    probes_per_s = n_probes / elapsed
    bench_record.n = n_probes
    bench_record.seconds = round(elapsed, 6)
    bench_record.throughput = round(probes_per_s, 1)
    bench_record.extra.update(
        stored_keys=N_KEYS,
        hosts=N_SHARDS,
        unique_probes=unique,
        mirror_resolved=round(resolved, 4),
        wire_keys=stats.remote_keys,
        remote_calls=stats.remote_calls,
    )

    save_report("remote_unknown_heavy", "\n".join([
        f"Unknown-heavy (99% miss) remote traffic: {n_probes} probes "
        f"over {N_SHARDS} hosts, mirrors warmed",
        f"elapsed         : {elapsed:.3f}s",
        f"probes/s        : {probes_per_s:.0f}",
        f"mirror resolved : {resolved:.1%} of {unique} unique probes "
        "(no wire round trip)",
        f"wire keys       : {stats.remote_keys} "
        f"over {stats.remote_calls} calls",
        "",
        f"requirement: >= {REQUIRED_MIRROR_RESOLVED:.0%} resolved from "
        "filter mirrors, element-wise identical answers",
    ]))

    assert resolved >= REQUIRED_MIRROR_RESOLVED, (
        f"mirror resolution below bar: {resolved:.1%}"
    )
