"""Distributed scatter/gather probe throughput vs the in-process store.

The acceptance bar for :mod:`repro.engine.remote`: a recognition tier
probing a 3-host shard fleet over the framed wire protocol (loopback
TCP, one :class:`~repro.engine.remote.ShardServerThread` per shard)
must sustain a floor of probes/s on million-key batch traffic while
staying element-wise identical to the single-process sharded store —
the fan-out pays JSON framing and socket round trips, and this bench
is what keeps that tax bounded and visible in the trajectory log.

Probes stream through :meth:`RemoteShardBackend.lookup_many` in
serving-sized chunks (a verdict batch, not one monster frame), so the
measured number is the steady-state scatter/gather rate, with the
resilience layer (deadline bookkeeping, breaker checks, hedge timers)
on every call.

Scale knobs: ``BENCH_REMOTE_PROBES`` (default 1,000,000 probed keys),
``BENCH_REMOTE_KEYS`` (default 50,000 stored keys),
``BENCH_REMOTE_BATCH`` (default 20,000 keys per batch),
``BENCH_REMOTE_MIN_PROBES_PER_SEC`` (default 20,000).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.core.fingerprint import Fingerprint
from repro.engine import ShardedDictionary
from repro.engine.remote import RemoteShardBackend, ShardServerThread

N_SHARDS = 3
N_PROBES = int(os.environ.get("BENCH_REMOTE_PROBES", 1_000_000))
N_KEYS = int(os.environ.get("BENCH_REMOTE_KEYS", 50_000))
BATCH = int(os.environ.get("BENCH_REMOTE_BATCH", 20_000))
REQUIRED_PROBES_PER_SEC = float(
    os.environ.get("BENCH_REMOTE_MIN_PROBES_PER_SEC", 20_000)
)


def _fp(i: int) -> Fingerprint:
    return Fingerprint(
        metric=f"m{i % 4}",
        node=i % 8,
        interval=(0.0, 60.0) if i % 3 else (60.0, 120.0),
        value=float(i) * 100.0,
    )


@pytest.mark.bench
def test_remote_fanout_throughput(save_report, bench_record):
    store = ShardedDictionary(N_SHARDS)
    for i in range(N_KEYS):
        store.add(_fp(i), f"app{i % 12}_X")

    rng = random.Random(2021)
    # 80% hits sampled with repeats, 20% misses — recognition traffic.
    probes = [
        _fp(rng.randrange(N_KEYS)) if rng.random() < 0.8
        else _fp(N_KEYS + rng.randrange(N_KEYS))
        for _ in range(N_PROBES)
    ]
    batches = [probes[i:i + BATCH] for i in range(0, len(probes), BATCH)]

    # Single-process reference: the same batches through the sharded
    # store's own batch path.
    t0 = time.perf_counter()
    expected = [store.lookup_many(batch) for batch in batches]
    local_elapsed = time.perf_counter() - t0

    threads = [
        ShardServerThread(store, n_shards=N_SHARDS, shards=[k]).start()
        for k in range(N_SHARDS)
    ]
    try:
        remote = RemoteShardBackend(
            [f"{k}@{threads[k].endpoint}" for k in range(N_SHARDS)],
            n_shards=N_SHARDS,
            deadline=60.0,
            try_timeout=30.0,
            rng=random.Random(0),
        )
        t0 = time.perf_counter()
        got = [remote.lookup_many(batch) for batch in batches]
        elapsed = time.perf_counter() - t0

        assert got == expected, "remote fan-out diverged from in-process"
        assert remote.last_degraded == {}
        stats = remote.engine_stats
        assert stats.remote_degraded == 0
        # Every unique key per batch is billed (duplicates dedup
        # client-side before the wire; retries may bill again).
        assert stats.remote_keys >= sum(len(set(b)) for b in batches)
        remote.close()
    finally:
        for thread in threads:
            thread.stop()

    probes_per_s = N_PROBES / elapsed
    local_per_s = N_PROBES / local_elapsed
    bench_record.n = N_PROBES
    bench_record.seconds = round(elapsed, 6)
    bench_record.throughput = round(probes_per_s, 1)
    bench_record.extra.update(
        stored_keys=N_KEYS,
        batch=BATCH,
        hosts=N_SHARDS,
        local_probes_per_s=round(local_per_s, 1),
        remote_calls=stats.remote_calls,
        retries=stats.remote_retries,
        hedges=stats.remote_hedges,
        wire_tax=round(local_per_s / probes_per_s, 1),
    )

    save_report("remote_fanout_throughput", "\n".join([
        f"Remote scatter/gather: {N_PROBES} probes over {N_SHARDS} shard "
        f"hosts ({N_KEYS} stored keys, batches of {BATCH})",
        f"elapsed         : {elapsed:.3f}s",
        f"probes/s        : {probes_per_s:.0f}",
        f"in-process      : {local_per_s:.0f} probes/s "
        f"({local_per_s / probes_per_s:.1f}x the wire path)",
        f"remote calls    : {stats.remote_calls} "
        f"(retries={stats.remote_retries}, hedges={stats.remote_hedges}, "
        f"timeouts={stats.remote_timeouts})",
        "",
        f"requirement: >= {REQUIRED_PROBES_PER_SEC:.0f} probes/s with "
        "element-wise identical answers and zero degraded verdicts",
    ]))

    assert probes_per_s >= REQUIRED_PROBES_PER_SEC, (
        f"remote fan-out below bar: {probes_per_s:.0f} probes/s"
    )
