"""Ablation — rounding depth (the EFD's only tunable parameter).

Sweeps depths 1-5 on the normal fold and reports F-score plus dictionary
size.  Expected shape (paper §3/§5): an interior optimum — depth 1
over-prunes (generic fingerprints, cross-application collisions such as
ft/mg sharing the 6000 bucket), large depths under-prune (precise
fingerprints that never repeat), and the optimum sits at depth 2-3 where
the SP/BT collision resolves.
"""

from repro._util.tables import TextTable
from repro.core.fingerprint import build_fingerprints
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.experiments.protocol import make_efd_factory, run_experiment


def _dictionary_size(dataset, depth):
    efd = ExecutionFingerprintDictionary()
    for record in dataset:
        efd.add_many(
            build_fingerprints(record, "nr_mapped_vmstat", depth), record.label
        )
    return efd.stats()


def test_bench_ablation_rounding_depth(benchmark, paper_dataset, save_report):
    depths = (1, 2, 3, 4, 5)

    def sweep():
        scores = {}
        for depth in depths:
            result = run_experiment(
                "normal_fold", paper_dataset,
                make_efd_factory(depth=depth), k=5,
            )
            scores[depth] = result.fscore
        return scores

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Interior optimum: the best depth is neither the coarsest nor the
    # finest candidate.
    best = max(scores, key=scores.get)
    assert best in (2, 3)
    assert scores[best] > scores[1] + 0.2
    assert scores[best] > scores[5] + 0.2
    # Depth 3 must beat depth 2: it resolves the SP/BT collision
    # ("Rounding depth 3 avoids this collision and also recognizes BT").
    assert scores[3] > scores[2]

    table = TextTable(
        ["Rounding Depth", "Normal-Fold F", "Dict Keys", "Pruning Ratio",
         "Colliding Keys"],
        title="Ablation: rounding depth vs recognition and dictionary size",
    )
    for depth in depths:
        stats = _dictionary_size(paper_dataset, depth)
        table.add_row(
            [depth, f"{scores[depth]:.3f}", stats.n_keys,
             f"{stats.pruning_ratio:.2f}", stats.n_colliding_keys]
        )
    save_report("ablation_rounding_depth", table.render())
