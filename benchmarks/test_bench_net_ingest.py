"""Multi-producer network ingestion throughput.

The acceptance bar for ``repro.serve.net``: the same 1000-session
interleaved stream that ``test_bench_serve_throughput.py`` pushes
through ``IngestService.submit_many`` in-process must sustain at least
the single-stream bar when it instead arrives over the wire — N
monitoring relays (real OS threads with blocking sockets, the shape of
external producers) concurrently pushing NDJSON into one UDS listener,
with every verdict element-wise identical to the synchronous batch path.

Producers pre-encode their byte streams before the clock starts: the
bench measures the *recognizer's* ingest ceiling (accept + frame + parse
+ route + resolve), not ``json.dumps`` in the load generator.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro.core.recognizer import EFDRecognizer
from repro.core.streaming import StreamingRecognizer
from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.engine import BatchRecognizer, ShardedDictionary
from repro.serve import (
    IngestService,
    NetListener,
    ServeConfig,
    interleave_records,
    split_by_job,
)

METRIC = "nr_mapped_vmstat"
DEPTH = 3
N_SESSIONS = 1000
N_SHARDS = 8
N_PRODUCERS = 4
# The PR 2 single-stream path recorded ~200 sessions/s on this stream;
# the wire path must not fall below it despite paying for framing and
# parsing (chunked reads + the bulk fast-path parser are what keep it
# there).
REQUIRED_SESSIONS_PER_SEC = 200.0

SERVE_CONFIG = ServeConfig(
    max_pending_samples=16384, backpressure="block",
    batch_max_sessions=128, batch_max_delay=0.005,
    net_batch_samples=1024, net_batch_delay=0.002,
)


@pytest.fixture(scope="module")
def net_setup():
    config = DatasetConfig(
        metrics=(METRIC,), repetitions=6, seed=2021, duration_cap=150.0
    )
    dataset = TaxonomistDatasetGenerator(config).generate()
    recognizer = EFDRecognizer(metric=METRIC, depth=DEPTH).fit(dataset)
    sharded = ShardedDictionary.from_flat(recognizer.dictionary_, N_SHARDS)
    pool = list(dataset)
    records = [pool[i % len(pool)] for i in range(N_SESSIONS)]
    job_ids = [f"job-{i:04d}" for i in range(N_SESSIONS)]
    samples = list(interleave_records(records, METRIC, job_ids))
    return recognizer, sharded, records, job_ids, samples


def _reference(recognizer, sharded, records, job_ids):
    streaming = StreamingRecognizer.from_recognizer(recognizer)
    sessions = []
    for record, job in zip(records, job_ids):
        session = streaming.open_session(n_nodes=record.n_nodes, session_id=job)
        for node in range(record.n_nodes):
            series = record.series(METRIC, node)
            session.ingest_many(node, series.times, series.values)
        sessions.append(session)
    engine = BatchRecognizer(sharded, metric=METRIC, depth=DEPTH)
    return dict(zip(job_ids, engine.recognize_sessions(sessions, force=True)))


def _producer(sock_path: str, payload: bytes, replies: list, slot: int):
    """One monitoring relay: blocking socket, pre-encoded byte stream.

    ``sendall`` stalling on a full kernel buffer IS the backpressure
    under test — a blocked service propagates all the way here.
    """
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sk:
        sk.connect(sock_path)
        sk.sendall(payload)
        sk.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sk.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
    replies[slot] = b"".join(chunks)


async def _serve_until_drained(engine, sock_path: str, payloads):
    service = IngestService(engine, SERVE_CONFIG)
    async with service:
        async with NetListener(service, uds=sock_path) as listener:
            replies: list = [None] * len(payloads)
            threads = [
                threading.Thread(target=_producer,
                                 args=(sock_path, payload, replies, i))
                for i, payload in enumerate(payloads)
            ]
            for t in threads:
                t.start()
            # Let the producer threads run while the loop serves.
            while any(t.is_alive() for t in threads):
                await asyncio.sleep(0.005)
            for t in threads:
                t.join()
        await service.drain()
    return service, replies


@pytest.mark.bench
def test_net_ingest_throughput_4_producers(net_setup, save_report,
                                           bench_record, tmp_path):
    recognizer, sharded, records, job_ids, samples = net_setup
    reference = _reference(recognizer, sharded, records, job_ids)
    n_samples = len(samples)

    streams = split_by_job(samples, N_PRODUCERS)
    payloads = [
        ("\n".join(s.to_json() for s in stream) + "\n").encode("utf-8")
        for stream in streams
    ]
    wire_bytes = sum(len(p) for p in payloads)
    sock_path = str(tmp_path / "bench.sock")

    engine = BatchRecognizer(sharded, metric=METRIC, depth=DEPTH)
    t0 = time.perf_counter()
    service, replies = asyncio.run(
        _serve_until_drained(engine, sock_path, payloads)
    )
    elapsed = time.perf_counter() - t0

    stats = engine.stats
    assert stats.n_shed == 0, "block policy must be lossless"
    assert stats.n_protocol_errors == 0
    assert stats.conns_accepted == N_PRODUCERS
    assert all(b'"ok": true' in r for r in replies)
    results = service.results
    assert len(results) == N_SESSIONS
    for job in job_ids:
        assert results[job] == reference[job], job

    sessions_per_s = N_SESSIONS / elapsed
    bench_record.n = N_SESSIONS
    bench_record.seconds = round(elapsed, 6)
    bench_record.throughput = round(sessions_per_s, 1)
    bench_record.extra.update(
        producers=N_PRODUCERS,
        samples_per_s=round(n_samples / elapsed, 1),
        wire_mb_per_s=round(wire_bytes / elapsed / 1e6, 2),
    )

    save_report("net_ingest_throughput", "\n".join([
        f"Network ingestion: {N_SESSIONS} sessions, {n_samples} samples "
        f"({wire_bytes / 1e6:.1f} MB NDJSON), {N_PRODUCERS} concurrent "
        f"producers over one UDS listener",
        f"elapsed         : {elapsed:.3f}s",
        f"sessions/s      : {sessions_per_s:.0f}",
        f"samples/s       : {n_samples / elapsed:.0f}",
        f"wire MB/s       : {wire_bytes / elapsed / 1e6:.1f}",
        f"latency         : mean={stats.mean_latency * 1e3:.1f}ms "
        f"max={stats.max_latency * 1e3:.1f}ms",
        f"queue peak      : {stats.queue_peak}",
        "",
        f"requirement: >= {REQUIRED_SESSIONS_PER_SEC:.0f} sessions/s "
        "sustained with element-wise identical verdicts and zero loss",
    ]))

    assert sessions_per_s >= REQUIRED_SESSIONS_PER_SEC, (
        f"network ingest throughput below bar: {sessions_per_s:.0f}/s"
    )
