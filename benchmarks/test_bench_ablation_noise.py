"""Ablation — robustness to system noise ("a noisy system", §1).

Regenerates the dataset at increasing noise multipliers and measures the
normal-fold F.  Expected: graceful degradation — rounding absorbs small
perturbations (the Shazam-style pruning), large ones break fingerprint
repetition.
"""

from repro._util.tables import TextTable
from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.experiments.protocol import make_efd_factory, run_experiment


def test_bench_ablation_noise(benchmark, save_report):
    multipliers = (0.5, 1.0, 2.0, 4.0, 8.0)

    def sweep():
        scores = {}
        for mult in multipliers:
            config = DatasetConfig(
                metrics=("nr_mapped_vmstat",),
                repetitions=6,
                seed=2021,
                noise_scale=mult,
                duration_cap=200.0,
            )
            dataset = TaxonomistDatasetGenerator(config).generate()
            result = run_experiment(
                "normal_fold", dataset, make_efd_factory(), k=3
            )
            scores[mult] = result.fscore
        return scores

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Pruning absorbs mild noise: 0.5x to 2x barely move the F-score.
    assert scores[1.0] > 0.9
    assert scores[2.0] > scores[8.0]
    # Monotone-ish degradation overall (allow small non-monotonicity from
    # re-rolled noise streams).
    assert scores[0.5] >= scores[8.0]

    table = TextTable(
        ["Noise multiplier", "Normal-Fold F"],
        title="Ablation: recognition vs injected system noise",
    )
    for mult in multipliers:
        table.add_row([f"{mult:g}x", f"{scores[mult]:.3f}"])
    save_report("ablation_noise", table.render())
