"""Columnar codec at production scale: a ~million-key dictionary.

The acceptance bar for the columnar backend (ISSUE 3): against a
synthetic ~1M-key dictionary,

- the columnar directory must **load >= 5x faster** and be **>= 3x
  smaller on disk** than the JSON shard layout, and
- a cold :class:`~repro.engine.batch.BatchRecognizer` over the columnar
  index (index construction included) must be **>= 2x** the cached-dict
  index at a 1k-execution batch — with element-wise identical results.

Every number lands in ``BENCH_engine.json`` via the shared trajectory
writer.  ``BENCH_COLUMNAR_KEYS`` scales the store down for smoke runs
(``make bench-smoke``); the hard thresholds only assert at full scale,
so a tiny run still catches codec regressions without the cost.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.rounding import round_depth_array
from repro.data.dataset import ExecutionRecord
from repro.engine import (
    BatchRecognizer,
    ShardedDictionary,
    load_columnar,
    load_sharded,
    save_columnar,
    save_sharded,
)
from repro.telemetry.timeseries import TimeSeries

METRIC = "synthetic_rate"
DEPTH = 3
INTERVAL = (60.0, 120.0)
N_NODES = 4
N_SHARDS = 8
N_KEYS = int(os.environ.get("BENCH_COLUMNAR_KEYS", "1000000"))
FULL_SCALE = N_KEYS >= 1_000_000
BATCH_SIZES = (1_000, 10_000)

_APPS = [f"app{i:02d}" for i in range(40)]
_INPUTS = ("X", "Y", "Z")
_LABELS = [f"{app}_{size}" for app in _APPS for size in _INPUTS]


def _node_values(per_node: int) -> np.ndarray:
    """``per_node`` distinct raw values whose depth-3 roundings are
    pairwise distinct: mantissas 100..999 across exponents -140..139."""
    mantissas = np.arange(100, 1000, dtype=np.float64)
    exponents = np.arange(-140, 140, dtype=np.float64)
    if len(mantissas) * len(exponents) < per_node:
        raise ValueError(f"value grid too small for {per_node} keys/node")
    grid = (mantissas[None, :] * 10.0 ** exponents[:, None]).ravel()
    return grid[:per_node]


def _build_store():
    """A sharded dictionary of N_KEYS distinct keys over N_NODES nodes,
    plus the per-node raw values that probe it with guaranteed hits."""
    per_node = (N_KEYS + N_NODES - 1) // N_NODES
    raw_by_node = [_node_values(per_node) for _ in range(N_NODES)]
    sharded = ShardedDictionary(N_SHARDS)
    inserted = 0
    for node in range(N_NODES):
        rounded = round_depth_array(raw_by_node[node], DEPTH)
        for i, value in enumerate(rounded.tolist()):
            if inserted >= N_KEYS:
                break
            sharded.add(
                Fingerprint(
                    metric=METRIC, node=node, interval=INTERVAL, value=value
                ),
                _LABELS[(node * per_node + i) % len(_LABELS)],
            )
            inserted += 1
    return sharded, raw_by_node


def _make_records(n: int, raw_by_node) -> list:
    """``n`` four-node records with constant telemetry, each node's level
    drawn from that node's key grid — every probe hits, and striding
    keeps per-record patterns distinct (no verdict-memo shortcuts)."""
    per_node = len(raw_by_node[0])
    n_samples = int(INTERVAL[1]) + 7
    records = []
    for i in range(n):
        telemetry = {}
        for node in range(N_NODES):
            raw = raw_by_node[node][(i * 7 + node * 13) % per_node]
            telemetry[(METRIC, node)] = TimeSeries(
                np.full(n_samples, raw), period=1.0, t0=0.0
            )
        records.append(
            ExecutionRecord(
                record_id=i,
                app_name=_APPS[i % len(_APPS)],
                input_size=_INPUTS[i % len(_INPUTS)],
                n_nodes=N_NODES,
                duration=float(n_samples),
                telemetry=telemetry,
            )
        )
    return records


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _dir_bytes(directory: str) -> int:
    return sum(
        os.path.getsize(os.path.join(directory, name))
        for name in os.listdir(directory)
    )


def test_columnar_scale(tmp_path, save_report, bench_record):
    sharded, raw_by_node = _build_store()
    n_keys = len(sharded)

    json_dir = str(tmp_path / "efd-json")
    col_dir = str(tmp_path / "efd-columnar")
    t_json_save, _ = _timed(lambda: save_sharded(sharded, json_dir))
    t_col_save, _ = _timed(lambda: save_columnar(sharded, col_dir))
    json_bytes = _dir_bytes(json_dir)
    col_bytes = _dir_bytes(col_dir)
    size_ratio = json_bytes / col_bytes
    del sharded  # measure loads without the builder's objects around

    # Load: JSON gets the cheaper setting (no key-routing validation);
    # columnar is timed all the way to query-ready (columns read and the
    # batch index built), so the comparison cannot flatter lazy loading.
    t_json_load, json_store = _timed(
        lambda: load_sharded(json_dir, validate=False)
    )
    def _columnar_ready():
        store = load_columnar(col_dir)
        assert store.batch_index(METRIC, INTERVAL) is not None
        return store
    t_col_load, col_store = _timed(_columnar_ready)
    load_ratio = t_json_load / t_col_load

    rows = []
    throughput = {}
    for batch_size in BATCH_SIZES:
        records = _make_records(batch_size, raw_by_node)
        timings = {}
        results = {}
        for name, store in (("dict", json_store), ("columnar", col_store)):
            engine = BatchRecognizer(
                store, metric=METRIC, depth=DEPTH, interval=INTERVAL
            )
            t_cold, out = _timed(lambda: engine.recognize_records(records))
            t_warm, out2 = _timed(lambda: engine.recognize_records(records))
            assert out == out2
            timings[name] = (t_cold, t_warm)
            results[name] = out
        assert results["dict"] == results["columnar"], (
            f"columnar verdicts diverge at batch={batch_size}"
        )
        assert all(not r.is_unknown for r in results["columnar"][:50])
        throughput[batch_size] = {
            "dict_cold_s": timings["dict"][0],
            "dict_warm_s": timings["dict"][1],
            "columnar_cold_s": timings["columnar"][0],
            "columnar_warm_s": timings["columnar"][1],
            "columnar_cold_exec_per_s": batch_size / timings["columnar"][0],
            "cold_speedup": timings["dict"][0] / timings["columnar"][0],
        }
        rows.append(
            f"batch {batch_size:>6d}  "
            f"dict {timings['dict'][0]:8.3f}s/{timings['dict'][1]:8.3f}s  "
            f"columnar {timings['columnar'][0]:8.3f}s/"
            f"{timings['columnar'][1]:8.3f}s  "
            f"cold speedup {throughput[batch_size]['cold_speedup']:5.1f}x"
        )

    report = "\n".join(
        [
            f"Columnar scale: {n_keys} keys, {N_SHARDS} shards "
            f"({'full scale' if FULL_SCALE else 'smoke'})",
            "",
            f"on-disk    : JSON {json_bytes / 1e6:8.1f} MB   "
            f"columnar {col_bytes / 1e6:8.1f} MB   ({size_ratio:.1f}x smaller)",
            f"save       : JSON {t_json_save:8.2f} s    "
            f"columnar {t_col_save:8.2f} s",
            f"load       : JSON {t_json_load:8.2f} s    "
            f"columnar {t_col_load:8.2f} s    ({load_ratio:.1f}x faster, "
            f"columnar timed to query-ready)",
            "",
            "batch recognition (cold incl. index build / warm):",
            *rows,
            "",
            f"requirements (full scale): size >= 3x, load >= 5x, "
            f"1k-batch cold >= 2x",
        ]
    )
    save_report("columnar_scale", report)

    bench_record.n = n_keys
    bench_record.throughput = throughput[1000]["columnar_cold_exec_per_s"]
    bench_record.extra.update(
        {
            "json_bytes": json_bytes,
            "columnar_bytes": col_bytes,
            "size_ratio": round(size_ratio, 2),
            "json_load_s": round(t_json_load, 4),
            "columnar_load_s": round(t_col_load, 4),
            "load_ratio": round(load_ratio, 2),
            "batches": {
                str(k): {kk: round(vv, 4) for kk, vv in v.items()}
                for k, v in throughput.items()
            },
            "full_scale": FULL_SCALE,
        }
    )

    if FULL_SCALE:
        assert size_ratio >= 3.0, f"columnar only {size_ratio:.1f}x smaller"
        assert load_ratio >= 5.0, f"columnar only {load_ratio:.1f}x faster"
        assert throughput[1000]["cold_speedup"] >= 2.0, (
            f"columnar cold 1k-batch only "
            f"{throughput[1000]['cold_speedup']:.1f}x the dict index"
        )
