"""Ablation — data budget: what does each system need to see?

The paper's efficiency claim is about *inputs*, not accuracy: Taxonomist
consumes hundreds of metrics over the whole execution, the EFD one
metric for two minutes.  This bench holds accuracy fixed and varies the
budget: the ML baseline on the full window, the ML baseline restricted
to the EFD's [60:120] window, and the EFD itself — plus the raw number
of samples each consumed per execution.
"""

from repro._util.tables import TextTable
from repro.baselines.taxonomist import TaxonomistClassifier
from repro.data.splits import UNKNOWN_LABEL
from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.experiments.protocol import evaluate_splits, make_efd_factory, splits_for

METRICS = (
    "nr_mapped_vmstat",
    "Committed_AS_meminfo",
    "AMO_PKTS_metric_set_nic",
)


def _taxonomist_factory(window):
    def factory():
        return TaxonomistClassifier(
            window=window, n_estimators=30, unknown_label=UNKNOWN_LABEL,
            random_state=0,
        )
    return factory


def test_bench_ablation_databudget(benchmark, save_report):
    config = DatasetConfig(metrics=METRICS, repetitions=6, seed=2021)
    dataset = TaxonomistDatasetGenerator(config).generate()
    splits = splits_for("normal_fold", dataset, k=3)
    mean_duration = sum(r.duration for r in dataset) / len(dataset)

    def sweep():
        return {
            "Taxonomist, full window": (
                evaluate_splits(dataset, splits,
                                _taxonomist_factory((0.0, None))).fscore,
                len(METRICS) * 4 * mean_duration,
            ),
            "Taxonomist, [60:120]": (
                evaluate_splits(dataset, splits,
                                _taxonomist_factory((60.0, 120.0))).fscore,
                len(METRICS) * 4 * 60,
            ),
            "EFD, 1 metric, [60:120]": (
                evaluate_splits(dataset, splits, make_efd_factory()).fscore,
                1 * 4 * 60,
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    efd_f, efd_samples = results["EFD, 1 metric, [60:120]"]
    full_f, full_samples = results["Taxonomist, full window"]
    # The headline: comparable F with a fraction of the data.
    assert efd_f > full_f - 0.05
    assert efd_samples < full_samples / 10

    table = TextTable(
        ["System", "Normal-Fold F", "Samples/execution"],
        title="Ablation: recognition accuracy vs monitoring data budget",
    )
    for name, (f, samples) in results.items():
        table.add_row([name, f"{f:.3f}", f"{samples:,.0f}"])
    save_report("ablation_databudget", table.render())
