"""Delta-log write throughput: appends under a hot vectorized index.

The mutation fast path's acceptance bar (ISSUE 5): a columnar store
under a sustained write trickle — appends interleaved with 1k-batch
recognitions — keeps the rank-packed ``searchsorted`` index active
(zero ``index_demotions``), with verdicts element-wise identical to the
pre-write baseline for the untouched keys.  This bench measures

- **appends/s** through the write-ahead delta-log while the index
  stays hot (recognition batches run between append bursts),
- **recognition drag**: the per-batch wall time while the overlay is
  non-empty vs. the pristine baseline, and
- **compaction wall time**: folding the accumulated log back into the
  ``shard-NN.npz`` base.

``BENCH_MUTATION_KEYS`` / ``BENCH_MUTATION_APPENDS`` scale the store
down for smoke runs (``make mutation-smoke``); the throughput floor
only asserts at full scale.  Every number lands in ``BENCH_engine.json``
via the shared trajectory writer.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.rounding import round_depth_array
from repro.data.dataset import ExecutionRecord
from repro.engine import (
    BatchRecognizer,
    ShardedDictionary,
    load_columnar,
    save_columnar,
)
from repro.telemetry.timeseries import TimeSeries

METRIC = "synthetic_rate"
DEPTH = 3
INTERVAL = (60.0, 120.0)
N_NODES = 4
N_SHARDS = 8
N_KEYS = int(os.environ.get("BENCH_MUTATION_KEYS", "1000000"))
N_APPENDS = int(os.environ.get("BENCH_MUTATION_APPENDS", "2000"))
FULL_SCALE = N_KEYS >= 1_000_000
BATCH_SIZE = 1_000
APPEND_BURST = 100          # appends between recognition batches
MIN_APPENDS_PER_S = 2_000   # asserted at full scale only

_APPS = [f"app{i:02d}" for i in range(40)]
_INPUTS = ("X", "Y", "Z")
_LABELS = [f"{app}_{size}" for app in _APPS for size in _INPUTS]


def _node_values(per_node: int) -> np.ndarray:
    mantissas = np.arange(100, 1000, dtype=np.float64)
    exponents = np.arange(-140, 140, dtype=np.float64)
    if len(mantissas) * len(exponents) < per_node:
        raise ValueError(f"value grid too small for {per_node} keys/node")
    grid = (mantissas[None, :] * 10.0 ** exponents[:, None]).ravel()
    return grid[:per_node]


def _build_store():
    per_node = (N_KEYS + N_NODES - 1) // N_NODES
    raw_by_node = [_node_values(per_node) for _ in range(N_NODES)]
    sharded = ShardedDictionary(N_SHARDS)
    inserted = 0
    for node in range(N_NODES):
        rounded = round_depth_array(raw_by_node[node], DEPTH)
        for i, value in enumerate(rounded.tolist()):
            if inserted >= N_KEYS:
                break
            sharded.add(
                Fingerprint(
                    metric=METRIC, node=node, interval=INTERVAL, value=value
                ),
                _LABELS[(node * per_node + i) % len(_LABELS)],
            )
            inserted += 1
    return sharded, raw_by_node


def _make_records(n: int, raw_by_node) -> list:
    per_node = len(raw_by_node[0])
    n_samples = int(INTERVAL[1]) + 7
    records = []
    for i in range(n):
        telemetry = {}
        for node in range(N_NODES):
            raw = raw_by_node[node][(i * 7 + node * 13) % per_node]
            telemetry[(METRIC, node)] = TimeSeries(
                np.full(n_samples, raw), period=1.0, t0=0.0
            )
        records.append(
            ExecutionRecord(
                record_id=i,
                app_name=_APPS[i % len(_APPS)],
                input_size=_INPUTS[i % len(_INPUTS)],
                n_nodes=N_NODES,
                duration=float(n_samples),
                telemetry=telemetry,
            )
        )
    return records


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


@pytest.mark.bench
def test_mutation_throughput(tmp_path, save_report, bench_record):
    sharded, raw_by_node = _build_store()
    n_keys = len(sharded)
    col_dir = str(tmp_path / "efd-columnar")
    save_columnar(sharded, col_dir)
    del sharded

    store = load_columnar(col_dir)
    engine = BatchRecognizer(store, metric=METRIC, depth=DEPTH,
                             interval=INTERVAL)
    records = _make_records(BATCH_SIZE, raw_by_node)
    t_base_cold, baseline = _timed(lambda: engine.recognize_records(records))
    t_base_warm, again = _timed(lambda: engine.recognize_records(records))
    assert again == baseline

    # The trickle: bursts of appends (brand-new keys — a mantissa grid
    # at exponents beyond the store's range, so every rounded value is
    # distinct and misses the base) interleaved with recognition batches.
    mantissas = np.arange(100, 1000, dtype=np.float64)
    exponents = np.arange(141, 141 + N_APPENDS // len(mantissas) + 1,
                          dtype=np.float64)
    grid = (mantissas[None, :] * 10.0 ** exponents[:, None]).ravel()
    new_key_values = round_depth_array(grid[:N_APPENDS], DEPTH).tolist()
    append_wall = 0.0
    batch_walls = []
    done = 0
    while done < N_APPENDS:
        burst = min(APPEND_BURST, N_APPENDS - done)
        t0 = time.perf_counter()
        for i in range(done, done + burst):
            store.add(
                Fingerprint(metric=METRIC, node=i % N_NODES,
                            interval=INTERVAL, value=new_key_values[i]),
                _LABELS[i % len(_LABELS)],
            )
        append_wall += time.perf_counter() - t0
        done += burst
        t_batch, out = _timed(lambda: engine.recognize_records(records))
        batch_walls.append(t_batch)
        assert out == baseline  # untouched keys: verdicts unchanged
    appends_per_s = N_APPENDS / append_wall if append_wall else float("inf")

    # The whole trickle ran on the vectorized path.
    assert engine.stats.index_demotions == 0
    assert store.pristine
    assert store.delta_pending == N_APPENDS
    # The appended keys are immediately visible to the batch paths.
    probe = Fingerprint(metric=METRIC, node=0, interval=INTERVAL,
                        value=new_key_values[0])
    assert store.lookup_many([probe]) == [[_LABELS[0]]]

    t_compact, folded = _timed(store.compact_delta)
    assert folded == N_APPENDS
    assert len(store) == n_keys + N_APPENDS
    t_post_compact, out = _timed(lambda: engine.recognize_records(records))
    assert out == baseline

    if FULL_SCALE:
        assert appends_per_s >= MIN_APPENDS_PER_S, (
            f"delta-log appends {appends_per_s:.0f}/s under "
            f"{MIN_APPENDS_PER_S}/s at full scale"
        )

    mean_batch = sum(batch_walls) / len(batch_walls)
    report = "\n".join([
        f"Delta-log mutation: {n_keys} keys, {N_SHARDS} shards, "
        f"{N_APPENDS} appends "
        f"({'full scale' if FULL_SCALE else 'smoke'})",
        "",
        f"appends    : {appends_per_s:10.0f}/s through the write-ahead log "
        f"(index hot, 0 demotions)",
        f"recognize  : baseline {t_base_warm * 1e3:8.1f} ms/batch   "
        f"under trickle {mean_batch * 1e3:8.1f} ms/batch "
        f"(batch={BATCH_SIZE})",
        f"compaction : {t_compact:8.2f} s to fold {folded} records into "
        f"the npz base",
        f"post-fold  : {t_post_compact * 1e3:8.1f} ms/batch "
        f"(cold index rebuild included)",
    ])
    save_report("bench_mutation", report)

    bench_record.n = N_APPENDS
    bench_record.seconds = round(append_wall, 6)
    bench_record.throughput = round(appends_per_s, 1)
    bench_record.extra = {
        "n_keys": n_keys,
        "appends_per_s": round(appends_per_s, 1),
        "batch_ms_baseline": round(t_base_warm * 1e3, 3),
        "batch_ms_under_trickle": round(mean_batch * 1e3, 3),
        "compact_s": round(t_compact, 6),
        "full_scale": FULL_SCALE,
    }
