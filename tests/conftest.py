"""Shared fixtures.

Session-scoped datasets keep the suite fast: generation is deterministic,
so sharing records across tests cannot leak state (records are treated as
immutable by the library).
"""

from __future__ import annotations

import pytest

from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator


@pytest.fixture(scope="session")
def small_dataset():
    """All 11 applications, 3 repetitions, single paper metric."""
    config = DatasetConfig(
        metrics=("nr_mapped_vmstat",),
        repetitions=3,
        seed=99,
        duration_cap=160.0,
    )
    return TaxonomistDatasetGenerator(config).generate()


@pytest.fixture(scope="session")
def tiny_dataset():
    """Four well-separated applications, 3 reps — fast focused checks."""
    config = DatasetConfig(
        metrics=("nr_mapped_vmstat",),
        repetitions=3,
        seed=7,
        duration_cap=150.0,
        apps=("ft", "mg", "lu", "CoMD"),
    )
    return TaxonomistDatasetGenerator(config).generate()


@pytest.fixture(scope="session")
def multimetric_dataset():
    """Three metrics x five applications for multi-metric / baseline tests."""
    config = DatasetConfig(
        metrics=(
            "nr_mapped_vmstat",
            "Committed_AS_meminfo",
            "AMO_PKTS_metric_set_nic",
        ),
        repetitions=3,
        seed=13,
        duration_cap=150.0,
        apps=("ft", "mg", "sp", "bt", "miniAMR"),
    )
    return TaxonomistDatasetGenerator(config).generate()
