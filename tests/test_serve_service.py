"""IngestService tests: equivalence, backpressure, eviction, failure.

The headline property: for any backpressure configuration under which
no sample is shed and no session evicted, the async service's verdicts
are element-wise identical to calling
``BatchRecognizer.recognize_sessions`` synchronously on sessions fed the
same samples.  The edge-case suites then cover exactly the behaviors
that *break* that equivalence on purpose: full-queue blocking vs.
shedding, timeout eviction (force and drop), and a recognition-worker
crash that must surface as a ``WorkerError`` naming the failing session.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.recognizer import EFDRecognizer
from repro.core.streaming import StreamingRecognizer
from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.engine import BatchRecognizer, ShardedDictionary
from repro.parallel.pool import WorkerError
from repro.serve import (
    IngestService,
    Sample,
    ServeConfig,
    SessionEvicted,
    interleave_records,
)

METRIC = "nr_mapped_vmstat"
DEPTH = 2


@pytest.fixture(scope="module")
def dataset():
    config = DatasetConfig(
        metrics=(METRIC,), repetitions=2, seed=13, duration_cap=150.0,
        apps=("ft", "mg", "lu", "CoMD"),
    )
    return TaxonomistDatasetGenerator(config).generate()


@pytest.fixture(scope="module")
def recognizer(dataset):
    return EFDRecognizer(metric=METRIC, depth=DEPTH).fit(dataset)


def _engine(recognizer, n_shards: int = 1) -> BatchRecognizer:
    dictionary = recognizer.dictionary_
    if n_shards > 1:
        dictionary = ShardedDictionary.from_flat(dictionary, n_shards)
    return BatchRecognizer(dictionary, metric=METRIC, depth=DEPTH)


def _reference_verdicts(recognizer, records, job_ids):
    """The synchronous path: same samples, one recognize_sessions call."""
    streaming = StreamingRecognizer.from_recognizer(recognizer)
    sessions = []
    for record, job in zip(records, job_ids):
        session = streaming.open_session(
            n_nodes=record.n_nodes, session_id=job
        )
        for node in range(record.n_nodes):
            series = record.series(METRIC, node)
            session.ingest_many(node, series.times, series.values)
        sessions.append(session)
    engine = BatchRecognizer(recognizer.dictionary_, metric=METRIC, depth=DEPTH)
    return dict(zip(job_ids, engine.recognize_sessions(sessions, force=True)))


async def _serve(engine, config, samples, chunked: bool = False):
    """Run one stream through a fresh service; returns the service."""
    service = IngestService(engine, config)
    async with service:
        if chunked:
            await service.submit_many(samples)
        else:
            for sample in samples:
                await service.submit(sample)
        await service.drain()
    return service


# ---------------------------------------------------------------------------
# Equivalence property
# ---------------------------------------------------------------------------

EQUIVALENCE_CONFIGS = [
    # Tiny queue + tiny batches: constant blocking backpressure, many
    # micro-batches racing the producer.
    ServeConfig(max_pending_samples=8, backpressure="block",
                batch_max_sessions=3, batch_max_delay=0.002),
    # Shed policy with ample capacity: the lossy path, configured so it
    # never actually loses anything.
    ServeConfig(max_pending_samples=200_000, backpressure="shed",
                batch_max_sessions=64, batch_max_delay=0.02),
]


class TestEquivalence:
    @pytest.mark.parametrize("config", EQUIVALENCE_CONFIGS,
                             ids=["block-tiny-queue", "shed-ample-queue"])
    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_async_verdicts_equal_sync_batch(
        self, recognizer, dataset, config, n_shards
    ):
        records = list(dataset)[:12]
        job_ids = [f"job-{i:04d}" for i in range(len(records))]
        reference = _reference_verdicts(recognizer, records, job_ids)

        engine = _engine(recognizer, n_shards)
        samples = interleave_records(records, METRIC, job_ids)
        service = asyncio.run(
            _serve(engine, config, samples,
                   chunked=config.backpressure == "shed")
        )

        assert engine.stats.n_shed == 0
        assert engine.stats.n_evicted == 0
        results = service.results
        assert set(results) == set(job_ids)
        for job in job_ids:
            assert results[job] == reference[job], job

    def test_verdict_awaitable_and_callback(self, recognizer, dataset):
        records = list(dataset)[:3]
        job_ids = ["a", "b", "c"]
        reference = _reference_verdicts(recognizer, records, job_ids)
        seen = {}

        async def run():
            engine = _engine(recognizer)
            service = IngestService(
                engine,
                ServeConfig(batch_max_delay=0.002),
                on_verdict=lambda job, result: seen.setdefault(job, result),
            )
            async with service:
                for sample in interleave_records(records, METRIC, job_ids):
                    await service.submit(sample)
                await service._ingest_q.join()  # ensure "a" is routed
                # Await one verdict mid-flight, before drain.
                first = await asyncio.wait_for(service.verdict("a"), timeout=5)
                await service.drain()
                return first

        first = asyncio.run(run())
        assert first == reference["a"]
        assert seen == reference

    def test_stats_counters_move(self, recognizer, dataset):
        records = list(dataset)[:6]
        engine = _engine(recognizer)
        config = ServeConfig(batch_max_sessions=4, batch_max_delay=0.002)
        samples = interleave_records(records, METRIC)
        asyncio.run(_serve(engine, config, samples))
        stats = engine.stats
        assert stats.n_executions == 6
        assert stats.n_batches >= 2          # batch cap of 4 forces a split
        assert stats.max_batch <= 4
        assert stats.n_latencies == 6
        assert stats.total_latency >= 0
        assert stats.queue_peak >= 1
        assert stats.n_late > 0              # post-interval samples dropped
        assert stats.served
        rendered = stats.render()
        assert "ingest" in rendered and "latency" in rendered

    def test_unknown_job_raises_keyerror(self, recognizer):
        async def run():
            async with IngestService(_engine(recognizer)) as service:
                with pytest.raises(KeyError, match="unknown job"):
                    await service.verdict("nope")

        asyncio.run(run())


# ---------------------------------------------------------------------------
# Backpressure edge cases
# ---------------------------------------------------------------------------

def _sample(job: str, t: float, node: int = 0) -> Sample:
    return Sample(job=job, node=node, time=t, value=100.0, n_nodes=1)


class TestBackpressure:
    def test_submit_requires_started_service(self, recognizer):
        service = IngestService(_engine(recognizer))
        with pytest.raises(RuntimeError, match="not running"):
            asyncio.run(service.submit(_sample("j", 0.0)))

    def test_full_queue_blocks_producer(self, recognizer):
        async def run():
            config = ServeConfig(max_pending_samples=2, backpressure="block")
            async with IngestService(_engine(recognizer), config) as service:
                # Freeze ingestion so the queue genuinely fills.
                service._tasks[0].cancel()
                await asyncio.sleep(0)
                assert await service.submit(_sample("j", 0.0))
                assert await service.submit(_sample("j", 1.0))
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        service.submit(_sample("j", 2.0)), timeout=0.1
                    )
                assert service.stats.n_shed == 0

        asyncio.run(run())

    def test_full_queue_sheds_when_configured(self, recognizer):
        async def run():
            config = ServeConfig(max_pending_samples=2, backpressure="shed")
            async with IngestService(_engine(recognizer), config) as service:
                service._tasks[0].cancel()
                await asyncio.sleep(0)
                assert await service.submit(_sample("j", 0.0))
                assert await service.submit(_sample("j", 1.0))
                # Queue is full: every further sample is refused, fast.
                assert not await service.submit(_sample("j", 2.0))
                assert not await service.submit(_sample("j", 3.0))
                assert service.stats.n_shed == 2
                assert service.stats.queue_peak == 2

        asyncio.run(run())

    def test_submit_many_sheds_and_counts(self, recognizer):
        async def run():
            config = ServeConfig(max_pending_samples=3, backpressure="shed")
            async with IngestService(_engine(recognizer), config) as service:
                service._tasks[0].cancel()
                await asyncio.sleep(0)
                accepted = await service.submit_many(
                    [_sample("j", float(t)) for t in range(10)]
                )
                assert accepted == 3
                assert service.stats.n_shed == 7

        asyncio.run(run())

    def test_session_cap_sheds_new_jobs(self, recognizer):
        async def run():
            config = ServeConfig(
                max_sessions=2, backpressure="shed", batch_max_delay=0.002
            )
            async with IngestService(_engine(recognizer), config) as service:
                for job in ("a", "b", "c"):
                    await service.submit(_sample(job, 0.0))
                    # The cap is admission-side against *routed* sessions;
                    # flush routing so each submit sees the true count.
                    await service._ingest_q.join()
                assert service.n_sessions == 2
                assert service.stats.n_shed == 1

        asyncio.run(run())

    def test_cancelled_blocking_submit_rolls_back_admission(self, recognizer):
        """A wait_for timeout on a blocked submit must not leak the new
        job's session slot (its _pending_opens entry)."""
        async def run():
            config = ServeConfig(max_pending_samples=1, backpressure="block")
            async with IngestService(_engine(recognizer), config) as service:
                service._tasks[0].cancel()
                await asyncio.sleep(0)
                assert await service.submit(_sample("a", 0.0))  # fills queue
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        service.submit(_sample("b", 0.0)), timeout=0.05
                    )
                assert "b" not in service._pending_opens
                assert "a" in service._pending_opens  # still queued

        asyncio.run(run())

    def test_session_cap_block_self_heals_via_eviction(self, recognizer):
        """The cap blocks the *producer*, never the routing loop, so the
        reaper can still evict the stale session and unblock it."""
        async def run():
            config = ServeConfig(
                max_sessions=1, backpressure="block",
                session_timeout=0.05, evict="force", batch_max_delay=0.002,
            )
            async with IngestService(_engine(recognizer), config) as service:
                await service.submit(_sample("first", 5.0))
                await service._ingest_q.join()
                # "second" must wait for a slot; the eviction of the
                # stalled "first" frees it well inside the deadline.
                assert await asyncio.wait_for(
                    service.submit(_sample("second", 5.0)), timeout=5
                )
                await service._ingest_q.join()
                assert service.n_sessions == 2
                assert service.stats.n_evicted >= 1

        asyncio.run(run())

    def test_submit_many_shed_keeps_up_with_live_ingestion(
        self, recognizer, dataset
    ):
        """A tiny queue under the shed policy must not mass-drop a
        stream the ingest loop can actually drain: submit_many yields
        and retries before shedding."""
        record = list(dataset)[0]

        async def run():
            config = ServeConfig(
                max_pending_samples=8, backpressure="shed",
                batch_max_delay=0.002,
            )
            async with IngestService(_engine(recognizer), config) as service:
                samples = list(interleave_records([record], METRIC, ["j"]))
                accepted = await service.submit_many(samples)
                await service.drain()
                assert accepted == len(samples)
                assert service.stats.n_shed == 0
                assert "j" in service.results

        asyncio.run(run())


# ---------------------------------------------------------------------------
# Eviction
# ---------------------------------------------------------------------------

class TestEviction:
    def test_timeout_eviction_drop_policy(self, recognizer):
        async def run():
            config = ServeConfig(
                session_timeout=0.05, evict="drop", batch_max_delay=0.002
            )
            async with IngestService(_engine(recognizer), config) as service:
                # One sample far short of the interval end: never ready.
                await service.submit(_sample("stalled", 5.0))
                await service._ingest_q.join()
                with pytest.raises(SessionEvicted, match="stalled"):
                    await asyncio.wait_for(service.verdict("stalled"), timeout=5)
                assert service.stats.n_evicted == 1
                assert service.results == {}

        asyncio.run(run())

    def test_timeout_eviction_force_policy(self, recognizer, dataset):
        record = list(dataset)[0]

        async def run():
            config = ServeConfig(
                session_timeout=0.05, evict="force", batch_max_delay=0.002
            )
            async with IngestService(_engine(recognizer), config) as service:
                # Feed the full fingerprint interval but stop at t=130,
                # before the trailing nodes' clocks would... (they did
                # pass 120; cut at 100 instead so ready never fires).
                samples = [
                    s for s in interleave_records([record], METRIC, ["early"])
                    if s.time < 100.0
                ]
                await service.submit_many(samples)
                await service._ingest_q.join()
                result = await asyncio.wait_for(
                    service.verdict("early"), timeout=5
                )
                assert service.stats.n_evicted == 1
                return result

        result = asyncio.run(run())

        # Reference: identical partial feed, decided early by force.
        streaming = StreamingRecognizer.from_recognizer(recognizer)
        session = streaming.open_session(n_nodes=record.n_nodes)
        for node in range(record.n_nodes):
            series = record.series(METRIC, node)
            mask = series.times < 100.0
            session.ingest_many(node, series.times[mask], series.values[mask])
        assert not session.ready
        assert result == session.verdict(force=True)

    def test_no_timeout_means_no_reaper(self, recognizer):
        async def run():
            config = ServeConfig(session_timeout=None)
            async with IngestService(_engine(recognizer), config) as service:
                assert len(service._tasks) == 2  # ingest + batch only

        asyncio.run(run())

    def test_close_forces_verdicts_for_unready_sessions(self, recognizer):
        async def run():
            async with IngestService(_engine(recognizer)) as service:
                await service.submit(_sample("partial", 65.0))
                await service._ingest_q.join()
            # Context exit closes with force=True: the unready session
            # is decided from its single in-interval sample.
            return service

        service = asyncio.run(run())
        assert "partial" in service.results


# ---------------------------------------------------------------------------
# Worker failure isolation
# ---------------------------------------------------------------------------

class TestWorkerFailure:
    def test_worker_error_carries_failing_session_id(self, recognizer, dataset):
        records = list(dataset)[:3]
        job_ids = ["ok-0", "poison", "ok-1"]
        reference = _reference_verdicts(
            recognizer, [records[0], records[2]], ["ok-0", "ok-1"]
        )

        async def run():
            engine = _engine(recognizer)
            # A long coalescing window so all three sessions land in ONE
            # micro-batch; the crash must then be isolated per session.
            config = ServeConfig(batch_max_sessions=8, batch_max_delay=0.25)
            async with IngestService(engine, config) as service:
                stream = interleave_records(records, METRIC, job_ids)
                first = [next(stream) for _ in range(3)]
                await service.submit_many(first)
                await service._ingest_q.join()

                def boom():
                    raise RuntimeError("telemetry store exploded")

                service._sessions["poison"].session.fingerprints = boom
                await service.submit_many(stream)
                await service.drain()
                with pytest.raises(WorkerError) as excinfo:
                    await service.verdict("poison")
                return service, excinfo.value

        service, error = asyncio.run(run())
        assert error.session_id == "poison"
        assert "poison" in str(error)
        assert "telemetry store exploded" in str(error)
        assert isinstance(error.original, RuntimeError)
        # Healthy batch-mates still resolved, correctly.
        results = service.results
        assert results["ok-0"] == reference["ok-0"]
        assert results["ok-1"] == reference["ok-1"]

    def test_bad_node_rank_fails_only_that_session(self, recognizer):
        async def run():
            config = ServeConfig(batch_max_delay=0.002)
            async with IngestService(_engine(recognizer), config) as service:
                # nodes=1 but a sample for node 3: routing error.
                await service.submit(
                    Sample(job="bad", node=3, time=1.0, value=1.0, n_nodes=1)
                )
                await service._ingest_q.join()
                with pytest.raises(ValueError, match="node 3"):
                    await asyncio.wait_for(service.verdict("bad"), timeout=5)

        asyncio.run(run())


# ---------------------------------------------------------------------------
# Housekeeping
# ---------------------------------------------------------------------------

class TestHousekeeping:
    def test_forget_reclaims_completed_sessions(self, recognizer, dataset):
        record = list(dataset)[0]

        async def run():
            config = ServeConfig(batch_max_delay=0.002)
            async with IngestService(_engine(recognizer), config) as service:
                await service.submit_many(
                    interleave_records([record], METRIC, ["done"])
                )
                await service.drain()
                assert service.n_sessions == 1
                service.forget("done")
                assert service.n_sessions == 0
                service.forget("unknown-is-a-no-op")

        asyncio.run(run())

    def test_forget_refuses_active_sessions(self, recognizer):
        async def run():
            async with IngestService(_engine(recognizer)) as service:
                await service.submit(_sample("live", 1.0))
                await service._ingest_q.join()
                with pytest.raises(RuntimeError, match="active"):
                    service.forget("live")

        asyncio.run(run())

    def test_crashing_callback_does_not_hang_the_batch(
        self, recognizer, dataset
    ):
        records = list(dataset)[:3]
        job_ids = ["x", "y", "z"]

        def explode(job, result):
            raise RuntimeError("callback bug")

        async def run():
            config = ServeConfig(batch_max_sessions=8, batch_max_delay=0.1)
            service = IngestService(
                _engine(recognizer), config, on_verdict=explode
            )
            async with service:
                await service.submit_many(
                    interleave_records(records, METRIC, job_ids)
                )
                # Must terminate: the callback crash is contained.
                await asyncio.wait_for(service.drain(), timeout=10)
                assert set(service.results) == set(job_ids)
                assert service.n_callback_errors == 3

        asyncio.run(run())

    def test_double_start_rejected(self, recognizer):
        async def run():
            async with IngestService(_engine(recognizer)) as service:
                with pytest.raises(RuntimeError, match="already started"):
                    await service.start()

        asyncio.run(run())

    def test_forget_never_concluded_job_clears_session_gauges(
        self, recognizer
    ):
        """Regression: a job whose session never concluded (stream cut,
        close(force=False) cancelled its verdict) must still be
        forgettable, and forgetting it must zero the EngineStats session
        gauges — not leave a phantom active session counted forever."""
        engine = _engine(recognizer)

        async def run():
            service = IngestService(engine, ServeConfig())
            await service.start()
            await service.submit(_sample("ghost", 5.0))
            await service._ingest_q.join()
            assert engine.stats.sessions_active == 1
            # Not force=True: the session is abandoned, not decided.
            await service.close(force=False)
            return service

        service = asyncio.run(run())
        assert engine.stats.sessions_active == 0
        assert engine.stats.sessions_retained == 1
        service.forget("ghost")  # must not raise "still active"
        assert service.n_sessions == 0
        assert engine.stats.sessions_retained == 0
        assert engine.stats.sessions_active == 0

    def test_session_gauges_track_lifecycle(self, recognizer, dataset):
        records = list(dataset)[:3]
        engine = _engine(recognizer)

        async def run():
            config = ServeConfig(batch_max_delay=0.002)
            async with IngestService(engine, config) as service:
                await service.submit_many(
                    interleave_records(records, METRIC, ["a", "b", "c"])
                )
                await service.drain()
                return service

        service = asyncio.run(run())
        stats = engine.stats
        assert stats.sessions_active == 0
        assert stats.sessions_retained == 3
        service.forget("b")
        assert stats.sessions_retained == 2
        assert stats.n_pruned == 0  # manual forget is not a prune
        snapshot = type(stats).from_dict(stats.as_dict())
        assert snapshot.sessions_retained == 2
        # Without retention configured nothing drains the retention
        # queue, so nothing may be enqueued either (the manual-forget
        # deployment pattern must not leak an entry per session).
        assert len(service._done_order) == 0

    def test_late_samples_dropped_and_counted(self, recognizer, dataset):
        record = list(dataset)[0]

        async def run():
            config = ServeConfig(batch_max_delay=0.002)
            async with IngestService(_engine(recognizer), config) as service:
                await service.submit_many(
                    interleave_records([record], METRIC, ["j"])
                )
                await service.drain()
                before = await service.verdict("j")
                late_before = service.stats.n_late
                await service.submit(
                    Sample(job="j", node=0, time=149.0, value=9.9e9)
                )
                await service._ingest_q.join()
                assert service.stats.n_late == late_before + 1
                assert await service.verdict("j") == before

        asyncio.run(run())


class TestRetention:
    def test_size_cap_prunes_oldest_completed_sessions(
        self, recognizer, dataset
    ):
        records = list(dataset)[:5]
        job_ids = [f"job-{i}" for i in range(len(records))]
        engine = _engine(recognizer)

        async def run():
            config = ServeConfig(batch_max_delay=0.002, retention_max_done=2)
            async with IngestService(engine, config) as service:
                await service.submit_many(
                    interleave_records(records, METRIC, job_ids)
                )
                await service.drain()
                return service

        service = asyncio.run(run())
        stats = engine.stats
        assert service.n_sessions == 2
        assert stats.n_pruned == 3
        assert stats.sessions_retained == 2
        # The *newest* verdicts are the retained ones.
        assert len(service.results) == 2

    def test_age_based_prune_reclaims_verdicts(self, recognizer, dataset):
        record = list(dataset)[0]
        engine = _engine(recognizer)

        async def run():
            config = ServeConfig(
                batch_max_delay=0.002,
                retention_max_age=0.05, retention_interval=0.02,
            )
            async with IngestService(engine, config) as service:
                await service.submit_many(
                    interleave_records([record], METRIC, ["aging"])
                )
                await service.drain()
                assert "aging" in service.results
                deadline = asyncio.get_running_loop().time() + 5.0
                while service.n_sessions:
                    assert asyncio.get_running_loop().time() < deadline, \
                        "retention loop never pruned the aged session"
                    await asyncio.sleep(0.02)
                with pytest.raises(KeyError):
                    await service.verdict("aging")
                return service

        asyncio.run(run())
        assert engine.stats.n_pruned == 1
        assert engine.stats.sessions_retained == 0

    def test_reused_job_id_is_not_pruned_by_stale_entry(
        self, recognizer, dataset
    ):
        """After forgetting a job id, a *new* session under the same id
        must not be reaped by the old id's leftover retention entry."""
        record = list(dataset)[0]
        engine = _engine(recognizer)

        async def run():
            config = ServeConfig(batch_max_delay=0.002, retention_max_done=1)
            async with IngestService(engine, config) as service:
                await service.submit_many(
                    interleave_records([record], METRIC, ["recycled"])
                )
                await service.drain()
                first = await service.verdict("recycled")
                service.forget("recycled")
                await service.submit_many(
                    interleave_records([record], METRIC, ["recycled"])
                )
                await service.drain()
                assert await service.verdict("recycled") == first
                return service

        service = asyncio.run(run())
        assert service.n_sessions == 1


class TestServeConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_pending_samples": 0},
        {"backpressure": "panic"},
        {"max_sessions": 0},
        {"batch_max_sessions": 0},
        {"batch_max_delay": -1.0},
        {"max_inflight_batches": 0},
        {"session_timeout": 0.0},
        {"evict": "maybe"},
        {"default_nodes": 0},
        {"retention_max_age": 0.0},
        {"retention_max_done": -1},
        {"retention_interval": 0.0},
        {"net_batch_samples": 0},
        {"net_batch_delay": -0.1},
        {"max_line_bytes": 16},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)


class TestLearnWhileServing:
    """The paper's learn-while-recognizing loop at serving time.

    ``IngestService.learn`` folds a resolved session's fingerprints into
    the engine's dictionary through the ``DictionaryBackend`` write
    surface; on a columnar store the observations ride the write-ahead
    delta-log (vectorized index stays hot) and ``compact_on_close``
    folds them into the base at shutdown.
    """

    def _columnar_engine(self, recognizer, tmp_path, **load_kwargs):
        from repro.engine import load_columnar, save_columnar

        directory = str(tmp_path / "efd-col")
        save_columnar(
            ShardedDictionary.from_flat(recognizer.dictionary_, 4), directory
        )
        store = load_columnar(directory, **load_kwargs)
        return BatchRecognizer(store, metric=METRIC, depth=DEPTH), directory

    def test_learn_lands_in_delta_log_and_folds_on_close(
        self, recognizer, dataset, tmp_path
    ):
        from repro.engine import load_columnar, pending_records

        engine, directory = self._columnar_engine(recognizer, tmp_path)
        records = list(dataset)[:3]
        job_ids = [f"job-{i}" for i in range(len(records))]
        samples = interleave_records(records, METRIC, job_ids)

        async def run():
            async with IngestService(engine, ServeConfig()) as service:
                await service.submit_many(samples)
                await service.drain()
                learned = await service.learn("job-0", "learned_L")
                assert learned > 0
                # The learnings are pending in the log, base untouched,
                # and the very next lookup sees them.
                assert engine.dictionary.delta_pending > 0
                assert engine.dictionary.pristine
                assert "learned_L" in engine.dictionary.labels()
            # __aexit__ ran close(): compact_on_close folded the log.
            return learned

        asyncio.run(run())
        assert pending_records(directory, generation=1) == 0
        reopened = load_columnar(directory)
        assert reopened.delta_pending == 0
        assert "learned_L" in reopened.labels()
        assert engine.stats.index_demotions == 0

    def test_no_compact_on_close_leaves_log_for_replay(
        self, recognizer, dataset, tmp_path
    ):
        from repro.engine import load_columnar

        engine, directory = self._columnar_engine(recognizer, tmp_path)
        record = list(dataset)[0]
        samples = interleave_records([record], METRIC, ["job-0"])

        async def run():
            config = ServeConfig(compact_on_close=False)
            async with IngestService(engine, config) as service:
                await service.submit_many(samples)
                await service.drain()
                await service.learn("job-0", "learned_L")

        asyncio.run(run())
        reopened = load_columnar(directory)
        assert reopened.delta_pending > 0        # replayed, not lost
        assert "learned_L" in reopened.labels()

    def test_learn_verdict_feedback_changes_next_recognition(
        self, recognizer, dataset, tmp_path
    ):
        engine, _ = self._columnar_engine(recognizer, tmp_path)
        record = list(dataset)[0]

        async def run():
            config = ServeConfig(compact_on_close=False)
            async with IngestService(engine, config) as service:
                await service.submit_many(
                    interleave_records([record], METRIC, ["first"])
                )
                await service.drain()
                await service.learn("first", "taught_T")
                # Replay the same telemetry as a new job: the taught
                # label must now participate in its verdict.
                await service.submit_many(
                    interleave_records([record], METRIC, ["second"])
                )
                await service.drain()
                verdict = await service.verdict("second")
                assert "taught_T" in verdict.matched_labels
            return True

        assert asyncio.run(run())
        assert engine.stats.index_demotions == 0

    def test_learn_works_on_flat_and_sharded_backends(
        self, recognizer, dataset
    ):
        record = list(dataset)[0]
        for n_shards in (1, 4):
            engine = _engine(recognizer, n_shards)

            async def run():
                config = ServeConfig(compact_on_close=False)
                async with IngestService(engine, config) as service:
                    await service.submit_many(
                        interleave_records([record], METRIC, ["j"])
                    )
                    await service.drain()
                    return await service.learn("j", "taught_T")

            assert asyncio.run(run()) > 0
            assert "taught_T" in engine.dictionary.labels()

    def test_learn_rejects_unknown_and_unresolved_jobs(
        self, recognizer, dataset
    ):
        engine = _engine(recognizer)
        record = list(dataset)[0]
        samples = list(interleave_records([record], METRIC, ["j"]))

        async def run():
            async with IngestService(engine, ServeConfig()) as service:
                with pytest.raises(KeyError, match="no samples ever"):
                    await service.learn("ghost", "x_L")
                # Feed only the first few samples: session open, no verdict.
                await service.submit_many(samples[:4])
                await service.drain()
                with pytest.raises(RuntimeError, match="still"):
                    await service.learn("j", "x_L")
                await service.submit_many(samples[4:])
                await service.drain()
                assert await service.learn("j", "x_L") > 0

        asyncio.run(run())
