"""Reproducibility guarantees across the whole stack.

The entire evaluation must be a pure function of configuration seeds:
dataset bits, tuned depths, experiment F-scores. These tests pin that
down — a regression here silently invalidates every reported number.
"""

import numpy as np
import pytest

from repro.core.recognizer import EFDRecognizer
from repro.core.tuning import select_rounding_depth
from repro.data.splits import kfold_splits, soft_unknown_splits
from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.experiments.protocol import make_efd_factory, run_experiment


def _tiny(seed=123):
    config = DatasetConfig(
        metrics=("nr_mapped_vmstat",), repetitions=2, seed=seed,
        duration_cap=150.0, apps=("ft", "mg", "lu"),
    )
    return TaxonomistDatasetGenerator(config).generate()


class TestDatasetDeterminism:
    def test_bitwise_identical_regeneration(self):
        a, b = _tiny(), _tiny()
        for ra, rb in zip(a, b):
            for key in ra.telemetry:
                assert np.array_equal(
                    ra.telemetry[key].values, rb.telemetry[key].values,
                    equal_nan=True,
                ), key

    def test_seed_isolation_between_records(self):
        # Changing one app's presence must not change another app's bits.
        full = _tiny()
        config = DatasetConfig(
            metrics=("nr_mapped_vmstat",), repetitions=2, seed=123,
            duration_cap=150.0, apps=("mg",),
        )
        only_mg = TaxonomistDatasetGenerator(config).generate()
        full_mg = full.filter(apps=["mg"])
        for ra, rb in zip(full_mg, only_mg):
            key = ("nr_mapped_vmstat", 0)
            assert np.array_equal(
                ra.telemetry[key].values, rb.telemetry[key].values,
                equal_nan=True,
            )


class TestPipelineDeterminism:
    def test_depth_selection_reproducible(self, small_dataset):
        records = list(small_dataset.records)
        a = select_rounding_depth(records, "nr_mapped_vmstat", k=3, seed=5)
        b = select_rounding_depth(records, "nr_mapped_vmstat", k=3, seed=5)
        assert a == b

    def test_fit_reproducible(self, tiny_dataset):
        a = EFDRecognizer(seed=1).fit(tiny_dataset)
        b = EFDRecognizer(seed=1).fit(tiny_dataset)
        assert a.depth_ == b.depth_
        assert list(a.dictionary_.entries()) == list(b.dictionary_.entries())

    def test_splits_reproducible(self, small_dataset):
        a = kfold_splits(small_dataset, 5, seed=3)
        b = kfold_splits(small_dataset, 5, seed=3)
        assert [s.test_indices for s in a] == [s.test_indices for s in b]
        sa = soft_unknown_splits(small_dataset, 3, seed=3)
        sb = soft_unknown_splits(small_dataset, 3, seed=3)
        assert [s.train_indices for s in sa] == [s.train_indices for s in sb]

    def test_experiment_fscore_reproducible(self):
        dataset = _tiny()
        a = run_experiment("normal_fold", dataset, make_efd_factory(), k=2)
        b = run_experiment("normal_fold", dataset, make_efd_factory(), k=2)
        assert a.split_scores == b.split_scores
