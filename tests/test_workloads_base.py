import numpy as np
import pytest

from repro.telemetry.metrics import default_registry
from repro.workloads.base import AppModel, make_signal
from repro.workloads.inputs import INPUT_SIZES
from repro.workloads.nas import make_nas_app

REGISTRY = default_registry()
NR_MAPPED = REGISTRY.get("nr_mapped_vmstat")
COMMITTED = REGISTRY.get("Committed_AS_meminfo")


class TestAppModelValidation:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            AppModel("")

    def test_requires_valid_durations(self):
        with pytest.raises(ValueError):
            AppModel("x", init_duration=100.0, base_duration=50.0)

    def test_requires_coupling_range(self):
        with pytest.raises(ValueError):
            AppModel("x", input_coupling=1.5)


class TestBaseLevels:
    def test_calibrated_level_exact(self):
        ft = make_nas_app("ft")
        for node in range(4):
            assert ft.base_level(NR_MAPPED, "X", node, 4) == 6000.0

    def test_calibrated_level_input_independent(self):
        ft = make_nas_app("ft")
        levels = {
            inp: ft.base_level(NR_MAPPED, inp, 0, 4) for inp in ("X", "Y", "Z")
        }
        assert len(set(levels.values())) == 1

    def test_derived_level_deterministic(self):
        app = AppModel("cg2", input_coupling=0.4)
        a = app.base_level(COMMITTED, "X", 0, 4)
        b = app.base_level(COMMITTED, "X", 0, 4)
        assert a == b

    def test_derived_level_positive_and_scaled(self):
        app = AppModel("someapp")
        level = app.base_level(COMMITTED, "X", 0, 4)
        assert 0.2 * COMMITTED.magnitude < level < 2.0 * COMMITTED.magnitude

    def test_input_coupling_moves_derived_levels(self):
        app = AppModel("scaler", input_coupling=1.0)
        metric = REGISTRY.get("pgfault_vmstat")
        if metric.input_sensitivity == 0:
            pytest.skip("hash assigned zero sensitivity")
        x = app.base_level(metric, "X", 0, 4)
        z = app.base_level(metric, "Z", 0, 4)
        assert z > x

    def test_zero_coupling_freezes_levels(self):
        app = AppModel("flat", input_coupling=0.0)
        metric = REGISTRY.get("pgfault_vmstat")
        assert app.base_level(metric, "X", 1, 4) == app.base_level(metric, "Z", 1, 4)

    def test_node_out_of_range(self):
        app = make_nas_app("ft")
        with pytest.raises(ValueError):
            app.base_level(NR_MAPPED, "X", 4, 4)

    def test_constant_metric_app_independent(self):
        spec = REGISTRY.get("MemTotal_meminfo")
        a = AppModel("a").base_level(spec, "X", 0, 4)
        b = AppModel("b").base_level(spec, "X", 0, 4)
        assert a == b == spec.magnitude

    def test_lattice_separates_canonical_apps(self):
        # On a fully discriminative metric, all 11 applications occupy
        # distinct levels with >5 % relative separation.
        from repro.workloads.registry import APP_NAMES, default_workloads

        workloads = default_workloads()
        levels = sorted(
            workloads.get(name).base_level(COMMITTED, "X", 1, 4)
            for name in APP_NAMES
        )
        gaps = np.diff(levels) / np.array(levels[:-1])
        assert gaps.min() > 0.05


class TestExecutionBehavior:
    def test_behavior_covers_all_metric_nodes(self):
        app = make_nas_app("mg")
        behavior = app.execution_behavior([NR_MAPPED, COMMITTED], "X", 4, rng=0)
        assert set(behavior.behaviors) == {
            (m.name, n) for m in (NR_MAPPED, COMMITTED) for n in range(4)
        }

    def test_exec_levels_vary_between_executions(self):
        app = make_nas_app("mg")
        b1 = app.execution_behavior([NR_MAPPED], "X", 4, rng=1)
        b2 = app.execution_behavior([NR_MAPPED], "X", 4, rng=2)
        l1 = b1.behaviors[(NR_MAPPED.name, 0)].level
        l2 = b2.behaviors[(NR_MAPPED.name, 0)].level
        assert l1 != l2
        # ... but stay near the base level.
        assert abs(l1 - 6110.0) / 6110.0 < 0.05

    def test_exec_behavior_reproducible(self):
        app = make_nas_app("mg")
        b1 = app.execution_behavior([NR_MAPPED], "X", 4, rng=3)
        b2 = app.execution_behavior([NR_MAPPED], "X", 4, rng=3)
        assert b1.behaviors[(NR_MAPPED.name, 2)].level == \
            b2.behaviors[(NR_MAPPED.name, 2)].level

    def test_duration_scales_with_input(self):
        app = make_nas_app("ft")
        assert app.duration("Z") > app.duration("X")

    def test_exec_sigma_override(self):
        app = AppModel(
            "v", exec_sigma_overrides={("nr_mapped_vmstat", "Z"): 0.5}
        )
        assert app.exec_sigma(NR_MAPPED, "Z") == 0.5
        assert app.exec_sigma(NR_MAPPED, "X") == NR_MAPPED.noise_rel

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            make_nas_app("ft").execution_behavior([NR_MAPPED], "X", 0, rng=0)

    def test_rejects_unknown_input(self):
        with pytest.raises(KeyError):
            make_nas_app("ft").execution_behavior([NR_MAPPED], "Q", 4, rng=0)


class TestMakeSignal:
    def _behavior(self, app="ft", metric=NR_MAPPED):
        model = make_nas_app(app)
        return model.execution_behavior([metric], "X", 4, rng=0).behaviors[
            (metric.name, 0)
        ]

    def test_signal_settles_near_level(self):
        behavior = self._behavior()
        signal = make_signal(behavior, rng=0)
        times = np.arange(200, dtype=float)
        values = signal(times)
        window = values[60:120]
        assert abs(window.mean() - behavior.level) / behavior.level < 0.02

    def test_init_phase_below_plateau(self):
        behavior = self._behavior()
        signal = make_signal(behavior, rng=1)
        values = signal(np.arange(200, dtype=float))
        assert values[:3].mean() < 0.6 * behavior.level

    def test_signal_non_negative(self):
        behavior = self._behavior()
        signal = make_signal(behavior, rng=2)
        assert np.all(signal(np.arange(300, dtype=float)) >= 0.0)
