import numpy as np
import pytest

from repro.telemetry.ldms import LDMSAggregator, LDMSDaemon
from repro.telemetry.sampler import SamplerConfig


def constant(value):
    return lambda times: np.full(len(times), float(value))


class TestLDMSDaemon:
    def test_collects_all_signals(self):
        daemon = LDMSDaemon(0, SamplerConfig(jitter_std=0, dropout_prob=0), rng=1)
        out = daemon.collect({"m1": constant(1), "m2": constant(2)}, 30.0)
        assert set(out) == {"m1", "m2"}
        assert np.all(out["m1"].values == 1.0)

    def test_rejects_negative_node(self):
        with pytest.raises(ValueError):
            LDMSDaemon(-1)

    def test_per_metric_streams_reproducible(self):
        daemon_a = LDMSDaemon(0, SamplerConfig(dropout_prob=0.2), rng=3)
        daemon_b = LDMSDaemon(0, SamplerConfig(dropout_prob=0.2), rng=3)
        a = daemon_a.collect({"m": constant(1)}, 100.0)["m"]
        b = daemon_b.collect({"m": constant(1)}, 100.0)["m"]
        assert a == b

    def test_nodes_decorrelated(self):
        cfg = SamplerConfig(dropout_prob=0.3)
        a = LDMSDaemon(0, cfg, rng=3).collect({"m": constant(1)}, 200.0)["m"]
        b = LDMSDaemon(1, cfg, rng=3).collect({"m": constant(1)}, 200.0)["m"]
        assert not np.array_equal(a.values, b.values, equal_nan=True)


class TestLDMSAggregator:
    def _signals(self, n_nodes):
        return {n: {"m": constant(n + 1)} for n in range(n_nodes)}

    def test_collect_all(self):
        cfg = SamplerConfig(jitter_std=0, dropout_prob=0)
        daemons = [LDMSDaemon(n, cfg, rng=0) for n in range(3)]
        agg = LDMSAggregator()
        store = agg.collect_all(daemons, self._signals(3), 10.0)
        assert set(store) == {("m", 0), ("m", 1), ("m", 2)}
        assert agg.metrics() == ["m"]
        assert agg.nodes() == [0, 1, 2]
        assert np.all(agg.get("m", 2).values == 3.0)

    def test_duplicate_ingest_rejected(self):
        agg = LDMSAggregator()
        daemon = LDMSDaemon(0, SamplerConfig(jitter_std=0), rng=0)
        series = daemon.collect({"m": constant(1)}, 5.0)
        agg.ingest(0, series)
        with pytest.raises(ValueError, match="duplicate"):
            agg.ingest(0, series)

    def test_missing_node_signals_rejected(self):
        agg = LDMSAggregator()
        daemons = [LDMSDaemon(0), LDMSDaemon(1)]
        with pytest.raises(KeyError, match="node 1"):
            agg.collect_all(daemons, {0: {"m": constant(1)}}, 5.0)

    def test_get_unknown_raises(self):
        agg = LDMSAggregator()
        with pytest.raises(KeyError):
            agg.get("m", 0)
