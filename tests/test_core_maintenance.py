import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.core.maintenance import (
    cap_keys_per_app,
    diff,
    evict_apps,
    evict_labels,
    federate,
    prune_rare_keys,
)


def _fp(value, node=0):
    return Fingerprint("nr_mapped_vmstat", node, (60.0, 120.0), value)


def _sample():
    efd = ExecutionFingerprintDictionary()
    for _ in range(3):
        efd.add(_fp(6000.0), "ft_X")
    efd.add(_fp(6050.0), "ft_X")          # rare variant key (1 observation)
    efd.add(_fp(6100.0), "mg_X")
    efd.add(_fp(6100.0), "mg_Y")
    efd.add(_fp(7500.0), "sp_X")
    efd.add(_fp(7500.0), "bt_X")
    return efd


class TestEviction:
    def test_evict_labels_removes_only_target(self):
        out = evict_labels(_sample(), ["mg_Y"])
        assert "mg_Y" not in out.labels()
        assert out.lookup(_fp(6100.0)) == ["mg_X"]
        assert out.lookup(_fp(6000.0)) == ["ft_X"]

    def test_evict_labels_drops_emptied_keys(self):
        out = evict_labels(_sample(), ["ft_X"])
        assert _fp(6000.0) not in out
        assert _fp(6050.0) not in out

    def test_evict_apps_removes_all_inputs(self):
        out = evict_apps(_sample(), ["mg"])
        assert "mg" not in out.app_names()
        assert _fp(6100.0) not in out

    def test_evict_app_resolves_collision(self):
        # After retiring sp, the shared sp/bt key belongs to bt alone.
        out = evict_apps(_sample(), ["sp"])
        assert out.lookup(_fp(7500.0)) == ["bt_X"]
        assert out.stats().n_colliding_keys == 0

    def test_evict_nothing_is_noop_copy(self):
        original = _sample()
        out = evict_apps(original, ["hpl"])
        assert len(out) == len(original)
        assert list(out.entries()) == list(original.entries())

    def test_empty_args_rejected(self):
        with pytest.raises(ValueError):
            evict_labels(_sample(), [])
        with pytest.raises(ValueError):
            evict_apps(_sample(), [])


class TestPruneRare:
    def test_drops_single_observation_keys(self):
        out = prune_rare_keys(_sample(), min_count=2)
        assert _fp(6050.0) not in out       # the 1-observation variant
        assert _fp(6000.0) in out           # 3 observations survive

    def test_min_count_one_keeps_everything(self):
        original = _sample()
        out = prune_rare_keys(original, min_count=1)
        assert len(out) == len(original)

    def test_preserves_counts(self):
        out = prune_rare_keys(_sample(), min_count=2)
        assert out.lookup_counts(_fp(6000.0)) == {"ft_X": 3}

    def test_preserves_tiebreak_order(self):
        # sp/bt key survives pruning at min_count=1 with order intact.
        out = prune_rare_keys(_sample(), min_count=1)
        assert out.lookup(_fp(7500.0)) == ["sp_X", "bt_X"]
        assert out.app_names().index("sp") < out.app_names().index("bt")

    def test_validation(self):
        with pytest.raises(ValueError):
            prune_rare_keys(_sample(), min_count=0)


class TestCapKeys:
    def test_keeps_strongest_keys(self):
        out = cap_keys_per_app(_sample(), max_keys=1)
        # ft keeps its 3-observation key, loses the 1-observation one.
        assert _fp(6000.0) in out
        assert _fp(6050.0) not in out

    def test_large_budget_is_noop(self):
        original = _sample()
        out = cap_keys_per_app(original, max_keys=100)
        assert len(out) == len(original)

    def test_validation(self):
        with pytest.raises(ValueError):
            cap_keys_per_app(_sample(), max_keys=0)


class TestFederate:
    def test_counts_add(self):
        a, b = _sample(), _sample()
        merged = federate([a, b])
        assert merged.lookup_counts(_fp(6000.0)) == {"ft_X": 6}

    def test_first_cluster_wins_tiebreak_order(self):
        a = ExecutionFingerprintDictionary()
        a.add(_fp(7500.0), "bt_X")
        b = ExecutionFingerprintDictionary()
        b.add(_fp(7500.0), "sp_X")
        merged = federate([a, b])
        assert merged.lookup(_fp(7500.0)) == ["bt_X", "sp_X"]
        assert merged.app_names() == ["bt", "sp"]

    def test_disjoint_dictionaries_union(self):
        a = ExecutionFingerprintDictionary()
        a.add(_fp(1.0), "x_X")
        b = ExecutionFingerprintDictionary()
        b.add(_fp(2.0), "y_X")
        merged = federate([a, b])
        assert len(merged) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            federate([])


class TestDiff:
    def test_identical_is_empty(self):
        report = diff(_sample(), _sample())
        assert report.is_empty
        assert report.summary() == "+0 keys, -0 keys, ~0 relabeled"

    def test_added_and_removed(self):
        old = _sample()
        new = evict_apps(_sample(), ["mg"])
        new.add(_fp(9999.0), "hpl_X")
        report = diff(old, new)
        assert _fp(9999.0) in report.added
        assert _fp(6100.0) in report.removed

    def test_relabeled(self):
        old = _sample()
        new = evict_labels(_sample(), ["bt_X"])  # sp/bt key loses bt
        report = diff(old, new)
        assert _fp(7500.0) in report.relabeled
