import numpy as np
import pytest

from repro.ml.knn import KNeighborsClassifier
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)


class TestKFold:
    def test_covers_everything_once(self):
        X = np.zeros((10, 2))
        seen = []
        for train, test in KFold(3).split(X):
            seen.extend(test.tolist())
            assert set(train) | set(test) == set(range(10))
            assert not set(train) & set(test)
        assert sorted(seen) == list(range(10))

    def test_fold_sizes_balanced(self):
        X = np.zeros((10, 1))
        sizes = [len(test) for _, test in KFold(3).split(X)]
        assert sorted(sizes) == [3, 3, 4]

    def test_shuffle_reproducible(self):
        X = np.zeros((20, 1))
        a = [t.tolist() for _, t in KFold(4, shuffle=True, random_state=1).split(X)]
        b = [t.tolist() for _, t in KFold(4, shuffle=True, random_state=1).split(X)]
        assert a == b

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(np.zeros((3, 1))))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestStratifiedKFold:
    def test_class_balance_preserved(self):
        y = np.array([0] * 30 + [1] * 6)
        X = np.zeros((36, 1))
        for _, test in StratifiedKFold(3, random_state=0).split(X, y):
            labels = y[test]
            assert np.sum(labels == 1) == 2  # 6 minority / 3 folds

    def test_partition_complete(self):
        y = np.array([0, 1] * 10)
        X = np.zeros((20, 1))
        seen = []
        for _, test in StratifiedKFold(4, random_state=0).split(X, y):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(20))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            list(StratifiedKFold(2).split(np.zeros((3, 1)), np.zeros(4)))


class TestCrossValScore:
    def test_scores_shape_and_range(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (30, 2)), rng.normal(5, 1, (30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        scores = cross_val_score(lambda: KNeighborsClassifier(3), X, y)
        assert scores.shape == (5,)
        assert np.all(scores > 0.9)  # trivially separable

    def test_custom_scoring(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = (X[:, 0] > 9).astype(int)
        scores = cross_val_score(
            lambda: KNeighborsClassifier(1),
            X, y,
            cv=KFold(2),
            scoring=lambda est, Xt, yt: 0.123,
        )
        assert np.all(scores == 0.123)


class TestTrainTestSplit:
    def test_shapes(self):
        X = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25,
                                                  random_state=0)
        assert len(X_te) == 5 and len(X_tr) == 15
        # Pairing preserved.
        assert np.all(X_tr[:, 0] == y_tr * 2)

    def test_stratified(self):
        y = np.array([0] * 16 + [1] * 4)
        X = np.zeros((20, 1))
        _, _, _, y_te = train_test_split(X, y, test_size=0.25,
                                         random_state=0, stratify=y)
        assert np.sum(y_te == 1) == 1

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), test_size=1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(5))
