import pytest

from repro._util.tables import TextTable, format_float, render_bar_chart


class TestFormatFloat:
    def test_paper_style_trailing(self):
        assert format_float(1.0) == "1.0"
        assert format_float(0.95) == "0.95"
        assert format_float(0.9) == "0.9"

    def test_nan_renders_dash(self):
        assert format_float(float("nan")) == "-"

    def test_digits(self):
        assert format_float(0.123456, digits=3) == "0.123"


class TestTextTable:
    def test_render_contains_headers_and_cells(self):
        t = TextTable(["metric", "F"])
        t.add_row(["nr_mapped_vmstat", "1.0"])
        out = t.render()
        assert "metric" in out and "nr_mapped_vmstat" in out and "1.0" in out

    def test_title_rendered_first(self):
        t = TextTable(["a"], title="Table X")
        t.add_row(["1"])
        assert t.render().splitlines()[0] == "Table X"

    def test_rejects_wrong_cell_count(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError, match="2"):
            t.add_row(["only-one"])

    def test_rejects_empty_headers(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_columns_aligned(self):
        t = TextTable(["a", "b"])
        t.add_row(["xxxxxxxx", "1"])
        t.add_row(["y", "2"])
        lines = [l for l in t.render().splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # all rows equal width

    def test_add_rows_bulk(self):
        t = TextTable(["a"])
        t.add_rows([["1"], ["2"], ["3"]])
        assert len(t.rows) == 3


class TestRenderBarChart:
    def test_values_and_na(self):
        out = render_bar_chart(
            ["exp1", "exp2"],
            [("EFD", [1.0, 0.5]), ("Taxonomist", [0.9, None])],
        )
        assert "exp1" in out
        assert "n/a" in out
        assert "1.000" in out

    def test_bar_length_scales(self):
        out = render_bar_chart(["e"], [("s", [0.5])], width=10)
        bar_line = [l for l in out.splitlines() if "#" in l][0]
        assert bar_line.count("#") == 5
