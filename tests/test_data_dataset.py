import numpy as np
import pytest

from repro.data.dataset import ExecutionDataset, ExecutionRecord
from repro.telemetry.timeseries import TimeSeries


def _record(record_id=0, app="ft", inp="X", n_nodes=2, n=150, level=6000.0):
    telemetry = {
        ("nr_mapped_vmstat", node): TimeSeries(np.full(n, level + node))
        for node in range(n_nodes)
    }
    return ExecutionRecord(
        record_id=record_id,
        app_name=app,
        input_size=inp,
        n_nodes=n_nodes,
        duration=float(n),
        telemetry=telemetry,
    )


class TestExecutionRecord:
    def test_label(self):
        assert _record(app="miniAMR", inp="Z").label == "miniAMR_Z"

    def test_interval_mean(self):
        record = _record(level=100.0)
        assert record.interval_mean("nr_mapped_vmstat", 1, 60, 120) == 101.0

    def test_series_unknown_metric(self):
        with pytest.raises(KeyError, match="no series"):
            _record().series("Active_meminfo", 0)

    def test_rejects_node_out_of_range(self):
        telemetry = {("m", 5): TimeSeries(np.ones(10))}
        with pytest.raises(ValueError, match="outside"):
            ExecutionRecord(0, "a", "X", 2, 10.0, telemetry)

    def test_rejects_non_timeseries(self):
        with pytest.raises(TypeError):
            ExecutionRecord(0, "a", "X", 1, 10.0, {("m", 0): [1, 2, 3]})

    def test_metrics_sorted(self):
        telemetry = {
            ("b_metric", 0): TimeSeries(np.ones(5)),
            ("a_metric", 0): TimeSeries(np.ones(5)),
        }
        record = ExecutionRecord(0, "a", "X", 1, 5.0, telemetry)
        assert record.metrics() == ["a_metric", "b_metric"]


class TestExecutionDataset:
    def _dataset(self):
        records = [
            _record(0, "ft", "X"), _record(1, "ft", "Y"),
            _record(2, "mg", "X"), _record(3, "mg", "Y"),
            _record(4, "miniAMR", "L"),
        ]
        return ExecutionDataset(records, ["nr_mapped_vmstat"])

    def test_len_iter_getitem(self):
        ds = self._dataset()
        assert len(ds) == 5
        assert ds[0].app_name == "ft"
        assert [r.record_id for r in ds] == [0, 1, 2, 3, 4]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ExecutionDataset([_record(1), _record(1)], ["nr_mapped_vmstat"])

    def test_labels_and_apps(self):
        ds = self._dataset()
        assert ds.labels() == ["ft_X", "ft_Y", "mg_X", "mg_Y", "miniAMR_L"]
        assert ds.app_names() == ["ft", "mg", "miniAMR"]
        assert set(ds.input_sizes()) == {"X", "Y", "L"}
        assert len(ds.app_input_pairs()) == 5

    def test_filter_by_app(self):
        ds = self._dataset().filter(apps=["ft"])
        assert len(ds) == 2
        assert ds.app_names() == ["ft"]

    def test_filter_by_input_exclusion(self):
        ds = self._dataset().filter(exclude_inputs=["X"])
        assert {r.input_size for r in ds} == {"Y", "L"}

    def test_filter_combined(self):
        ds = self._dataset().filter(apps=["ft", "mg"], inputs=["Y"])
        assert ds.labels() == ["ft_Y", "mg_Y"]

    def test_subset_preserves_order_and_shares_records(self):
        ds = self._dataset()
        sub = ds.subset([3, 0])
        assert sub.labels() == ["mg_Y", "ft_X"]
        assert sub[1] is ds[0]

    def test_subset_rejects_bad_index(self):
        with pytest.raises(IndexError):
            self._dataset().subset([99])

    def test_indices_where(self):
        ds = self._dataset()
        idx = ds.indices_where(lambda r: r.app_name == "mg")
        assert idx == [2, 3]

    def test_summary_shape(self):
        summary = self._dataset().summary()
        assert summary["executions"] == 5
        assert summary["pairs"] == 5
        assert summary["node_count"] == 2

    def test_check_consistent_detects_missing_metric(self):
        ds = ExecutionDataset([_record(0)], ["nr_mapped_vmstat", "Active_meminfo"])
        with pytest.raises(ValueError, match="missing metrics"):
            ds.check_consistent()
