import numpy as np
import pytest

from repro.data.splits import Split
from repro.experiments.figures import (
    EXPERIMENT_LABELS,
    TAXONOMIST_EXPERIMENTS,
    figure2_series,
    render_figure2,
)
from repro.experiments.protocol import (
    EXPERIMENT_NAMES,
    evaluate_split,
    evaluate_splits,
    make_efd_factory,
    make_taxonomist_factory,
    run_experiment,
    splits_for,
)
from repro.experiments.reporting import (
    render_experiment_detail,
    render_mechanism_diagram,
    render_suite_comparison,
)
from repro.experiments.runner import ExperimentSuite, SuiteResult
from repro.experiments.tables import (
    TABLE4_APPS,
    example_efd,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    table1_rows,
    table3_scores,
)


class TestProtocol:
    def test_experiment_names_order(self):
        assert EXPERIMENT_NAMES == (
            "normal_fold", "soft_input", "soft_unknown",
            "hard_input", "hard_unknown",
        )

    def test_splits_for_each_experiment(self, small_dataset):
        for name in EXPERIMENT_NAMES:
            splits = splits_for(name, small_dataset, k=3)
            assert splits, name

    def test_splits_for_unknown_raises(self, small_dataset):
        with pytest.raises(ValueError):
            splits_for("extreme_unknown", small_dataset)

    def test_normal_fold_efd_is_high(self, small_dataset):
        result = run_experiment(
            "normal_fold", small_dataset, make_efd_factory(), k=3
        )
        assert result.fscore > 0.9
        assert len(result.split_scores) == 3
        assert result.experiment == "normal_fold"

    def test_hard_input_lower_than_normal(self, small_dataset):
        normal = run_experiment(
            "normal_fold", small_dataset, make_efd_factory(), k=3
        )
        hard = run_experiment("hard_input", small_dataset, make_efd_factory())
        # The paper's headline contrast: hard input has clear room for
        # improvement while normal fold is near-perfect.
        assert hard.fscore < normal.fscore - 0.2

    def test_hard_unknown_between(self, small_dataset):
        result = run_experiment(
            "hard_unknown", small_dataset, make_efd_factory()
        )
        assert 0.5 < result.fscore < 1.0

    def test_evaluate_split_counts_spurious_unknowns(self, small_dataset):
        # A recognizer that always answers 'unknown' scores 0 on normal
        # folds (its predictions are outside the true label set).
        class AlwaysUnknown:
            def fit(self, ds):
                return self

            def predict(self, ds):
                return ["unknown"] * len(ds)

        split = splits_for("normal_fold", small_dataset, k=3)[0]
        assert evaluate_split(small_dataset, split, AlwaysUnknown) == 0.0

    def test_evaluate_split_perfect_oracle(self, small_dataset):
        class Oracle:
            def fit(self, ds):
                return self

            def predict(self, ds):
                return [r.app_name for r in ds]

        split = splits_for("normal_fold", small_dataset, k=3)[0]
        assert evaluate_split(small_dataset, split, Oracle) == 1.0

    def test_prediction_count_mismatch_detected(self, small_dataset):
        class Broken:
            def fit(self, ds):
                return self

            def predict(self, ds):
                return ["ft"]

        split = splits_for("normal_fold", small_dataset, k=3)[0]
        with pytest.raises(RuntimeError, match="predictions"):
            evaluate_split(small_dataset, split, Broken)

    def test_evaluate_splits_aggregates(self, small_dataset):
        splits = splits_for("normal_fold", small_dataset, k=3)
        result = evaluate_splits(
            small_dataset, splits, make_efd_factory(depth=2), experiment="x"
        )
        assert result.fscore == pytest.approx(np.mean(result.split_scores))
        assert result.n_test == len(small_dataset)

    def test_evaluate_splits_thread_backend_matches_serial(self, tiny_dataset):
        splits = splits_for("normal_fold", tiny_dataset, k=3)
        serial = evaluate_splits(
            tiny_dataset, splits, make_efd_factory(depth=2), backend="serial"
        )
        threaded = evaluate_splits(
            tiny_dataset, splits, make_efd_factory(depth=2),
            backend="thread", n_workers=3,
        )
        assert serial.split_scores == threaded.split_scores

    def test_empty_splits_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            evaluate_splits(small_dataset, [], make_efd_factory())


class TestSuite:
    def test_suite_runs_subset(self, tiny_dataset):
        suite = ExperimentSuite(tiny_dataset, k=3)
        result = suite.run(
            make_efd_factory(depth=2), "EFD",
            experiments=("normal_fold", "hard_input"),
        )
        assert result.fscore("normal_fold") is not None
        assert result.fscore("soft_input") is None
        series = result.series()
        assert len(series) == 5
        assert series[1] is None

    def test_suite_str_mentions_not_conducted(self, tiny_dataset):
        suite = ExperimentSuite(tiny_dataset, k=3)
        result = suite.run(
            make_efd_factory(depth=2), "EFD", experiments=("normal_fold",)
        )
        assert "not conducted" in str(result)

    def test_empty_dataset_rejected(self, tiny_dataset):
        from repro.data.dataset import ExecutionDataset

        with pytest.raises(ValueError):
            ExperimentSuite(ExecutionDataset([], ["m"]))


class TestTables:
    def test_table1_rows_match_paper(self):
        rows = table1_rows()
        # Row 1: 1358.0 at depths 5..1.
        assert rows[0] == ["1358", "-", "1358", "1360", "1400", "1000"]
        assert rows[1] == ["5.28", "-", "-", "5.28", "5.3", "5"]
        assert rows[2] == ["0.038", "-", "-", "-", "0.038", "0.04"]

    def test_render_table1_mentions_depths(self):
        out = render_table1()
        assert "Rounding Depth" in out
        assert "1400" in out

    def test_render_table2_summary(self, small_dataset):
        out = render_table2(small_dataset)
        assert "miniAMR" in out and "kripke" in out
        assert "4" in out  # node count

    def test_table3_scores_subset(self, tiny_dataset):
        scores = table3_scores(tiny_dataset, metrics=["nr_mapped_vmstat"], k=3)
        assert scores["nr_mapped_vmstat"] > 0.9

    def test_table3_missing_metric_raises(self, tiny_dataset):
        with pytest.raises(KeyError):
            table3_scores(tiny_dataset, metrics=["Active_meminfo"])

    def test_render_table3_sorted_desc(self):
        out = render_table3({"a_metric": 0.5, "b_metric": 1.0})
        assert out.index("b_metric") < out.index("a_metric")

    def test_example_efd_reproduces_sp_bt_collision(self, small_dataset):
        efd = example_efd(small_dataset)
        colliding_apps = set()
        for fp, labels in efd.collisions():
            for label in labels:
                colliding_apps.add(label.rsplit("_", 1)[0])
        assert {"sp", "bt"} <= colliding_apps

    def test_example_efd_restricted_to_table4_apps(self, small_dataset):
        efd = example_efd(small_dataset)
        apps = set(efd.app_names())
        assert apps <= set(TABLE4_APPS)

    def test_render_table4_contains_fingerprints(self, small_dataset):
        out = render_table4(example_efd(small_dataset))
        assert "nr_mapped_vmstat" in out
        assert "[60:120]" in out
        assert "ft_X" in out

    def test_example_efd_unknown_apps_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            example_efd(tiny_dataset, apps=["kripke"])  # not in tiny fixture


class TestFiguresAndReporting:
    def test_figure2_series_shape(self, tiny_dataset):
        series = figure2_series(tiny_dataset, k=3)
        assert set(series) == {"EFD", "Taxonomist"}
        assert len(series["EFD"]) == 5
        # Taxonomist hard experiments were not conducted (paper note).
        assert series["Taxonomist"][3] is None
        assert series["Taxonomist"][4] is None
        assert all(v is not None for v in series["EFD"])

    def test_render_figure2(self, tiny_dataset):
        series = {
            "EFD": [1.0, 0.96, 0.97, 0.6, 0.8],
            "Taxonomist": [0.99, 0.98, 0.95, None, None],
        }
        out = render_figure2(series)
        assert "Normal fold" in out and "Hard unknown" in out
        assert "n/a" in out

    def test_mechanism_diagram_mentions_stages(self):
        out = render_mechanism_diagram()
        assert "lookup" in out
        assert "round" in out
        assert "[60:120]" in out

    def test_suite_comparison_table(self, tiny_dataset):
        suite = ExperimentSuite(tiny_dataset, k=3)
        efd = suite.run(make_efd_factory(depth=2), "EFD",
                        experiments=("normal_fold",))
        out = render_suite_comparison({"EFD": efd.results})
        assert "normal_fold" in out and "n/a" in out

    def test_experiment_detail_lists_splits(self, tiny_dataset):
        result = run_experiment(
            "normal_fold", tiny_dataset, make_efd_factory(depth=2), k=3
        )
        out = render_experiment_detail(result)
        assert "normal_fold[0]" in out
