import os

import numpy as np
import pytest

from repro.data.features import FEATURE_NAMES, FeatureExtractor, series_features
from repro.data.io import load_dataset, save_dataset


class TestSeriesFeatures:
    def test_feature_count(self):
        assert len(series_features(np.arange(50.0))) == len(FEATURE_NAMES)

    def test_known_values(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        feats = dict(zip(FEATURE_NAMES, series_features(values)))
        assert feats["min"] == 1.0
        assert feats["max"] == 5.0
        assert feats["mean"] == 3.0
        assert feats["p50"] == 3.0

    def test_nan_ignored(self):
        values = np.array([1.0, np.nan, 3.0])
        feats = dict(zip(FEATURE_NAMES, series_features(values)))
        assert feats["mean"] == 2.0

    def test_all_nan_gives_zeros(self):
        assert np.all(series_features(np.array([np.nan, np.nan])) == 0.0)

    def test_constant_series_zero_skew(self):
        feats = dict(zip(FEATURE_NAMES, series_features(np.full(10, 7.0))))
        assert feats["std"] == 0.0
        assert feats["skew_proxy"] == 0.0


class TestFeatureExtractor:
    def test_entity_per_node(self, tiny_dataset):
        fm = FeatureExtractor().extract(tiny_dataset)
        assert fm.X.shape == (len(tiny_dataset) * 4, len(FEATURE_NAMES))
        assert len(fm.labels) == fm.X.shape[0]
        assert set(fm.node) == {0, 1, 2, 3}

    def test_exec_index_maps_back(self, tiny_dataset):
        fm = FeatureExtractor().extract(tiny_dataset)
        for i in range(0, len(fm.labels), 4):
            pos = fm.exec_index[i]
            assert fm.labels[i] == tiny_dataset[pos].app_name

    def test_feature_names_prefixed_by_metric(self, tiny_dataset):
        fm = FeatureExtractor().extract(tiny_dataset)
        assert fm.feature_names[0] == "nr_mapped_vmstat:min"

    def test_window_restriction_changes_features(self, tiny_dataset):
        full = FeatureExtractor(window=(0.0, None)).extract(tiny_dataset)
        late = FeatureExtractor(window=(60.0, 120.0)).extract(tiny_dataset)
        assert not np.allclose(full.X, late.X)

    def test_unknown_metric_rejected(self, tiny_dataset):
        with pytest.raises(KeyError):
            FeatureExtractor(metrics=["nope"]).extract(tiny_dataset)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor(window=(60.0, 30.0))

    def test_feature_separation_between_apps(self, tiny_dataset):
        # Mean feature separates ft (6000) from CoMD (8810) cleanly.
        fm = FeatureExtractor(window=(60.0, 120.0)).extract(tiny_dataset)
        mean_col = list(fm.feature_names).index("nr_mapped_vmstat:mean")
        ft_means = fm.X[[l == "ft" for l in fm.labels], mean_col]
        comd_means = fm.X[[l == "CoMD" for l in fm.labels], mean_col]
        assert ft_means.max() < comd_means.min()


class TestDatasetIO:
    def test_round_trip_exact(self, tiny_dataset, tmp_path):
        path = str(tmp_path / "ds.npz")
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        assert len(loaded) == len(tiny_dataset)
        assert loaded.metrics == tiny_dataset.metrics
        for original, restored in zip(tiny_dataset, loaded):
            assert restored.label == original.label
            assert restored.rep_index == original.rep_index
            assert restored.series("nr_mapped_vmstat", 3) == \
                original.series("nr_mapped_vmstat", 3)

    def test_round_trip_preserves_nan(self, tmp_path):
        from repro.data.dataset import ExecutionDataset, ExecutionRecord
        from repro.telemetry.timeseries import TimeSeries

        values = np.array([1.0, np.nan, 3.0])
        record = ExecutionRecord(
            0, "a", "X", 1, 3.0, {("m", 0): TimeSeries(values)}
        )
        path = str(tmp_path / "nan.npz")
        save_dataset(ExecutionDataset([record], ["m"]), path)
        loaded = load_dataset(path)
        assert np.isnan(loaded[0].series("m", 0).values[1])

    def test_load_appends_npz_suffix(self, tiny_dataset, tmp_path):
        path = str(tmp_path / "ds")
        save_dataset(tiny_dataset, path)  # numpy appends .npz
        loaded = load_dataset(path)
        assert len(loaded) == len(tiny_dataset)

    def test_load_rejects_foreign_archive(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez_compressed(path, data=np.ones(3))
        with pytest.raises(ValueError, match="not a repro dataset"):
            load_dataset(path)
