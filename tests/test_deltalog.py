"""The write-ahead delta-log: hot-index writes, durability, compaction.

The acceptance bar of the delta-log refactor: a columnar store under a
sustained write trickle (appends interleaved with batch recognitions)
keeps the vectorized ``searchsorted`` index active — zero demotions —
with verdicts element-wise identical to a flat reference grown the same
way; the log replays across restarts, folds losslessly on compaction,
survives crash artifacts (torn tail, stale generation), and blocks
``expand`` while unfolded.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint, build_fingerprints
from repro.core.matcher import match_fingerprints
from repro.core.recognizer import EFDRecognizer
from repro.engine import (
    BatchRecognizer,
    PendingDeltaError,
    ShardedDictionary,
    compact_shards,
    expand_shards,
    load_columnar,
    load_sharded,
    pending_records,
    save_columnar,
)
from repro.engine.columnar import ColumnarBatchIndex
from repro.engine.deltalog import SEGMENT_NAME, segment_path


def _fp(value: float, node: int = 0, metric: str = "m") -> Fingerprint:
    return Fingerprint(
        metric=metric, node=node, interval=(60.0, 120.0), value=value
    )


def _columnar(tmp_path, flat: ExecutionFingerprintDictionary, n_shards=4,
              name="col", **kwargs):
    directory = str(tmp_path / name)
    save_columnar(ShardedDictionary.from_flat(flat, n_shards), directory)
    return load_columnar(directory, **kwargs), directory


def _small_flat(n: int = 40) -> ExecutionFingerprintDictionary:
    flat = ExecutionFingerprintDictionary()
    for i in range(n):
        flat.add(_fp(100.0 * (i + 1), i % 4), f"ft_{'XYZ'[i % 3]}")
        if i % 5 == 0:
            flat.add(_fp(100.0 * (i + 1), i % 4), "mg_Y")
    return flat


def _assert_equal_stores(a, b) -> None:
    assert len(a) == len(b)
    assert a.labels() == b.labels()
    assert a.app_names() == b.app_names()
    assert list(a.entries()) == list(b.entries())
    for fp, _ in a.entries():
        assert a.lookup_counts(fp) == b.lookup_counts(fp)
    assert a.stats() == b.stats()


class TestWriteTrickleKeepsIndexHot:
    """ISSUE 5 acceptance: appends never demote the vectorized path."""

    def test_trickle_verdicts_match_flat_reference(self, tiny_dataset, tmp_path):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        records = list(tiny_dataset)
        flat = ExecutionFingerprintDictionary()
        flat.merge(recognizer.dictionary_)
        col, _ = _columnar(tmp_path, flat, n_shards=4)
        engine = BatchRecognizer(col, depth=2)
        # Sustained trickle: interleave single appends with recognition
        # batches over the whole dataset; mirror every append into the
        # flat reference and compare verdicts element-wise each round.
        for round_no in range(12):
            fp = _fp(7000.0 + round_no, round_no % 4, "nr_mapped_vmstat")
            label = f"new{round_no % 3}_L"
            col.add(fp, label)
            flat.add(fp, label)
            expected = [
                match_fingerprints(
                    flat, build_fingerprints(r, "nr_mapped_vmstat", 2)
                )
                for r in records
            ]
            assert engine.recognize_records(records) == expected
            # The engine is still answering through the columnar index,
            # not the generic dict fallback.
            assert isinstance(engine._index, ColumnarBatchIndex)
        assert engine.stats.index_demotions == 0
        assert col.pristine
        assert not any(shard.hydrated for shard in col.shards)

    def test_thousand_appends_with_batch_recognitions(self, tmp_path):
        # Volume version (synthetic keys): >=1k appends interleaved with
        # batched lookups, index live throughout, final state equal to
        # the flat reference.
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=8)
        engine = BatchRecognizer(col, metric="m", depth=2)
        probes = [fp for fp, _ in flat.entries()]
        for i in range(1000):
            fp = _fp(50000.0 + i, i % 4)
            col.add(fp, f"sp_{'XY'[i % 2]}")
            flat.add(fp, f"sp_{'XY'[i % 2]}")
            if i % 100 == 99:
                got = col.lookup_many(probes + [fp])
                assert got is not None
                assert got == [flat.lookup(p) for p in probes + [fp]]
                assert engine._tuple_index() is not None
        assert engine.stats.index_demotions == 0
        assert col.delta_pending == 1000
        assert col.pristine
        _assert_equal_stores(col, flat)

    def test_session_lookup_path_stays_vectorized(self, tmp_path):
        flat = _small_flat()
        col, _ = _columnar(tmp_path, flat, n_shards=4)
        col.add(_fp(91001.0, 1), "zz_Q")
        flat.add(_fp(91001.0, 1), "zz_Q")
        keys = [fp for fp, _ in flat.entries()] + [_fp(1.5)]
        assert col.lookup_many(keys) == [flat.lookup(fp) for fp in keys]
        assert not any(shard.hydrated for shard in col.shards)


class TestDurability:
    def test_log_replays_on_reload(self, tmp_path):
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=4)
        col.add(_fp(90000.0, 3), "zz_Q")
        col.add(_fp(100.0, 0), "zz_Q")       # existing key, new label
        col.register_label("keyless_K")      # order-only registration
        flat.add(_fp(90000.0, 3), "zz_Q")
        flat.add(_fp(100.0, 0), "zz_Q")
        flat.register_label("keyless_K")
        reopened = load_columnar(directory)
        assert reopened.delta_pending == 3
        _assert_equal_stores(reopened, flat)
        # load_sharded auto-detection takes the same path.
        auto = load_sharded(directory)
        _assert_equal_stores(auto, flat)

    def test_torn_final_record_is_dropped(self, tmp_path):
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        flat.add(_fp(90000.0), "zz_Q")
        with open(segment_path(directory), "a", encoding="utf-8") as fh:
            fh.write('{"op": "add", "metric": "m", "no')  # crash mid-append
        reopened = load_columnar(directory)
        assert reopened.delta_pending == 1   # the torn record is gone
        _assert_equal_stores(reopened, flat)

    def test_corrupt_mid_file_record_raises_by_name(self, tmp_path):
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        with open(segment_path(directory), "a", encoding="utf-8") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"op": "label", "label": "x_Y"}) + "\n")
        with pytest.raises(ValueError, match=SEGMENT_NAME):
            load_columnar(directory)

    def test_stale_generation_segment_is_discarded(self, tmp_path):
        # Crash window: compaction rewrote the base (generation bumped)
        # but died before removing the segment.  The records are already
        # folded — replaying them would double-count.
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        flat.add(_fp(90000.0), "zz_Q")
        segment = open(segment_path(directory), encoding="utf-8").read()
        col.compact_delta()
        assert not os.path.isfile(segment_path(directory))
        # Resurrect the pre-compaction segment (generation 0; the
        # manifest now says 1).
        with open(segment_path(directory), "w", encoding="utf-8") as fh:
            fh.write(segment)
        assert pending_records(directory, generation=1) == 0
        reopened = load_columnar(directory)
        assert reopened.delta_pending == 0
        assert not os.path.isfile(segment_path(directory))  # cleaned up
        _assert_equal_stores(reopened, flat)


class TestUnreadableSegment:
    """Absent and unreadable are different states: a missing segment is
    "nothing pending" (0), but a segment that *exists* and cannot be
    read must raise :class:`SegmentReadError` by name — silently
    reporting 0 would let a replica or a reload serve the base state
    while committed records sit unreadable on disk."""

    def test_absent_segment_reports_zero(self, tmp_path):
        flat = _small_flat()
        _, directory = _columnar(tmp_path, flat, n_shards=2)
        assert not os.path.exists(segment_path(directory))
        assert pending_records(directory, generation=0) == 0

    def test_unreadable_segment_raises_by_name(self, tmp_path):
        from repro.engine import SegmentReadError

        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        # A directory squatting on the segment path: open() fails with
        # EISDIR — an unreadable segment, not an absent one.  (chmod
        # tricks don't work under root, this does.)
        os.rename(segment_path(directory),
                  segment_path(directory) + ".bak")
        os.mkdir(segment_path(directory))
        with pytest.raises(SegmentReadError, match=SEGMENT_NAME):
            pending_records(directory, generation=0)
        with pytest.raises(SegmentReadError, match=SEGMENT_NAME):
            load_columnar(directory)
        # Restore readability: both paths recover with nothing lost.
        os.rmdir(segment_path(directory))
        os.rename(segment_path(directory) + ".bak",
                  segment_path(directory))
        assert pending_records(directory, generation=0) == 1
        reopened = load_columnar(directory)
        assert reopened.delta_pending == 1

    def test_segment_read_error_is_oserror(self):
        from repro.engine import SegmentReadError

        # Callers already handling OSError on the read path keep
        # working; ValueError-based corruption handling must NOT
        # swallow it (unreadable != corrupt).
        assert issubclass(SegmentReadError, OSError)
        assert not issubclass(SegmentReadError, ValueError)


class TestCompaction:
    def test_explicit_compaction_folds_losslessly(self, tmp_path):
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=4)
        for i in range(25):
            col.add(_fp(90000.0 + i, i % 4), "zz_Q")
            flat.add(_fp(90000.0 + i, i % 4), "zz_Q")
        assert col.compact_delta() == 25
        assert col.delta_pending == 0
        assert not os.path.isfile(segment_path(directory))
        _assert_equal_stores(col, flat)           # in-place object survives
        _assert_equal_stores(load_columnar(directory), flat)
        assert col.compact_delta() == 0           # idempotent

    def test_version_stays_monotonic_across_compaction(self, tmp_path):
        col, _ = _columnar(tmp_path, _small_flat(), n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        before = col.version
        col.compact_delta()
        assert col.version > before
        col.add(_fp(90001.0), "zz_Q")
        assert col.version > before + 1

    def test_threshold_triggers_auto_compaction(self, tmp_path):
        flat = _small_flat()
        directory = str(tmp_path / "col")
        save_columnar(ShardedDictionary.from_flat(flat, 2), directory)
        col = load_columnar(directory, delta_max_pending=10)
        for i in range(25):
            col.add(_fp(90000.0 + i), "zz_Q")
            flat.add(_fp(90000.0 + i), "zz_Q")
        # Folded at least twice; never more than the threshold pending.
        assert col.delta_pending < 10
        _assert_equal_stores(col, flat)
        _assert_equal_stores(load_columnar(directory), flat)

    def test_cli_compact_folds_pending_log(self, tmp_path):
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        flat.add(_fp(90000.0), "zz_Q")
        summary = compact_shards(directory)
        assert summary["folded_records"] == 1
        assert not os.path.isfile(segment_path(directory))
        _assert_equal_stores(load_columnar(directory), flat)
        with pytest.raises(ValueError, match="already columnar"):
            compact_shards(directory)    # clean directory: unchanged error

    def test_compact_to_out_leaves_source_untouched(self, tmp_path):
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        flat.add(_fp(90000.0), "zz_Q")
        out = str(tmp_path / "folded")
        summary = compact_shards(directory, out=out)
        assert summary["folded_records"] == 1
        assert os.path.isfile(segment_path(directory))   # source untouched
        assert not os.path.isfile(segment_path(out))
        _assert_equal_stores(load_columnar(out), flat)
        _assert_equal_stores(load_columnar(directory), flat)

    def test_save_never_drops_pending_records(self, tmp_path):
        flat = _small_flat()
        col, _ = _columnar(tmp_path, flat, n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        flat.add(_fp(90000.0), "zz_Q")
        from repro.engine import save_sharded

        col_out = str(tmp_path / "copy-col")
        save_columnar(col, col_out)
        _assert_equal_stores(load_columnar(col_out), flat)
        json_out = str(tmp_path / "copy-json")
        save_sharded(col, json_out)
        _assert_equal_stores(load_sharded(json_out), flat)


class TestExpandGuard:
    def test_expand_refuses_unfolded_delta(self, tmp_path):
        col, directory = _columnar(tmp_path, _small_flat(), n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        with pytest.raises(PendingDeltaError, match="compact"):
            expand_shards(directory)
        # Nothing was converted: still columnar, log intact.
        assert os.path.isfile(segment_path(directory))
        assert load_columnar(directory).delta_pending == 1

    def test_expand_works_after_compaction(self, tmp_path):
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        flat.add(_fp(90000.0), "zz_Q")
        col.compact_delta()
        expand_shards(directory)
        _assert_equal_stores(load_sharded(directory), flat)


class TestDemotionCounter:
    def test_direct_shard_mutation_is_counted_and_stays_correct(
        self, tmp_path
    ):
        flat = _small_flat()
        col, _ = _columnar(tmp_path, flat, n_shards=4)
        engine = BatchRecognizer(col, metric="m", depth=2)
        assert engine._tuple_index() is not None
        assert engine.stats.index_demotions == 0
        victim = next(fp for fp, _ in flat.entries())
        col.shards[0].merge(col.shards[0])  # no-op merge still bumps version
        assert not col.pristine
        engine.recognize_records([])        # forces an index rebuild
        assert engine.stats.index_demotions >= 1
        assert col.lookup(victim) == flat.lookup(victim)

    def test_demotion_counter_round_trips_through_snapshot(self):
        from repro.engine import EngineStats

        stats = EngineStats()
        stats.record_index_demotion()
        stats.record_index_demotion()
        snapshot = EngineStats.from_dict(stats.as_dict())
        assert snapshot.index_demotions == 2
        assert "demotions" in snapshot.render()

    def test_demoted_store_with_overlay_still_answers_merged(self, tmp_path):
        # Worst case: a pending overlay *and* a direct shard mutation.
        # The vectorized paths stand down, and the generic fallback must
        # still see both the shard mutation and the overlay.
        flat = _small_flat()
        col, _ = _columnar(tmp_path, flat, n_shards=4)
        overlay_key = _fp(91000.0, 2)
        col.add(overlay_key, "zz_Q")
        flat.add(overlay_key, "zz_Q")
        direct_key = next(fp for fp, _ in flat.entries())
        from repro.engine import shard_index

        col.shards[shard_index(direct_key, 4)].add(direct_key, "dd_D")
        flat.add(direct_key, "dd_D")
        engine = BatchRecognizer(col, metric="m", depth=2)
        assert col.lookup_many([overlay_key]) is None  # demoted
        from repro.engine import match_fingerprints_batch

        results, _ = match_fingerprints_batch(
            col, [[overlay_key], [direct_key]], stats=engine.stats
        )
        expected, _ = match_fingerprints_batch(
            flat, [[overlay_key], [direct_key]]
        )
        assert results == expected
        assert engine.stats.index_demotions >= 1
        index = engine._tuple_index()
        assert isinstance(index, dict)     # generic fallback
        assert index[(overlay_key.node, overlay_key.value)][0] == ["zz_Q"]


class TestCompactionCrashSafety:
    def test_fold_commits_new_base_under_generation_names(self, tmp_path):
        # The rewrite lands under generation-suffixed names and is
        # committed by one atomic manifest replace; the superseded
        # generation-0 files are removed after the commit.
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        flat.add(_fp(90000.0), "zz_Q")
        col.compact_delta()
        names = set(os.listdir(directory))
        assert "shard-00.g1.npz" in names
        assert "key-order.g1.npz" in names
        assert "shard-00.npz" not in names      # superseded base removed
        assert "key-order.npz" not in names
        _assert_equal_stores(load_columnar(directory), flat)
        # A second fold advances again and reclaims generation 1.
        col.add(_fp(90001.0), "zz_Q")
        flat.add(_fp(90001.0), "zz_Q")
        col.compact_delta()
        names = set(os.listdir(directory))
        assert "shard-00.g2.npz" in names
        assert "shard-00.g1.npz" not in names
        _assert_equal_stores(load_columnar(directory), flat)

    def test_uncommitted_rewrite_leaves_old_base_loadable(self, tmp_path):
        # Crash before the manifest commit: new-generation files exist
        # but the manifest still names the old base — the store must
        # load and replay the log exactly as if the fold never started.
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=2)
        col.add(_fp(90000.0), "zz_Q")
        flat.add(_fp(90000.0), "zz_Q")
        # Simulate the pre-commit half of a fold: write garbage where
        # the next generation's files would land.
        for name in ("shard-00.g1.npz", "shard-01.g1.npz",
                     "key-order.g1.npz"):
            with open(os.path.join(directory, name), "wb") as fh:
                fh.write(b"torn write")
        reopened = load_columnar(directory)
        assert reopened.delta_pending == 1
        _assert_equal_stores(reopened, flat)

    def test_in_place_save_of_pending_store_is_a_compaction(self, tmp_path):
        # Regression: save_columnar(store, its_own_directory) with
        # pending records used to write the merged base at the same
        # generation and leave the segment behind — the next load then
        # replayed the already-folded records (counts inflated per
        # save/reload cycle).  It must behave as a compaction instead.
        flat = _small_flat()
        col, directory = _columnar(tmp_path, flat, n_shards=2)
        key = _fp(90000.0)
        col.add(key, "zz_Q")
        col.add(key, "zz_Q")
        flat.add(key, "zz_Q")
        flat.add(key, "zz_Q")
        save_columnar(col, directory)
        assert col.delta_pending == 0          # folded, not copied
        assert not os.path.isfile(segment_path(directory))
        assert col.lookup_counts(key) == {"zz_Q": 2}
        reopened = load_columnar(directory)
        assert reopened.delta_pending == 0
        assert reopened.lookup_counts(key) == {"zz_Q": 2}  # not 3/4
        _assert_equal_stores(reopened, flat)

    def test_overlay_new_key_sees_direct_shard_mutation(self, tmp_path):
        # Corner of the degraded mode: a key first seen via the
        # delta-log, then *also* written straight onto its shard.  The
        # merged point path must report both labels once the base is
        # known-mutated.
        from repro.engine import shard_index

        flat = _small_flat()
        col, _ = _columnar(tmp_path, flat, n_shards=4)
        key = _fp(91000.0, 2)
        col.add(key, "new_N")                  # overlay-only key
        col.shards[shard_index(key, 4)].add(key, "direct_D")
        assert not col.pristine
        assert col.lookup(key) == ["direct_D", "new_N"]
        assert col.lookup_counts(key) == {"direct_D": 1, "new_N": 1}
