import numpy as np
import pytest

from repro.core.dictionary import (
    DictionaryStats,
    ExecutionFingerprintDictionary,
    app_of_label,
)
from repro.core.fingerprint import DEFAULT_INTERVAL, Fingerprint, build_fingerprints
from repro.data.dataset import ExecutionRecord
from repro.telemetry.timeseries import TimeSeries


def _fp(value, node=0, metric="nr_mapped_vmstat", interval=(60.0, 120.0)):
    return Fingerprint(metric=metric, node=node, interval=interval, value=value)


def _record(level=6000.0, n=150, n_nodes=4):
    telemetry = {
        ("nr_mapped_vmstat", node): TimeSeries(np.full(n, level))
        for node in range(n_nodes)
    }
    return ExecutionRecord(0, "ft", "X", n_nodes, float(n), telemetry)


class TestFingerprint:
    def test_paper_example_format(self):
        fp = _fp(6000.0)
        assert str(fp) == "[nr_mapped_vmstat, 0, [60:120], 6000]"

    def test_hashable_and_equal(self):
        assert _fp(6000.0) == _fp(6000.0)
        assert hash(_fp(6000.0)) == hash(_fp(6000.0))
        assert _fp(6000.0) != _fp(6100.0)

    def test_interval_part_of_identity(self):
        assert _fp(6000.0, interval=(60.0, 120.0)) != _fp(6000.0, interval=(120.0, 180.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            _fp(6000.0, node=-1)
        with pytest.raises(ValueError):
            Fingerprint("m", 0, (120.0, 60.0), 1.0)
        with pytest.raises(ValueError):
            Fingerprint("m", 0, (0.0, 1.0), float("nan"))
        with pytest.raises(ValueError):
            Fingerprint("", 0, (0.0, 1.0), 1.0)


class TestBuildFingerprints:
    def test_one_per_node(self):
        fps = build_fingerprints(_record(), "nr_mapped_vmstat", depth=2)
        assert len(fps) == 4
        assert all(fp.value == 6000.0 for fp in fps)
        assert [fp.node for fp in fps] == [0, 1, 2, 3]

    def test_rounding_applied(self):
        fps = build_fingerprints(_record(level=6032.0), "nr_mapped_vmstat", depth=2)
        assert fps[0].value == 6000.0
        fps3 = build_fingerprints(_record(level=6032.0), "nr_mapped_vmstat", depth=3)
        assert fps3[0].value == 6030.0

    def test_missing_interval_yields_none(self):
        record = _record(n=50)  # series ends before the [60:120] window
        fps = build_fingerprints(record, "nr_mapped_vmstat", depth=2)
        assert fps == [None, None, None, None]

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            build_fingerprints(_record(), "Active_meminfo", depth=2)

    def test_custom_interval(self):
        fps = build_fingerprints(
            _record(), "nr_mapped_vmstat", depth=2, interval=(10.0, 30.0)
        )
        assert fps[0].interval == (10.0, 30.0)


class TestDictionary:
    def test_add_and_lookup(self):
        efd = ExecutionFingerprintDictionary()
        efd.add(_fp(6000.0), "ft_X")
        assert efd.lookup(_fp(6000.0)) == ["ft_X"]
        assert _fp(6000.0) in efd
        assert len(efd) == 1

    def test_lookup_missing_is_empty(self):
        efd = ExecutionFingerprintDictionary()
        assert efd.lookup(_fp(1.0)) == []
        assert efd.lookup(None) == []

    def test_keys_unique_values_accumulate(self):
        efd = ExecutionFingerprintDictionary()
        for _ in range(3):
            efd.add(_fp(6000.0), "ft_X")
        efd.add(_fp(6000.0), "ft_Y")
        assert len(efd) == 1
        assert efd.lookup(_fp(6000.0)) == ["ft_X", "ft_Y"]
        assert efd.lookup_counts(_fp(6000.0)) == {"ft_X": 3, "ft_Y": 1}

    def test_label_order_is_first_seen(self):
        # Table 4's "sp X, ..., bt X" ordering: ties must resolve by
        # learning insertion order.
        efd = ExecutionFingerprintDictionary()
        efd.add(_fp(7500.0), "sp_X")
        efd.add(_fp(7500.0), "bt_X")
        efd.add(_fp(7500.0), "sp_X")
        assert efd.lookup(_fp(7500.0)) == ["sp_X", "bt_X"]

    def test_add_many_skips_none(self):
        efd = ExecutionFingerprintDictionary()
        n = efd.add_many([_fp(1.0), None, _fp(2.0)], "a_X")
        assert n == 2
        assert len(efd) == 2

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            ExecutionFingerprintDictionary().add(_fp(1.0), "")

    def test_merge_accumulates(self):
        a = ExecutionFingerprintDictionary()
        a.add(_fp(1.0), "x_X")
        b = ExecutionFingerprintDictionary()
        b.add(_fp(1.0), "x_X")
        b.add(_fp(2.0), "y_X")
        a.merge(b)
        assert len(a) == 2
        assert a.lookup_counts(_fp(1.0)) == {"x_X": 2}

    def test_stats_and_pruning_ratio(self):
        efd = ExecutionFingerprintDictionary()
        for _ in range(4):
            efd.add(_fp(6000.0), "ft_X")
        stats = efd.stats()
        assert stats.n_keys == 1
        assert stats.n_insertions == 4
        assert stats.pruning_ratio == pytest.approx(0.75)
        assert stats.n_colliding_keys == 0

    def test_collisions_detect_cross_app_keys(self):
        efd = ExecutionFingerprintDictionary()
        efd.add(_fp(7500.0), "sp_X")
        efd.add(_fp(7500.0), "bt_X")
        efd.add(_fp(6000.0), "ft_X")
        efd.add(_fp(6000.0), "ft_Y")  # same app, different input: no collision
        collisions = efd.collisions()
        assert len(collisions) == 1
        assert collisions[0][0].value == 7500.0
        assert efd.stats().n_colliding_keys == 1

    def test_app_names_first_seen_order(self):
        efd = ExecutionFingerprintDictionary()
        efd.add(_fp(1.0), "sp_X")
        efd.add(_fp(2.0), "bt_X")
        efd.add(_fp(3.0), "sp_Y")
        assert efd.app_names() == ["sp", "bt"]
        assert efd.labels() == ["sp_X", "bt_X", "sp_Y"]

    def test_metrics_and_intervals(self):
        efd = ExecutionFingerprintDictionary()
        efd.add(_fp(1.0, metric="a"), "x_X")
        efd.add(_fp(1.0, metric="b", interval=(0.0, 30.0)), "x_X")
        assert efd.metrics() == ["a", "b"]
        assert (0.0, 30.0) in efd.intervals()

    def test_fingerprints_for_app_and_label(self):
        efd = ExecutionFingerprintDictionary()
        efd.add(_fp(1.0), "miniAMR_Z")
        efd.add(_fp(2.0), "miniAMR_X")
        efd.add(_fp(3.0), "ft_X")
        assert len(efd.fingerprints_for("miniAMR")) == 2
        assert len(efd.fingerprints_for("miniAMR_Z")) == 1


class TestAppOfLabel:
    def test_strips_input_suffix(self):
        assert app_of_label("miniAMR_Z") == "miniAMR"
        assert app_of_label("ft_X") == "ft"

    def test_bare_app_name_passthrough(self):
        assert app_of_label("kripke") == "kripke"
