"""Statistical contracts of the generated signals — the properties the
paper's recognition mechanism implicitly relies on."""

import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.telemetry.metrics import default_registry
from repro.workloads.base import make_signal
from repro.workloads.nas import make_nas_app
from repro.workloads.proxies import make_proxy_app

REGISTRY = default_registry()
NR_MAPPED = REGISTRY.get("nr_mapped_vmstat")


def _interval_means(app, inp="X", metric=NR_MAPPED, n_execs=30,
                    interval=(60, 120), node=0):
    means = []
    for i in range(n_execs):
        behavior = app.execution_behavior(
            [metric], inp, 4, rng=derive_rng(1234, app.name, inp, i)
        ).behaviors[(metric.name, node)]
        signal = make_signal(behavior, rng=derive_rng(99, i))
        times = np.arange(200, dtype=float)
        values = signal(times)
        means.append(values[interval[0]:interval[1]].mean())
    return np.array(means)


class TestFingerprintStability:
    def test_repetitions_cluster_tightly(self):
        # The core EFD premise: repeated executions produce interval means
        # within a fraction of a percent of each other.
        means = _interval_means(make_nas_app("ft"))
        assert means.std() / means.mean() < 0.01

    def test_early_window_less_stable_than_papers(self):
        # The init-phase variance motivates the [60:120] choice.
        app = make_nas_app("ft")
        early = _interval_means(app, interval=(0, 60))
        late = _interval_means(app, interval=(60, 120))
        assert early.std() / early.mean() > 2 * late.std() / late.mean()

    def test_miniamr_z_wider_than_x(self):
        # miniAMR_Z's enlarged per-execution sigma (Table 4's double
        # fingerprint) must show up as a wider mean distribution.
        amr = make_proxy_app("miniAMR")
        x_means = _interval_means(amr, inp="X")
        z_means = _interval_means(amr, inp="Z")
        assert z_means.std() / z_means.mean() > 3 * x_means.std() / x_means.mean()

    def test_distinct_apps_distinct_means(self):
        ft = _interval_means(make_nas_app("ft")).mean()
        mg = _interval_means(make_nas_app("mg")).mean()
        lu = _interval_means(make_nas_app("lu")).mean()
        assert abs(ft - mg) > 50
        assert abs(mg - lu) > 500

    def test_node_asymmetry_survives_sampling(self):
        sp = make_nas_app("sp")
        node0 = _interval_means(sp, node=0)
        node3 = _interval_means(sp, node=3)
        # Table 4: node 0 near 7600-bucket, node 3 near 7100-bucket.
        assert node0.mean() - node3.mean() > 300
