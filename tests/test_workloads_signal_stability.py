"""Statistical contracts of the generated signals — the properties the
paper's recognition mechanism implicitly relies on."""

import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.telemetry.metrics import default_registry
from repro.workloads.base import make_signal
from repro.workloads.nas import make_nas_app
from repro.workloads.proxies import make_proxy_app

REGISTRY = default_registry()
NR_MAPPED = REGISTRY.get("nr_mapped_vmstat")


def _interval_means(app, inp="X", metric=NR_MAPPED, n_execs=30,
                    interval=(60, 120), node=0):
    means = []
    for i in range(n_execs):
        behavior = app.execution_behavior(
            [metric], inp, 4, rng=derive_rng(1234, app.name, inp, i)
        ).behaviors[(metric.name, node)]
        signal = make_signal(behavior, rng=derive_rng(99, i))
        times = np.arange(200, dtype=float)
        values = signal(times)
        means.append(values[interval[0]:interval[1]].mean())
    return np.array(means)


class TestFingerprintStability:
    def test_repetitions_cluster_tightly(self):
        # The core EFD premise: repeated executions produce interval means
        # within a fraction of a percent of each other.
        means = _interval_means(make_nas_app("ft"))
        assert means.std() / means.mean() < 0.01

    def test_early_window_less_stable_than_papers(self):
        # The init-phase variance motivates the [60:120] choice.
        app = make_nas_app("ft")
        early = _interval_means(app, interval=(0, 60))
        late = _interval_means(app, interval=(60, 120))
        assert early.std() / early.mean() > 2 * late.std() / late.mean()

    def test_miniamr_z_wider_than_x(self):
        # miniAMR_Z's enlarged per-execution sigma (Table 4's double
        # fingerprint) must show up as a wider mean distribution.
        amr = make_proxy_app("miniAMR")
        x_means = _interval_means(amr, inp="X")
        z_means = _interval_means(amr, inp="Z")
        assert z_means.std() / z_means.mean() > 3 * x_means.std() / x_means.mean()

    def test_distinct_apps_distinct_means(self):
        ft = _interval_means(make_nas_app("ft")).mean()
        mg = _interval_means(make_nas_app("mg")).mean()
        lu = _interval_means(make_nas_app("lu")).mean()
        assert abs(ft - mg) > 50
        assert abs(mg - lu) > 500

    def test_node_asymmetry_survives_sampling(self):
        sp = make_nas_app("sp")
        node0 = _interval_means(sp, node=0)
        node3 = _interval_means(sp, node=3)
        # Table 4: node 0 near 7600-bucket, node 3 near 7100-bucket.
        assert node0.mean() - node3.mean() > 300


class TestVersionDriftStability:
    """Signal-level contracts of versioned variants, under the full
    jitter/sampling pipeline: a version drift must be visible beyond
    per-execution noise, yet keep the variant inside its family's
    coarse bucket.  Everything is seeded through derive_rng, so the
    distributions below are exactly reproducible."""

    def _pair(self, family):
        from repro.workloads.versions import make_version_family

        return make_version_family(family, ["1.0", "2.0"])

    def test_versions_distinguishable_beyond_execution_jitter(self):
        for family in ("ft", "mg", "xmr_miner"):
            v1, v2 = self._pair(family)
            m1 = _interval_means(v1, n_execs=12)
            m2 = _interval_means(v2, n_execs=12)
            separation = abs(m1.mean() - m2.mean())
            assert separation > 2 * max(m1.std(), m2.std()), family

    def test_versions_share_a_coarse_bucket(self):
        from repro.core.rounding import round_depth

        for family in ("ft", "mg", "xmr_miner"):
            v1, v2 = self._pair(family)
            coarse1 = {round_depth(m, 2) for m in _interval_means(v1, n_execs=12)}
            coarse2 = {round_depth(m, 2) for m in _interval_means(v2, n_execs=12)}
            assert coarse1 & coarse2, family

    def test_fine_keys_mostly_disjoint_between_versions(self):
        # Depth-3 keys of the two versions may brush on one boundary
        # bucket under jitter, but never collapse onto each other.
        from repro.core.rounding import round_depth

        for family in ("ft", "mg", "xmr_miner"):
            v1, v2 = self._pair(family)
            fine1 = {round_depth(m, 3) for m in _interval_means(v1, n_execs=12)}
            fine2 = {round_depth(m, 3) for m in _interval_means(v2, n_execs=12)}
            assert fine1 != fine2, family
            assert len(fine1 & fine2) <= 1, family

    def test_variants_closer_within_family_than_across(self):
        ft1, ft2 = self._pair("ft")
        mg1, _ = self._pair("mg")
        ft1_mean = _interval_means(ft1, n_execs=12).mean()
        ft2_mean = _interval_means(ft2, n_execs=12).mean()
        mg1_mean = _interval_means(mg1, n_execs=12).mean()
        within = abs(ft1_mean - ft2_mean)
        across = abs(ft1_mean - mg1_mean)
        assert within < 0.5 * across

    def test_versioned_signals_are_deterministic(self):
        v1, _ = self._pair("ft")
        first = _interval_means(v1, n_execs=6)
        second = _interval_means(v1, n_execs=6)
        assert np.array_equal(first, second)
