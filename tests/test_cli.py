import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        args = parser.parse_args(["info"])
        assert args.command == "info"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--name", "bogus"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "562 metrics" in out
        assert "miniAMR" in out

    def test_tables_1(self, capsys):
        assert main(["tables", "--which", "1"]) == 0
        out = capsys.readouterr().out
        assert "Rounding Depth" in out

    def test_generate_fit_recognize_round_trip(self, tmp_path, capsys):
        data = str(tmp_path / "ds.npz")
        efd = str(tmp_path / "efd.json")
        assert main([
            "generate", "--out", data, "--repetitions", "2",
            "--duration-cap", "150", "--seed", "11",
        ]) == 0
        assert os.path.exists(data)

        assert main([
            "fit", "--data", data, "--out", efd, "--depth", "2",
        ]) == 0
        assert os.path.exists(efd)
        payload = json.loads(open(efd).read())
        assert payload["entries"]

        assert main([
            "recognize", "--efd", efd, "--data", data, "--depth", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "accuracy:" in out
        accuracy = float(out.strip().rsplit("= ", 1)[1])
        assert accuracy > 0.9

    def test_fit_reports_tuned_depth(self, tmp_path, capsys):
        data = str(tmp_path / "ds.npz")
        efd = str(tmp_path / "efd.json")
        main(["generate", "--out", data, "--repetitions", "3",
              "--duration-cap", "150", "--seed", "12"])
        capsys.readouterr()
        assert main(["fit", "--data", data, "--out", efd]) == 0
        out = capsys.readouterr().out
        assert "depth=" in out and "pruning_ratio=" in out

    def test_experiment_command(self, capsys):
        assert main([
            "experiment", "--name", "normal_fold",
            "--repetitions", "2", "--folds", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "normal_fold" in out and "F=" in out


class TestEngineCommands:
    def test_engine_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine"])

    def test_selftest_smoke(self, capsys):
        assert main(["engine", "selftest", "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "shard keys" in out

    def test_shard_recognize_info_round_trip(self, tmp_path, capsys):
        data = str(tmp_path / "ds.npz")
        efd = str(tmp_path / "efd.json")
        shards = str(tmp_path / "efd-shards")
        main(["generate", "--out", data, "--repetitions", "2",
              "--duration-cap", "150", "--seed", "11"])
        main(["fit", "--data", data, "--out", efd, "--depth", "2"])
        capsys.readouterr()

        assert main([
            "engine", "shard", "--efd", efd, "--out", shards, "--shards", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 shard(s)" in out
        assert os.path.isdir(shards)
        assert os.path.exists(os.path.join(shards, "manifest.json"))

        assert main(["engine", "info", "--efd-dir", shards]) == 0
        out = capsys.readouterr().out
        assert "occupancy" in out

        assert main([
            "engine", "recognize", "--efd-dir", shards, "--data", data,
            "--depth", "2", "--backend", "thread",
        ]) == 0
        out = capsys.readouterr().out
        assert "accuracy:" in out
        accuracy = float(out.strip().rsplit("= ", 1)[1])
        assert accuracy > 0.9

    def test_info_requires_a_source(self, capsys):
        assert main(["engine", "info"]) == 2

    def test_columnar_shard_compact_expand_round_trip(self, tmp_path, capsys):
        data = str(tmp_path / "ds.npz")
        efd = str(tmp_path / "efd.json")
        shards = str(tmp_path / "efd-shards")
        columnar = str(tmp_path / "efd-columnar")
        main(["generate", "--out", data, "--repetitions", "2",
              "--duration-cap", "150", "--seed", "11"])
        main(["fit", "--data", data, "--out", efd, "--depth", "2"])
        capsys.readouterr()

        # Direct columnar sharding via --format.
        assert main([
            "engine", "shard", "--efd", efd, "--out", columnar,
            "--shards", "4", "--format", "columnar",
        ]) == 0
        assert "[columnar]" in capsys.readouterr().out
        assert os.path.exists(os.path.join(columnar, "shard-00.npz"))

        assert main([
            "engine", "info", "--efd-dir", columnar, "--format", "columnar",
        ]) == 0
        out = capsys.readouterr().out
        assert "layout      : columnar" in out
        # A layout mismatch is an error, not a silent reinterpretation.
        assert main([
            "engine", "info", "--efd-dir", columnar, "--format", "json",
        ]) == 2
        capsys.readouterr()

        # Both layouts recognize identically through the CLI.
        assert main([
            "engine", "shard", "--efd", efd, "--out", shards, "--shards", "4",
        ]) == 0
        capsys.readouterr()
        assert main([
            "engine", "recognize", "--efd-dir", shards, "--data", data,
            "--depth", "2",
        ]) == 0
        json_out = capsys.readouterr().out
        assert main([
            "engine", "recognize", "--efd-dir", columnar, "--data", data,
            "--depth", "2",
        ]) == 0
        columnar_out = capsys.readouterr().out
        assert json_out.rsplit("accuracy", 1)[1] == \
            columnar_out.rsplit("accuracy", 1)[1]

        # compact in place, then expand back.
        assert main(["engine", "compact", "--dir", shards]) == 0
        assert "compacted" in capsys.readouterr().out
        assert os.path.exists(os.path.join(shards, "shard-00.npz"))
        assert not os.path.exists(os.path.join(shards, "shard-00.json"))
        assert main(["engine", "expand", "--dir", shards]) == 0
        assert "expanded" in capsys.readouterr().out
        assert os.path.exists(os.path.join(shards, "shard-00.json"))
        assert not os.path.exists(os.path.join(shards, "shard-00.npz"))

    def _columnar_dir(self, tmp_path, storage="npz", n=60):
        from repro.core.fingerprint import Fingerprint
        from repro.engine import ShardedDictionary, save_columnar

        sharded = ShardedDictionary(3)
        for i in range(n):
            sharded.add(
                Fingerprint(f"m{i % 2}", i % 4, (0.0, 60.0), float(i)),
                f"app{i % 5}_X",
            )
        directory = str(tmp_path / "efd-dir")
        save_columnar(sharded, directory, storage=storage)
        return directory

    def test_mmap_layout_round_trip(self, tmp_path, capsys):
        directory = self._columnar_dir(tmp_path, storage="mmap")
        assert os.path.exists(os.path.join(directory, "shard-00.mmap"))
        assert os.path.exists(os.path.join(directory, "shard-00.filter"))

        assert main(["engine", "info", "--efd-dir", directory]) == 0
        out = capsys.readouterr().out
        assert "layout      : columnar (mmap)" in out
        assert "filters     : per-shard Bloom" in out

        # --layout switches the storage in place ...
        assert main([
            "engine", "compact", "--dir", directory, "--layout", "npz",
        ]) == 0
        assert "[npz]" in capsys.readouterr().out
        assert main(["engine", "info", "--efd-dir", directory]) == 0
        assert "columnar (npz)" in capsys.readouterr().out
        # ... and a no-op switch is a named refusal, not a traceback.
        assert main([
            "engine", "compact", "--dir", directory, "--layout", "npz",
        ]) == 2
        assert "already columnar" in capsys.readouterr().err

    def test_shard_format_mmap(self, tmp_path, capsys):
        data = str(tmp_path / "ds.npz")
        efd = str(tmp_path / "efd.json")
        out_dir = str(tmp_path / "efd-mmap")
        main(["generate", "--out", data, "--repetitions", "2",
              "--duration-cap", "150", "--seed", "11"])
        main(["fit", "--data", data, "--out", efd, "--depth", "2"])
        capsys.readouterr()
        assert main([
            "engine", "shard", "--efd", efd, "--out", out_dir,
            "--shards", "4", "--format", "mmap",
        ]) == 0
        assert "[mmap]" in capsys.readouterr().out
        assert main([
            "engine", "recognize", "--efd-dir", out_dir, "--data", data,
            "--depth", "2",
        ]) == 0
        assert "accuracy:" in capsys.readouterr().out

    @pytest.mark.parametrize("suffix", [".filter", ".hashidx", ".npz"])
    def test_info_missing_sidecar_named_exit_2(
        self, suffix, tmp_path, capsys
    ):
        # Regression: a manifest referencing a missing filter/shard file
        # used to traceback out of `efd engine info`.
        directory = self._columnar_dir(tmp_path)
        victim = sorted(
            f for f in os.listdir(directory) if f.endswith(suffix)
        )[0]
        os.remove(os.path.join(directory, victim))
        assert main(["engine", "info", "--efd-dir", directory]) == 2
        err = capsys.readouterr().err
        assert victim in err
        assert "engine info:" in err

    def test_info_corrupt_filter_named_exit_2(self, tmp_path, capsys):
        directory = self._columnar_dir(tmp_path)
        victim = sorted(
            f for f in os.listdir(directory) if f.endswith(".filter")
        )[0]
        path = os.path.join(directory, victim)
        payload = bytearray(open(path, "rb").read())
        payload[-1] ^= 0xFF
        open(path, "wb").write(bytes(payload))
        assert main(["engine", "info", "--efd-dir", directory]) == 2
        err = capsys.readouterr().err
        assert victim in err

    def test_serve_from_columnar_directory(self, tmp_path, capsys):
        data = str(tmp_path / "ds.npz")
        efd = str(tmp_path / "efd.json")
        columnar = str(tmp_path / "efd-columnar")
        stream = str(tmp_path / "stream.jsonl")
        main(["generate", "--out", data, "--repetitions", "2",
              "--duration-cap", "150", "--seed", "11"])
        main(["fit", "--data", data, "--out", efd, "--depth", "2"])
        main(["engine", "shard", "--efd", efd, "--out", columnar,
              "--shards", "4", "--format", "columnar"])
        capsys.readouterr()
        with open(stream, "w", encoding="utf-8") as fh:
            for t in range(125):
                fh.write(json.dumps({
                    "job": "j-1", "node": 0, "t": float(t),
                    "value": 180000.0, "nodes": 1,
                }) + "\n")
        assert main([
            "serve", "--efd-dir", columnar, "--depth", "2",
            "--input", stream, "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 1 session(s)" in out


class TestServeCommand:
    def test_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_depth_required_without_demo(self, tmp_path):
        with pytest.raises(SystemExit, match="--depth"):
            main(["serve", "--efd", str(tmp_path / "x.json")])

    def test_demo_round_trip(self, tmp_path, capsys):
        stats_path = str(tmp_path / "stats.json")
        assert main([
            "serve", "--demo", "--demo-jobs", "6", "--seed", "9",
            "--batch-delay", "0.002", "--stats-out", stats_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "verdict job=" in out
        assert "served 6 session(s), 6 verdict(s)" in out
        assert "demo accuracy: 6/6" in out
        payload = json.loads(open(stats_path).read())
        assert payload["executions"] == 6
        assert payload["latencies"] == 6

        # The snapshot renders through `efd engine info --stats`.
        assert main(["engine", "info", "--stats", stats_path]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "ingest" in out

    def test_demo_summary_survives_retention_pruning(self, capsys):
        """The end-of-run summary and demo accuracy must come from the
        delivered-verdict tally, not the session table — retention may
        prune resolved sessions before the run ends."""
        assert main([
            "serve", "--demo", "--demo-jobs", "4", "--seed", "9",
            "--retention-max-done", "1",
            "--batch-delay", "0.002", "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 4 session(s), 4 verdict(s)" in out
        assert "demo accuracy: 4/4" in out
        assert "pruned=3" in out

    def test_demo_honors_depth_and_interval(self, capsys):
        """--depth/--interval must reach the demo's fitted dictionary,
        not just the serving engine, or verdicts silently miss."""
        assert main([
            "serve", "--demo", "--demo-jobs", "4", "--seed", "9",
            "--depth", "2", "--interval", "30", "90",
            "--batch-delay", "0.002", "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "demo accuracy: 4/4" in out

    def test_serve_from_jsonl_file(self, tmp_path, capsys):
        from repro.data.io import load_dataset
        from repro.serve import interleave_records

        data = str(tmp_path / "ds.npz")
        efd = str(tmp_path / "efd.json")
        stream = str(tmp_path / "samples.jsonl")
        main(["generate", "--out", data, "--repetitions", "2",
              "--duration-cap", "150", "--seed", "11"])
        main(["fit", "--data", data, "--out", efd, "--depth", "2"])
        capsys.readouterr()

        records = list(load_dataset(data))[:5]
        with open(stream, "w") as fh:
            fh.write("# synthetic live feed\n")
            for sample in interleave_records(records, "nr_mapped_vmstat"):
                fh.write(sample.to_json() + "\n")

        assert main([
            "serve", "--efd", efd, "--depth", "2", "--input", stream,
            "--batch-delay", "0.002", "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 5 session(s), 5 verdict(s)" in out
        assert "latency" in out
