import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_fscore,
)


class TestConfusionMatrix:
    def test_hand_computed(self):
        y_true = ["a", "a", "b", "b", "b"]
        y_pred = ["a", "b", "b", "b", "a"]
        cm = confusion_matrix(y_true, y_pred, labels=["a", "b"])
        assert cm.tolist() == [[1, 1], [1, 2]]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([1, 2], [1])

    def test_labels_restrict_matrix(self):
        cm = confusion_matrix(["a", "c"], ["a", "c"], labels=["a"])
        assert cm.tolist() == [[1]]

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(["a"], ["a"], labels=["a", "a"])


class TestPrecisionRecallFscore:
    def test_perfect(self):
        p, r, f, s = precision_recall_fscore(
            ["a", "b"], ["a", "b"], average="macro"
        )
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_hand_computed_per_class(self):
        y_true = ["a", "a", "b", "b", "b"]
        y_pred = ["a", "b", "b", "b", "a"]
        p, r, f, s = precision_recall_fscore(y_true, y_pred, labels=["a", "b"])
        assert p[0] == pytest.approx(0.5)       # 1 of 2 predicted-a correct
        assert r[0] == pytest.approx(0.5)       # 1 of 2 true-a found
        assert p[1] == pytest.approx(2 / 3)
        assert r[1] == pytest.approx(2 / 3)
        assert s.tolist() == [2, 3]

    def test_prediction_outside_labels_costs_recall(self):
        # The soft-input regression case: spurious 'unknown' predictions
        # must lower the true class's recall even when 'unknown' is not
        # in the label set.
        y_true = ["a", "a", "a", "a"]
        y_pred = ["a", "a", "unknown", "unknown"]
        p, r, f, s = precision_recall_fscore(y_true, y_pred, labels=["a"])
        assert p[0] == 1.0
        assert r[0] == 0.5
        assert f[0] == pytest.approx(2 / 3)

    def test_micro_equals_accuracy_single_label(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, 100)
        y_pred = rng.integers(0, 4, 100)
        _, _, micro_f, _ = precision_recall_fscore(
            y_true, y_pred, average="micro"
        )
        assert micro_f == pytest.approx(accuracy_score(y_true, y_pred))

    def test_weighted_average(self):
        y_true = ["a", "a", "a", "b"]
        y_pred = ["a", "a", "a", "a"]
        _, _, macro_f, _ = precision_recall_fscore(y_true, y_pred, average="macro")
        _, _, weighted_f, _ = precision_recall_fscore(
            y_true, y_pred, average="weighted"
        )
        assert weighted_f > macro_f  # majority class dominates weighted

    def test_zero_division_value(self):
        p, r, f, s = precision_recall_fscore(
            ["a", "a"], ["b", "b"], labels=["a", "b"], zero_division=0.0
        )
        assert p[0] == 0.0  # no 'a' predictions
        assert r[1] == 0.0  # no true 'b'

    def test_invalid_average(self):
        with pytest.raises(ValueError, match="average"):
            precision_recall_fscore(["a"], ["a"], average="harmonic")


class TestF1Score:
    def test_macro_default(self):
        assert f1_score(["a", "b"], ["a", "b"]) == 1.0

    def test_against_scipy_free_reference(self):
        # Cross-check macro F1 with a direct formula on a random problem.
        rng = np.random.default_rng(42)
        y_true = rng.integers(0, 3, 200)
        y_pred = rng.integers(0, 3, 200)
        f_lib = f1_score(y_true, y_pred, average="macro")
        fs = []
        for c in (0, 1, 2):
            tp = np.sum((y_true == c) & (y_pred == c))
            fp = np.sum((y_true != c) & (y_pred == c))
            fn = np.sum((y_true == c) & (y_pred != c))
            p = tp / (tp + fp) if tp + fp else 0.0
            r = tp / (tp + fn) if tp + fn else 0.0
            fs.append(2 * p * r / (p + r) if p + r else 0.0)
        assert f_lib == pytest.approx(np.mean(fs))


class TestAccuracyAndReport:
    def test_accuracy(self):
        assert accuracy_score([1, 2, 3], [1, 2, 4]) == pytest.approx(2 / 3)

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_report_contains_classes_and_averages(self):
        report = classification_report(["a", "b", "b"], ["a", "b", "a"])
        assert "a" in report and "b" in report
        assert "(macro avg)" in report and "(weighted avg)" in report
