import numpy as np
import pytest

from repro.telemetry.sampler import Sampler, SamplerConfig


def constant(value):
    return lambda times: np.full(len(times), value)


class TestSamplerConfig:
    def test_defaults_are_ldms_like(self):
        cfg = SamplerConfig()
        assert cfg.period == 1.0

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            SamplerConfig(period=0.0)

    def test_rejects_bad_dropout(self):
        with pytest.raises(ValueError):
            SamplerConfig(dropout_prob=1.5)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            SamplerConfig(jitter_std=-0.1)


class TestSampler:
    def test_sample_count_follows_duration(self):
        ts = Sampler(SamplerConfig(jitter_std=0, dropout_prob=0)).sample(
            constant(5.0), 120.0, rng=0
        )
        assert len(ts) == 120

    def test_constant_signal_without_noise(self):
        ts = Sampler(SamplerConfig(jitter_std=0, dropout_prob=0)).sample(
            constant(7.0), 10.0, rng=0
        )
        assert np.all(ts.values == 7.0)

    def test_dropout_marks_nan(self):
        ts = Sampler(SamplerConfig(jitter_std=0, dropout_prob=0.5)).sample(
            constant(1.0), 1000.0, rng=0
        )
        frac = np.isnan(ts.values).mean()
        assert 0.4 < frac < 0.6

    def test_reproducible_with_seed(self):
        sampler = Sampler(SamplerConfig(dropout_prob=0.1))
        a = sampler.sample(constant(1.0), 100.0, rng=5)
        b = sampler.sample(constant(1.0), 100.0, rng=5)
        assert a == b

    def test_different_seeds_differ(self):
        sampler = Sampler(SamplerConfig(dropout_prob=0.3))
        a = sampler.sample(constant(1.0), 200.0, rng=1)
        b = sampler.sample(constant(1.0), 200.0, rng=2)
        assert not np.array_equal(a.values, b.values, equal_nan=True)

    def test_jitter_shifts_observation_times(self):
        # A ramp signal observed with jitter differs from nominal sampling.
        ramp = lambda t: t.astype(float)
        no_jitter = Sampler(SamplerConfig(jitter_std=0, dropout_prob=0)).sample(
            ramp, 50.0, rng=0
        )
        jitter = Sampler(SamplerConfig(jitter_std=0.5, dropout_prob=0)).sample(
            ramp, 50.0, rng=0
        )
        assert not np.allclose(no_jitter.values, jitter.values)
        # But timestamps recorded are nominal either way.
        assert jitter.t0 == 0.0 and jitter.period == 1.0

    def test_quantize_rounds_and_clips(self):
        noisy = lambda t: np.full(len(t), -0.4)
        ts = Sampler(
            SamplerConfig(jitter_std=0, dropout_prob=0, quantize=True)
        ).sample(noisy, 10.0, rng=0)
        assert np.all(ts.values == 0.0)

    def test_rejects_bad_signal_shape(self):
        bad = lambda t: np.zeros(3)
        with pytest.raises(ValueError, match="shape"):
            Sampler(SamplerConfig(jitter_std=0)).sample(bad, 10.0, rng=0)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            Sampler().sample(constant(1.0), 0.0, rng=0)
