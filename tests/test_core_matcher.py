import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.core.matcher import MatchResult, match_fingerprints, vote


def _fp(value, node=0):
    return Fingerprint("nr_mapped_vmstat", node, (60.0, 120.0), value)


def _efd(entries):
    efd = ExecutionFingerprintDictionary()
    for fp, label in entries:
        efd.add(fp, label)
    return efd


class TestVote:
    def test_majority_wins(self):
        ranked, votes = vote([["ft_X"], ["ft_X"], ["mg_X"], ["ft_Y"]])
        assert ranked == ("ft",)
        assert votes == {"ft": 3, "mg": 1}

    def test_multiple_inputs_of_same_app_count_once_per_node(self):
        # A key listing ft_X, ft_Y, ft_Z gives ft ONE vote for that node.
        ranked, votes = vote([["ft_X", "ft_Y", "ft_Z"]])
        assert votes == {"ft": 1}

    def test_tie_returns_array_in_app_order(self):
        ranked, _ = vote(
            [["sp_X", "bt_X"], ["sp_X", "bt_X"]],
            app_order=["sp", "bt"],
        )
        assert ranked == ("sp", "bt")

    def test_tie_order_respects_dictionary_insertion(self):
        ranked, _ = vote(
            [["sp_X", "bt_X"]],
            app_order=["bt", "sp"],  # bt learned first
        )
        assert ranked == ("bt", "sp")

    def test_no_matches_empty(self):
        ranked, votes = vote([[], [], []])
        assert ranked == ()
        assert votes == {}


class TestMatchFingerprints:
    def test_recognizes_clean_execution(self):
        efd = _efd([(_fp(6000.0, n), "ft_X") for n in range(4)])
        result = match_fingerprints(efd, [_fp(6000.0, n) for n in range(4)])
        assert result.prediction == "ft"
        assert not result.is_unknown
        assert not result.is_tie
        assert result.votes == {"ft": 4}
        assert result.confidence() == 1.0

    def test_unknown_when_nothing_matches(self):
        efd = _efd([(_fp(6000.0), "ft_X")])
        result = match_fingerprints(efd, [_fp(9999.0, n) for n in range(4)])
        assert result.is_unknown
        assert result.prediction is None
        assert result.confidence() == 0.0

    def test_sp_bt_collision_returns_array(self):
        # The paper's Table 4 scenario at rounding depth 2.
        entries = []
        for node, value in enumerate([7600.0, 7500.0, 7500.0, 7100.0]):
            entries.append((_fp(value, node), "sp_X"))
            entries.append((_fp(value, node), "bt_X"))
        efd = _efd(entries)
        result = match_fingerprints(
            efd, [_fp(v, n) for n, v in enumerate([7600.0, 7500.0, 7500.0, 7100.0])]
        )
        assert result.is_tie
        assert result.ranked == ("sp", "bt")  # sp learned first
        assert result.prediction == "sp"      # evaluation takes the first

    def test_missing_fingerprints_counted_not_fatal(self):
        efd = _efd([(_fp(6000.0, n), "ft_X") for n in range(4)])
        result = match_fingerprints(efd, [_fp(6000.0, 0), None, None, None])
        assert result.prediction == "ft"
        assert result.n_missing == 3
        assert result.n_fingerprints == 1

    def test_all_missing_is_unknown(self):
        efd = _efd([(_fp(6000.0), "ft_X")])
        result = match_fingerprints(efd, [None, None])
        assert result.is_unknown
        assert result.n_missing == 2

    def test_partial_cross_match_does_not_flip_majority(self):
        # 3 nodes match ft, one node's fingerprint collides with mg.
        entries = [(_fp(6000.0, n), "ft_X") for n in range(4)]
        entries.append((_fp(6100.0, 3), "mg_X"))
        efd = _efd(entries)
        result = match_fingerprints(
            efd,
            [_fp(6000.0, 0), _fp(6000.0, 1), _fp(6000.0, 2), _fp(6100.0, 3)],
        )
        assert result.prediction == "ft"
        assert result.votes == {"ft": 3, "mg": 1}

    def test_matched_labels_detail(self):
        efd = _efd([(_fp(6000.0, 0), "ft_X"), (_fp(6000.0, 0), "ft_Y")])
        result = match_fingerprints(efd, [_fp(6000.0, 0)])
        assert result.matched_labels == {"ft_X": 1, "ft_Y": 1}

    def test_node_identity_matters(self):
        # A fingerprint trained on node 0 must not match node 1's lookup.
        efd = _efd([(_fp(6000.0, 0), "ft_X")])
        result = match_fingerprints(efd, [_fp(6000.0, 1)])
        assert result.is_unknown
