import numpy as np
import pytest

from repro.cluster.execution import ExecutionEngine
from repro.cluster.job import Job, JobStatus
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import Scheduler, SchedulerPolicy
from repro.cluster.system import AllocationError, Cluster
from repro.telemetry.sampler import SamplerConfig
from repro.workloads.nas import make_nas_app
from repro.workloads.proxies import make_proxy_app


class TestNode:
    def test_allocate_release_cycle(self):
        node = Node(0)
        assert node.is_free
        node.allocate(7)
        assert not node.is_free and node.allocated_to == 7
        node.release()
        assert node.is_free

    def test_double_allocate_rejected(self):
        node = Node(0)
        node.allocate(1)
        with pytest.raises(RuntimeError):
            node.allocate(2)

    def test_release_free_rejected(self):
        with pytest.raises(RuntimeError):
            Node(0).release()

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Node(-1)


class TestCluster:
    def test_allocation_tracks_ownership(self):
        cluster = Cluster(8)
        nodes = cluster.allocate(1, 4)
        assert len(nodes) == 4
        assert cluster.free_count == 4
        assert cluster.allocation_map() == {1: nodes}

    def test_overallocation_raises(self):
        cluster = Cluster(4)
        cluster.allocate(1, 3)
        with pytest.raises(AllocationError):
            cluster.allocate(2, 2)

    def test_release_returns_nodes(self):
        cluster = Cluster(4)
        nodes = cluster.allocate(9, 2)
        assert sorted(cluster.release(9)) == sorted(nodes)
        assert cluster.free_count == 4

    def test_release_unknown_job_raises(self):
        with pytest.raises(AllocationError):
            Cluster(2).release(5)


class TestJob:
    def test_lifecycle(self):
        job = Job(0, make_nas_app("ft"), "X", n_nodes=4)
        assert job.status is JobStatus.PENDING
        job.mark_running(10.0, [0, 1, 2, 3])
        assert job.status is JobStatus.RUNNING
        job.mark_completed(10.0 + job.duration)
        assert job.status is JobStatus.COMPLETED

    def test_node_count_must_match(self):
        job = Job(0, make_nas_app("ft"), "X", n_nodes=4)
        with pytest.raises(ValueError):
            job.mark_running(0.0, [0, 1])

    def test_cannot_complete_pending(self):
        job = Job(0, make_nas_app("ft"), "X")
        with pytest.raises(RuntimeError):
            job.mark_completed(5.0)

    def test_duration_comes_from_model(self):
        job = Job(0, make_nas_app("ft"), "Z")
        assert job.duration == make_nas_app("ft").duration("Z")


class TestExecutionEngine:
    def test_produces_full_telemetry(self):
        engine = ExecutionEngine(metrics=["nr_mapped_vmstat"])
        result = engine.run(make_nas_app("ft"), "X", n_nodes=4, rng=0,
                            duration=150.0)
        assert set(result.telemetry) == {("nr_mapped_vmstat", n) for n in range(4)}
        assert result.label == "ft_X"
        assert result.metrics() == ["nr_mapped_vmstat"]
        assert result.nodes() == [0, 1, 2, 3]

    def test_interval_mean_near_calibrated_level(self):
        engine = ExecutionEngine(
            metrics=["nr_mapped_vmstat"],
            sampler_config=SamplerConfig(dropout_prob=0.0),
        )
        result = engine.run(make_nas_app("ft"), "X", n_nodes=4, rng=1,
                            duration=150.0)
        mean = result.series("nr_mapped_vmstat", 0).interval_mean(60, 120)
        assert abs(mean - 6000.0) / 6000.0 < 0.02

    def test_reproducible(self):
        engine = ExecutionEngine(metrics=["nr_mapped_vmstat"])
        a = engine.run(make_nas_app("mg"), "Y", rng=5, duration=140.0)
        b = engine.run(make_nas_app("mg"), "Y", rng=5, duration=140.0)
        assert a.series("nr_mapped_vmstat", 1) == b.series("nr_mapped_vmstat", 1)

    def test_unknown_metric_rejected_early(self):
        with pytest.raises(KeyError):
            ExecutionEngine(metrics=["not_a_metric"])

    def test_missing_series_error_is_helpful(self):
        engine = ExecutionEngine(metrics=["nr_mapped_vmstat"])
        result = engine.run(make_nas_app("ft"), "X", rng=0, duration=130.0)
        with pytest.raises(KeyError, match="collected metrics"):
            result.series("Active_meminfo", 0)

    def test_duration_override(self):
        engine = ExecutionEngine(metrics=["nr_mapped_vmstat"])
        result = engine.run(make_nas_app("ft"), "X", rng=0, duration=130.0)
        assert result.duration == 130.0
        assert len(result.series("nr_mapped_vmstat", 0)) == 130


class TestScheduler:
    def _jobs(self, n, n_nodes=4, app="ft"):
        return [
            Job(i, make_nas_app(app), "X", n_nodes=n_nodes, submit_time=float(i))
            for i in range(n)
        ]

    def test_fcfs_serializes_when_cluster_full(self):
        cluster = Cluster(4)
        schedule = Scheduler(cluster).run(self._jobs(3))
        assert len(schedule) == 3
        starts = [s.start_time for s in schedule]
        assert starts == sorted(starts)
        # One job at a time on a 4-node cluster with 4-node jobs.
        for earlier, later in zip(schedule, schedule[1:]):
            assert later.start_time >= earlier.end_time

    def test_parallel_when_room(self):
        cluster = Cluster(8)
        schedule = Scheduler(cluster).run(self._jobs(2))
        assert schedule[0].start_time == 0.0
        assert schedule[1].start_time == 1.0  # starts at its own arrival

    def test_all_nodes_released_at_end(self):
        cluster = Cluster(8)
        Scheduler(cluster).run(self._jobs(5))
        assert cluster.free_count == 8

    def test_backfill_lets_small_job_jump(self):
        cluster = Cluster(4)
        long_app = make_proxy_app("miniAMR")   # 340 s base
        short_app = make_nas_app("cg")          # 220 s base
        jobs = [
            Job(0, long_app, "X", n_nodes=4, submit_time=0.0),
            Job(1, long_app, "X", n_nodes=4, submit_time=1.0),  # queue head
            Job(2, short_app, "X", n_nodes=2, submit_time=2.0),
        ]
        # FCFS: job 2 waits behind job 1 even though nodes are busy anyway.
        fcfs = {s.job_id: s for s in Scheduler(Cluster(4)).run(
            [Job(j.job_id, j.app, j.input_size, j.n_nodes, j.submit_time)
             for j in jobs]
        )}
        backfill = {s.job_id: s for s in Scheduler(
            cluster, SchedulerPolicy.EASY_BACKFILL
        ).run(jobs)}
        # Under EASY backfill the 2-node short job cannot start earlier than
        # FCFS would start it *only if* it would delay the head; here the
        # head needs all 4 nodes, so nothing can backfill — both equal.
        assert backfill[2].start_time <= fcfs[2].start_time

    def test_backfill_uses_idle_nodes(self):
        # 6-node cluster: a 4-node job runs, the head needs 6 nodes, a
        # 2-node short job can use the 2 idle nodes without delaying it.
        cluster = Cluster(6)
        jobs = [
            Job(0, make_proxy_app("miniAMR"), "Z", n_nodes=4, submit_time=0.0),
            Job(1, make_proxy_app("miniAMR"), "Z", n_nodes=6, submit_time=1.0),
            Job(2, make_nas_app("cg"), "X", n_nodes=2, submit_time=2.0),
        ]
        schedule = {s.job_id: s for s in Scheduler(
            cluster, SchedulerPolicy.EASY_BACKFILL
        ).run(jobs)}
        assert schedule[2].start_time == 2.0  # backfilled immediately
        assert schedule[1].start_time >= schedule[0].end_time

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError, match="requests"):
            Scheduler(Cluster(2)).run(self._jobs(1, n_nodes=4))

    def test_non_pending_job_rejected(self):
        job = Job(0, make_nas_app("ft"), "X", n_nodes=1)
        job.mark_running(0.0, [0])
        with pytest.raises(ValueError):
            Scheduler(Cluster(2)).run([job])
