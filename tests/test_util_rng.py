import numpy as np
import pytest

from repro._util.rng import derive_rng, spawn_rngs


class TestDeriveRng:
    def test_none_gives_deterministic_default(self):
        assert derive_rng(None).random() == derive_rng(None).random()

    def test_int_seed_reproducible(self):
        assert derive_rng(42).random() == derive_rng(42).random()

    def test_salt_decorrelates(self):
        a = derive_rng(42, "x").random()
        b = derive_rng(42, "y").random()
        assert a != b

    def test_same_salt_same_stream(self):
        assert derive_rng(42, "x", 1).random() == derive_rng(42, "x", 1).random()

    def test_passthrough_generator_without_salt(self):
        gen = np.random.default_rng(0)
        assert derive_rng(gen) is gen

    def test_seed_sequence_supported(self):
        seq = np.random.SeedSequence(5)
        a = derive_rng(seq).random()
        b = derive_rng(np.random.SeedSequence(5)).random()
        assert a == b


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        rngs = spawn_rngs(0, 3, "salt")
        values = {r.random() for r in rngs}
        assert len(values) == 3

    def test_reproducible(self):
        a = [r.random() for r in spawn_rngs(7, 3)]
        b = [r.random() for r in spawn_rngs(7, 3)]
        assert a == b

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_is_empty(self):
        assert spawn_rngs(0, 0) == []
