import numpy as np
import pytest

from repro.core.recognizer import EFDRecognizer
from repro.core.tuning import depth_scores, select_rounding_depth


class TestTuning:
    def test_depth_scores_cover_candidates(self, tiny_dataset):
        scores = depth_scores(list(tiny_dataset.records), "nr_mapped_vmstat",
                              candidates=(1, 2, 3), k=3)
        assert set(scores) == {1, 2, 3}
        assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_depth_one_underprunes_everything(self, small_dataset):
        # At depth 1 most applications collapse into shared buckets
        # (e.g. 6000-8999 -> three buckets); the score must be poor.
        scores = depth_scores(list(small_dataset.records), "nr_mapped_vmstat",
                              candidates=(1, 3), k=3)
        assert scores[3] > scores[1] + 0.2

    def test_selects_interior_optimum(self, small_dataset):
        best = select_rounding_depth(
            list(small_dataset.records), "nr_mapped_vmstat",
            candidates=(1, 2, 3, 4, 5), k=3,
        )
        assert best in (2, 3)  # not the extremes

    def test_tie_prefers_smaller_depth(self, tiny_dataset):
        # tiny_dataset's four apps are separable at depth 2 and 3 alike,
        # so both score 1.0 — the smaller depth must win.
        best = select_rounding_depth(
            list(tiny_dataset.records), "nr_mapped_vmstat",
            candidates=(2, 3), k=3,
        )
        assert best == 2

    def test_validates_inputs(self, tiny_dataset):
        with pytest.raises(ValueError):
            depth_scores(list(tiny_dataset.records), "nr_mapped_vmstat",
                         candidates=(), k=3)
        with pytest.raises(ValueError):
            depth_scores(list(tiny_dataset.records)[:2], "nr_mapped_vmstat", k=3)


class TestEFDRecognizer:
    def test_fit_predict_round_trip(self, tiny_dataset):
        recognizer = EFDRecognizer().fit(tiny_dataset)
        predictions = recognizer.predict(tiny_dataset)
        accuracy = np.mean(
            [p == r.app_name for p, r in zip(predictions, tiny_dataset)]
        )
        assert accuracy == 1.0

    def test_cv_selects_depth_when_none(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=None).fit(tiny_dataset)
        assert recognizer.depth_ >= 1

    def test_fixed_depth_respected(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        assert recognizer.depth_ == 2

    def test_unknown_for_unseen_app(self, tiny_dataset, small_dataset):
        # Train without kripke, test a kripke record: must be unknown
        # (kripke's 5600 bucket is far from ft/mg/lu/CoMD).
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        kripke = [r for r in small_dataset if r.label == "kripke_X"][0]
        assert recognizer.predict_one(kripke) == "unknown"

    def test_predict_single_record_returns_str(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        assert isinstance(recognizer.predict(tiny_dataset[0]), str)

    def test_predict_detail_exposes_votes(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        detail = recognizer.predict_detail(tiny_dataset[0])
        assert detail.votes.get("ft", 0) >= 3

    def test_score_against_truth(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        assert recognizer.score(tiny_dataset) == 1.0

    def test_score_against_custom_expected(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        wrong = ["nope"] * len(tiny_dataset)
        assert recognizer.score(tiny_dataset, wrong) == 0.0

    def test_partial_fit_learns_new_app(self, tiny_dataset, small_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        kripke_records = [r for r in small_dataset if r.app_name == "kripke"]
        assert recognizer.predict_one(kripke_records[0]) == "unknown"
        recognizer.partial_fit(kripke_records[0])
        # "learning new applications is as simple as adding new keys"
        assert recognizer.predict_one(kripke_records[1]) == "kripke"

    def test_unfitted_raises(self, tiny_dataset):
        with pytest.raises(RuntimeError):
            EFDRecognizer().predict(tiny_dataset[0])

    def test_stats_after_fit(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        stats = recognizer.stats()
        assert stats.n_insertions == len(tiny_dataset) * 4
        assert 0 < stats.n_keys <= stats.n_insertions

    def test_repr_mentions_state(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2)
        assert "unfitted" in repr(recognizer)
        recognizer.fit(tiny_dataset)
        assert "keys=" in repr(recognizer)

    def test_validation(self):
        with pytest.raises(ValueError):
            EFDRecognizer(metric="")
        with pytest.raises(ValueError):
            EFDRecognizer(interval=(120.0, 60.0))
        with pytest.raises(ValueError):
            EFDRecognizer(depth=0)
        with pytest.raises(ValueError):
            EFDRecognizer(tuning_folds=1)
        with pytest.raises(ValueError):
            EFDRecognizer().fit([])

    def test_interval_outside_series_all_unknown(self, tiny_dataset):
        # duration_cap of the fixture is 150 s; an interval beyond the
        # data yields no fingerprints -> everything unknown, not a crash.
        recognizer = EFDRecognizer(depth=2, interval=(500.0, 560.0)).fit(
            tiny_dataset
        )
        assert recognizer.predict_one(tiny_dataset[0]) == "unknown"
