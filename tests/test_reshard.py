"""Online resharding: order-preserving, byte-identical, verdict-neutral.

The reshard contract (ISSUE 5 acceptance): ``reshard`` changes a
directory's shard count without a relearn, moving only keys whose
``stable_hash % N != stable_hash % M``; a reshard N→M→N round-trips to
*byte-identical* files (both layouts — npz writes are deterministic);
and verdicts over a 500-execution batch are element-wise identical
before and after, across {1, 2, 4, 8} → {2, 3, 8, 16}.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint, build_fingerprints
from repro.core.recognizer import EFDRecognizer
from repro.engine import (
    BatchRecognizer,
    ShardedDictionary,
    count_moved_keys,
    is_columnar,
    load_columnar,
    load_sharded,
    reshard,
    reshard_store,
    save_columnar,
    save_sharded,
    shard_index,
)

OLD_COUNTS = (1, 2, 4, 8)
NEW_COUNTS = (2, 3, 8, 16)


def _fp(value: float, node: int = 0, metric: str = "m") -> Fingerprint:
    return Fingerprint(
        metric=metric, node=node, interval=(60.0, 120.0), value=value
    )


def _random_flat(seed: int, n: int = 200) -> ExecutionFingerprintDictionary:
    rng = random.Random(seed)
    flat = ExecutionFingerprintDictionary()
    flat.register_label("zz_Q")  # key-less label: order must survive
    for _ in range(n):
        flat.add(
            _fp(100.0 * rng.randrange(1, 60), rng.randrange(4)),
            f"{rng.choice(('ft', 'mg', 'sp', 'bt'))}_{rng.choice('XYZ')}",
        )
    return flat


def _dir_bytes(directory: str) -> dict:
    return {
        name: open(os.path.join(directory, name), "rb").read()
        for name in sorted(os.listdir(directory))
    }


def _normalized_columnar(directory: str):
    """Directory content with the crash-safety generation factored out.

    An in-place columnar rewrite always advances ``delta_generation``
    (new base files under fresh names + one atomic manifest commit — a
    crash can never half-overwrite the only copy), so byte-identity is
    asserted on what the generation does not touch: every shard
    payload, the key-order payload, and the manifest with the
    generation and the generation-suffixed file names normalized.  The
    manifest's checksums still pin the payload bytes exactly.
    """
    import json

    with open(os.path.join(directory, "manifest.json")) as fh:
        manifest = json.load(fh)
    shard_bytes = [
        open(os.path.join(directory, meta["file"]), "rb").read()
        for meta in manifest["shards"]
    ]
    key_order_bytes = open(
        os.path.join(directory, manifest["key_order_file"]["file"]), "rb"
    ).read()
    filter_bytes = [
        open(os.path.join(directory, meta["file"]), "rb").read()
        for meta in manifest.get("filters", {}).get("shards", [])
    ]
    hash_bytes = [
        open(os.path.join(directory, meta["hash_file"]), "rb").read()
        for meta in manifest.get("filters", {}).get("shards", [])
        if meta.get("hash_file") is not None
    ]
    manifest["delta_generation"] = 0
    for i, meta in enumerate(manifest["shards"]):
        meta["file"] = f"shard-{i:02d}"
    for i, meta in enumerate(manifest.get("filters", {}).get("shards", [])):
        meta["file"] = f"shard-{i:02d}.filter"
        if meta.get("hash_file") is not None:
            meta["hash_file"] = f"shard-{i:02d}.hashidx"
    manifest["key_order_file"]["file"] = "key-order"
    return manifest, shard_bytes, key_order_bytes, filter_bytes, hash_bytes


class TestReshardStore:
    @pytest.mark.parametrize("n_old", OLD_COUNTS)
    @pytest.mark.parametrize("n_new", NEW_COUNTS)
    def test_every_observable_preserved(self, n_old, n_new):
        flat = _random_flat(n_old * 100 + n_new)
        old = ShardedDictionary.from_flat(flat, n_old)
        new = reshard_store(old, n_new)
        assert new.n_shards == n_new
        assert len(new) == len(flat)
        assert new.labels() == flat.labels()
        assert new.app_names() == flat.app_names()
        assert list(new.entries()) == list(flat.entries())
        assert new.stats() == flat.stats()
        for fp, _ in flat.entries():
            assert new.lookup_counts(fp) == flat.lookup_counts(fp)

    def test_keys_land_on_their_new_hash_shard(self):
        old = ShardedDictionary.from_flat(_random_flat(5), 4)
        new = reshard_store(old, 7)
        for i, shard in enumerate(new.shards):
            for fp, _ in shard.entries():
                assert shard_index(fp, 7) == i

    def test_moved_key_count_matches_hash_plan(self):
        flat = _random_flat(9)
        old = ShardedDictionary.from_flat(flat, 4)
        expected = sum(
            1 for fp, _ in flat.entries()
            if shard_index(fp, 4) != shard_index(fp, 6)
        )
        assert count_moved_keys(old, 6) == expected
        # Same count and the unmoved keys stay put in the new layout.
        new = reshard_store(old, 6)
        stayed = sum(
            1 for fp, _ in flat.entries()
            if shard_index(fp, 4) == shard_index(fp, 6)
        )
        assert stayed + expected == len(flat)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            reshard_store(ShardedDictionary(2), 0)


class TestReshardDirectory:
    @pytest.mark.parametrize("layout", ["json", "columnar"])
    @pytest.mark.parametrize("n_old", OLD_COUNTS)
    @pytest.mark.parametrize("n_new", NEW_COUNTS)
    def test_round_trip_is_byte_identical(self, layout, n_old, n_new, tmp_path):
        flat = _random_flat(17 + n_old, n=120)
        sharded = ShardedDictionary.from_flat(flat, n_old)
        directory = str(tmp_path / "efd")
        if layout == "columnar":
            save_columnar(sharded, directory)
        else:
            save_sharded(sharded, directory)
        originals = (
            _normalized_columnar(directory)
            if layout == "columnar" else _dir_bytes(directory)
        )
        forward = reshard(directory, n_new)
        assert forward["old_shards"] == n_old
        assert forward["new_shards"] == n_new
        assert (is_columnar(directory)) == (layout == "columnar")
        backward = reshard(directory, n_old)
        assert backward["moved_keys"] == forward["moved_keys"]
        if layout == "columnar":
            # Byte-identical payloads; only the crash-safety generation
            # (and the file names it suffixes) advanced.
            assert _normalized_columnar(directory) == originals
        else:
            assert _dir_bytes(directory) == originals  # byte-identical files

    @pytest.mark.parametrize("layout", ["json", "columnar"])
    def test_orders_preserved_through_directory(self, layout, tmp_path):
        flat = _random_flat(23)
        sharded = ShardedDictionary.from_flat(flat, 4)
        directory = str(tmp_path / "efd")
        (save_columnar if layout == "columnar" else save_sharded)(
            sharded, directory
        )
        reshard(directory, 9)
        loaded = load_sharded(directory)
        assert loaded.n_shards == 9
        assert loaded.labels() == flat.labels()
        assert loaded.app_names() == flat.app_names()
        assert [fp for fp, _ in loaded.entries()] == [
            fp for fp, _ in flat.entries()
        ]

    def test_out_directory_leaves_source_untouched(self, tmp_path):
        sharded = ShardedDictionary.from_flat(_random_flat(31), 4)
        src = str(tmp_path / "src")
        save_columnar(sharded, src)
        before = _dir_bytes(src)
        dst = str(tmp_path / "dst")
        summary = reshard(src, 8, out=dst)
        assert summary["directory"] == dst
        assert _dir_bytes(src) == before
        assert load_columnar(dst).n_shards == 8

    def test_shrinking_removes_orphaned_shard_files(self, tmp_path):
        import json

        sharded = ShardedDictionary.from_flat(_random_flat(37), 8)
        directory = str(tmp_path / "efd")
        save_columnar(sharded, directory)
        reshard(directory, 2)
        with open(os.path.join(directory, "manifest.json")) as fh:
            manifest = json.load(fh)
        referenced = {meta["file"] for meta in manifest["shards"]}
        referenced.add(manifest["key_order_file"]["file"])
        assert len(manifest["shards"]) == 2
        on_disk = {
            name for name in os.listdir(directory)
            if name.endswith(".npz")
        }
        assert on_disk == referenced  # all 8 old shard files reclaimed
        assert load_columnar(directory).n_shards == 2

    def test_pending_delta_is_folded_into_the_reshard(self, tmp_path):
        flat = _random_flat(41)
        sharded = ShardedDictionary.from_flat(flat, 4)
        directory = str(tmp_path / "efd")
        save_columnar(sharded, directory)
        col = load_columnar(directory)
        col.add(_fp(987654.0, 3), "new_N")
        flat.add(_fp(987654.0, 3), "new_N")
        reshard(directory, 6)
        loaded = load_columnar(directory)
        assert loaded.delta_pending == 0     # folded, not dropped
        assert list(loaded.entries()) == list(flat.entries())


class TestVerdictEquivalence:
    """Recognition over a 500-execution batch is reshard-invariant."""

    @pytest.fixture(scope="class")
    def fitted(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        records = list(tiny_dataset)
        # Tile the dataset up to a 500-execution batch (records are
        # immutable; repetition exercises the verdict memo too).
        batch = (records * (500 // len(records) + 1))[:500]
        return recognizer, batch

    @pytest.mark.parametrize("n_old", OLD_COUNTS)
    @pytest.mark.parametrize("n_new", NEW_COUNTS)
    def test_verdicts_identical_before_and_after(
        self, fitted, n_old, n_new, tmp_path
    ):
        recognizer, batch = fitted
        sharded = ShardedDictionary.from_flat(recognizer.dictionary_, n_old)
        directory = str(tmp_path / "efd")
        save_columnar(sharded, directory)
        before = BatchRecognizer(
            load_sharded(directory), depth=2
        ).recognize_records(batch)
        reshard(directory, n_new)
        after_store = load_sharded(directory)
        assert after_store.n_shards == n_new
        engine = BatchRecognizer(after_store, depth=2)
        assert engine.recognize_records(batch) == before
        assert engine.stats.index_demotions == 0

    def test_verdicts_match_the_flat_reference_path(self, fitted, tmp_path):
        recognizer, batch = fitted
        directory = str(tmp_path / "efd")
        save_columnar(
            ShardedDictionary.from_flat(recognizer.dictionary_, 4), directory
        )
        reshard(directory, 3)
        from repro.core.matcher import match_fingerprints

        expected = [
            match_fingerprints(
                recognizer.dictionary_,
                build_fingerprints(r, "nr_mapped_vmstat", 2),
            )
            for r in batch[:50]
        ]
        got = BatchRecognizer(
            load_sharded(directory), depth=2
        ).recognize_records(batch[:50])
        assert got == expected


class TestReshardCrashSafety:
    def test_leftover_segment_after_fold_is_not_double_applied(self, tmp_path):
        # Crash window: reshard folded the pending log into the rewrite
        # but died before removing the segment.  The rewrite advanced
        # the delta generation, so the resurrected segment must be
        # recognized as stale and discarded — not replayed on top of
        # the already-folded base.
        from repro.engine.deltalog import segment_path

        flat = _random_flat(53)
        sharded = ShardedDictionary.from_flat(flat, 4)
        directory = str(tmp_path / "efd")
        save_columnar(sharded, directory)
        col = load_columnar(directory)
        col.add(_fp(987654.0, 1), "new_N")
        flat.add(_fp(987654.0, 1), "new_N")
        segment = open(segment_path(directory), encoding="utf-8").read()
        reshard(directory, 6)
        with open(segment_path(directory), "w", encoding="utf-8") as fh:
            fh.write(segment)          # resurrect the pre-reshard log
        loaded = load_columnar(directory)
        assert loaded.delta_pending == 0
        assert list(loaded.entries()) == list(flat.entries())
        for fp, _ in flat.entries():
            assert loaded.lookup_counts(fp) == flat.lookup_counts(fp)
