import json
import os

import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.core.serialization import (
    dictionary_from_json,
    dictionary_to_json,
    load_dictionary,
    save_dictionary,
)
from repro.engine import ShardedDictionary, load_sharded, save_sharded


def _fp(value, node=0):
    return Fingerprint("nr_mapped_vmstat", node, (60.0, 120.0), value)


def _sample_efd():
    efd = ExecutionFingerprintDictionary()
    efd.add(_fp(7500.0, 1), "sp_X")
    efd.add(_fp(7500.0, 1), "bt_X")
    efd.add(_fp(7500.0, 1), "sp_X")
    efd.add(_fp(6000.0, 0), "ft_X")
    return efd


class TestJsonRoundTrip:
    def test_keys_and_labels_preserved(self):
        original = _sample_efd()
        restored = dictionary_from_json(dictionary_to_json(original))
        assert len(restored) == len(original)
        assert restored.lookup(_fp(7500.0, 1)) == ["sp_X", "bt_X"]
        assert restored.lookup_counts(_fp(7500.0, 1)) == {"sp_X": 2, "bt_X": 1}

    def test_insertion_order_preserved(self):
        # Tie-break semantics depend on label order surviving the trip.
        restored = dictionary_from_json(dictionary_to_json(_sample_efd()))
        assert restored.app_names() == ["sp", "bt", "ft"]

    def test_json_is_valid_and_versioned(self):
        payload = json.loads(dictionary_to_json(_sample_efd()))
        assert payload["format_version"] == 1
        assert len(payload["entries"]) == 2

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            dictionary_from_json("{broken")
        with pytest.raises(ValueError, match="missing 'entries'"):
            dictionary_from_json("{}")

    def test_rejects_wrong_version(self):
        payload = json.loads(dictionary_to_json(_sample_efd()))
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            dictionary_from_json(json.dumps(payload))

    def test_rejects_empty_labels(self):
        payload = json.loads(dictionary_to_json(_sample_efd()))
        payload["entries"][0]["labels"] = {}
        with pytest.raises(ValueError, match="no labels"):
            dictionary_from_json(json.dumps(payload))

    def test_rejects_non_positive_counts(self):
        payload = json.loads(dictionary_to_json(_sample_efd()))
        key = next(iter(payload["entries"][0]["labels"]))
        payload["entries"][0]["labels"][key] = 0
        with pytest.raises(ValueError, match="count"):
            dictionary_from_json(json.dumps(payload))


class TestFileRoundTrip:
    def test_save_load(self, tmp_path):
        path = str(tmp_path / "efd.json")
        save_dictionary(_sample_efd(), path)
        restored = load_dictionary(path)
        assert restored.lookup(_fp(6000.0, 0)) == ["ft_X"]

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "nested" / "dir" / "efd.json")
        save_dictionary(_sample_efd(), path)
        assert load_dictionary(path).stats().n_keys == 2


def _sample_sharded(n_shards=4):
    return ShardedDictionary.from_flat(_sample_efd(), n_shards)


class TestShardedRoundTrip:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_save_load_identical_matches(self, tmp_path, n_shards):
        from repro.core.matcher import match_fingerprints

        original = _sample_sharded(n_shards)
        directory = str(tmp_path / "efd-shards")
        save_sharded(original, directory)
        restored = load_sharded(directory)
        assert restored.n_shards == n_shards
        assert len(restored) == len(original)
        assert restored.labels() == original.labels()
        assert restored.app_names() == original.app_names()
        queries = [
            [_fp(7500.0, 1), _fp(6000.0, 0)],
            [_fp(7500.0, 1), None],
            [_fp(1234.0, 2)],  # unknown key
        ]
        for fps in queries:
            assert match_fingerprints(restored, fps) == match_fingerprints(
                original, fps
            )

    def test_global_key_order_survives_round_trip(self, tmp_path):
        # Keys inserted interleaved across shards must come back in the
        # same global order (Table-4 listings / to_flat depend on it),
        # not in shard-major order.
        sharded = ShardedDictionary(4)
        for i in range(12):
            sharded.add(_fp(1000.0 * (i + 1), i % 4), f"app{i % 3}_X")
        directory = str(tmp_path / "efd-shards")
        save_sharded(sharded, directory)
        restored = load_sharded(directory)
        assert list(restored.entries()) == list(sharded.entries())
        assert list(restored.to_flat().entries()) == list(
            sharded.to_flat().entries()
        )

    def test_manifest_layout(self, tmp_path):
        directory = str(tmp_path / "efd-shards")
        save_sharded(_sample_sharded(4), directory)
        manifest = json.loads(
            open(os.path.join(directory, "manifest.json")).read()
        )
        assert manifest["format_version"] == 1
        assert manifest["n_shards"] == 4
        assert len(manifest["shards"]) == 4
        for meta in manifest["shards"]:
            assert os.path.isfile(os.path.join(directory, meta["file"]))
            assert meta["checksum"]

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest.json"):
            load_sharded(str(tmp_path / "nowhere"))

    def test_missing_shard_file_named_in_error(self, tmp_path):
        directory = str(tmp_path / "efd-shards")
        save_sharded(_sample_sharded(4), directory)
        victim = None
        for name in sorted(os.listdir(directory)):
            if name.startswith("shard-"):
                victim = name
                os.remove(os.path.join(directory, name))
                break
        with pytest.raises(FileNotFoundError, match=victim):
            load_sharded(directory)

    def test_corrupt_shard_file_named_in_error(self, tmp_path):
        directory = str(tmp_path / "efd-shards")
        save_sharded(_sample_sharded(2), directory)
        with open(os.path.join(directory, "shard-01.json"), "w") as fh:
            fh.write("{definitely not json")
        with pytest.raises(ValueError, match="shard-01.json"):
            load_sharded(directory)

    def test_truncated_shard_fails_checksum(self, tmp_path):
        directory = str(tmp_path / "efd-shards")
        save_sharded(_sample_sharded(2), directory)
        path = os.path.join(directory, "shard-00.json")
        text = open(path).read()
        with open(path, "w") as fh:
            fh.write(text[: len(text) // 2])
        with pytest.raises(ValueError, match="shard-00.json"):
            load_sharded(directory)

    def test_swapped_shard_files_detected(self, tmp_path):
        directory = str(tmp_path / "efd-shards")
        efd = ExecutionFingerprintDictionary()
        for i in range(12):  # enough keys to span several shards
            efd.add(_fp(1000.0 * (i + 1), i % 4), "ft_X")
        sharded = ShardedDictionary.from_flat(efd, 4)
        save_sharded(sharded, directory)
        # Swap two non-empty shard files and refresh the manifest
        # checksums so only key-routing validation can catch it.
        occupied = [
            i for i, n in enumerate(sharded.shard_sizes()) if n > 0
        ]
        assert len(occupied) >= 2, "sample EFD should span >= 2 shards"
        a = os.path.join(directory, f"shard-{occupied[0]:02d}.json")
        b = os.path.join(directory, f"shard-{occupied[1]:02d}.json")
        text_a, text_b = open(a).read(), open(b).read()
        open(a, "w").write(text_b)
        open(b, "w").write(text_a)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        import hashlib

        for meta in manifest["shards"]:
            content = open(os.path.join(directory, meta["file"])).read()
            meta["checksum"] = hashlib.blake2b(
                content.encode("utf-8"), digest_size=16
            ).hexdigest()
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(ValueError, match="renamed or swapped"):
            load_sharded(directory)

    def test_duplicate_key_order_entries_rejected(self, tmp_path):
        directory = str(tmp_path / "efd-shards")
        sharded = ShardedDictionary(2)
        for i in range(4):
            sharded.add(_fp(1000.0 * (i + 1), i % 4), "ft_X")
        save_sharded(sharded, directory)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        manifest["key_order"][1] = manifest["key_order"][0]  # duplicate
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(ValueError, match="twice"):
            load_sharded(directory)

    def test_wrong_version_rejected(self, tmp_path):
        directory = str(tmp_path / "efd-shards")
        save_sharded(_sample_sharded(2), directory)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        manifest["format_version"] = 99
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            load_sharded(directory)
