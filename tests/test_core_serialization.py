import json

import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.core.serialization import (
    dictionary_from_json,
    dictionary_to_json,
    load_dictionary,
    save_dictionary,
)


def _fp(value, node=0):
    return Fingerprint("nr_mapped_vmstat", node, (60.0, 120.0), value)


def _sample_efd():
    efd = ExecutionFingerprintDictionary()
    efd.add(_fp(7500.0, 1), "sp_X")
    efd.add(_fp(7500.0, 1), "bt_X")
    efd.add(_fp(7500.0, 1), "sp_X")
    efd.add(_fp(6000.0, 0), "ft_X")
    return efd


class TestJsonRoundTrip:
    def test_keys_and_labels_preserved(self):
        original = _sample_efd()
        restored = dictionary_from_json(dictionary_to_json(original))
        assert len(restored) == len(original)
        assert restored.lookup(_fp(7500.0, 1)) == ["sp_X", "bt_X"]
        assert restored.lookup_counts(_fp(7500.0, 1)) == {"sp_X": 2, "bt_X": 1}

    def test_insertion_order_preserved(self):
        # Tie-break semantics depend on label order surviving the trip.
        restored = dictionary_from_json(dictionary_to_json(_sample_efd()))
        assert restored.app_names() == ["sp", "bt", "ft"]

    def test_json_is_valid_and_versioned(self):
        payload = json.loads(dictionary_to_json(_sample_efd()))
        assert payload["format_version"] == 1
        assert len(payload["entries"]) == 2

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            dictionary_from_json("{broken")
        with pytest.raises(ValueError, match="missing 'entries'"):
            dictionary_from_json("{}")

    def test_rejects_wrong_version(self):
        payload = json.loads(dictionary_to_json(_sample_efd()))
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            dictionary_from_json(json.dumps(payload))

    def test_rejects_empty_labels(self):
        payload = json.loads(dictionary_to_json(_sample_efd()))
        payload["entries"][0]["labels"] = {}
        with pytest.raises(ValueError, match="no labels"):
            dictionary_from_json(json.dumps(payload))

    def test_rejects_non_positive_counts(self):
        payload = json.loads(dictionary_to_json(_sample_efd()))
        key = next(iter(payload["entries"][0]["labels"]))
        payload["entries"][0]["labels"][key] = 0
        with pytest.raises(ValueError, match="count"):
            dictionary_from_json(json.dumps(payload))


class TestFileRoundTrip:
    def test_save_load(self, tmp_path):
        path = str(tmp_path / "efd.json")
        save_dictionary(_sample_efd(), path)
        restored = load_dictionary(path)
        assert restored.lookup(_fp(6000.0, 0)) == ["ft_X"]

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "nested" / "dir" / "efd.json")
        save_dictionary(_sample_efd(), path)
        assert load_dictionary(path).stats().n_keys == 2
