import os

import pytest

from repro.parallel.partition import chunk_evenly, split_indices
from repro.parallel.pool import WorkerError, parallel_map


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"cannot handle {x}")
    return x * x


class TestChunkEvenly:
    def test_even_split(self):
        assert chunk_evenly(list(range(6)), 3) == [[0, 1], [2, 3], [4, 5]]

    def test_uneven_split_front_loaded(self):
        chunks = chunk_evenly(list(range(7)), 3)
        assert [len(c) for c in chunks] == [3, 2, 2]
        assert sum(chunks, []) == list(range(7))

    def test_more_chunks_than_items(self):
        chunks = chunk_evenly([1, 2], 5)
        assert chunks == [[1], [2]]

    def test_empty(self):
        assert chunk_evenly([], 3) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)


class TestSplitIndices:
    def test_covers_range(self):
        ranges = split_indices(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_zero(self):
        assert split_indices(0, 4) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_indices(-1, 2)
        with pytest.raises(ValueError):
            split_indices(5, 0)


class TestParallelMap:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_order_preserved(self, backend):
        items = list(range(20))
        out = parallel_map(_square, items, backend=backend, n_workers=2)
        assert out == [x * x for x in items]

    def test_single_item_short_circuits(self):
        assert parallel_map(_square, [3], backend="process") == [9]

    def test_empty(self):
        assert parallel_map(_square, [], backend="thread") == []

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], backend="mpi")

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], n_workers=0)

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(boom, [1, 2], backend="thread", n_workers=2)


class TestWorkerErrorPropagation:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_failing_item_index_in_message(self, backend):
        items = [0, 1, 2, 3, 4]
        with pytest.raises(WorkerError, match=r"item 3 of 5"):
            parallel_map(_fail_on_three, items, backend=backend, n_workers=2)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_original_exception_carried(self, backend):
        with pytest.raises(WorkerError) as excinfo:
            parallel_map(_fail_on_three, [3], backend=backend, n_workers=2)
        err = excinfo.value
        assert err.index == 0
        assert isinstance(err.original, ValueError)
        assert isinstance(err.__cause__, ValueError)
        assert "cannot handle 3" in str(err)

    def test_worker_error_is_runtime_error(self):
        # Callers matching the broad class (pre-existing behavior) keep
        # working: WorkerError subclasses RuntimeError.
        with pytest.raises(RuntimeError, match="cannot handle 3"):
            parallel_map(_fail_on_three, [1, 3], backend="serial")

    def test_successful_items_before_failure_not_lost_to_caller(self):
        # The error alone must identify the failing item so callers can
        # retry or skip it without re-running the whole batch.
        with pytest.raises(WorkerError) as excinfo:
            parallel_map(_fail_on_three, [1, 2, 3, 4], backend="thread",
                         n_workers=2)
        assert excinfo.value.index == 2
