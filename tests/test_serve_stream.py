"""Wire-format tests: JSONL samples and live-stream replay."""

from __future__ import annotations

import math

import pytest

from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.serve import (
    Sample,
    interleave_records,
    parse_sample,
    read_samples,
    record_samples,
)

METRIC = "nr_mapped_vmstat"


def _key(sample: Sample):
    """Comparable identity that treats NaN values as equal."""
    value = "nan" if math.isnan(sample.value) else sample.value
    return (sample.job, sample.node, sample.time, value, sample.n_nodes)


@pytest.fixture(scope="module")
def records():
    config = DatasetConfig(
        metrics=(METRIC,), repetitions=1, seed=5, duration_cap=150.0,
        apps=("ft", "mg"),
    )
    return list(TaxonomistDatasetGenerator(config).generate())


class TestSampleCodec:
    def test_round_trip(self):
        sample = Sample(job="j-1", node=2, time=61.5, value=1234.0, n_nodes=4)
        assert parse_sample(sample.to_json()) == sample

    def test_round_trip_without_nodes(self):
        sample = Sample(job="j-1", node=0, time=0.0, value=-1.5)
        assert parse_sample(sample.to_json()) == sample

    def test_nan_value_encodes_as_null(self):
        sample = Sample(job="j", node=0, time=1.0, value=float("nan"))
        line = sample.to_json()
        assert "null" in line
        parsed = parse_sample(line)
        assert math.isnan(parsed.value)

    def test_invalid_json_names_line(self):
        with pytest.raises(ValueError, match="line 7"):
            parse_sample("{nope", lineno=7)

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="expected a JSON object"):
            parse_sample("[1, 2]")

    @pytest.mark.parametrize("field", ["job", "node", "t", "value"])
    def test_missing_field_named(self, field):
        obj = {"job": "j", "node": 0, "t": 1.0, "value": 2.0}
        del obj[field]
        import json

        with pytest.raises(ValueError, match=field):
            parse_sample(json.dumps(obj))

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError, match="node"):
            parse_sample('{"job": "j", "node": -1, "t": 1.0, "value": 2.0}')

    def test_empty_job_rejected(self):
        with pytest.raises(ValueError, match="job"):
            parse_sample('{"job": "", "node": 0, "t": 1.0, "value": 2.0}')

    def test_bad_nodes_rejected(self):
        with pytest.raises(ValueError, match="nodes"):
            parse_sample(
                '{"job": "j", "node": 0, "t": 1.0, "value": 2.0, "nodes": 0}'
            )


class TestReadSamples:
    def test_skips_blanks_and_comments(self):
        lines = [
            "# header comment",
            "",
            '{"job": "a", "node": 0, "t": 1.0, "value": 2.0}',
            "   ",
            '{"job": "b", "node": 1, "t": 2.0, "value": 3.0}',
        ]
        out = list(read_samples(lines))
        assert [s.job for s in out] == ["a", "b"]

    def test_error_carries_line_number(self):
        lines = ['{"job": "a", "node": 0, "t": 1.0, "value": 2.0}', "broken"]
        with pytest.raises(ValueError, match="line 2"):
            list(read_samples(lines))


class TestReplay:
    def test_record_samples_time_ordered_and_complete(self, records):
        record = records[0]
        samples = list(record_samples(record, METRIC, "j-0"))
        expected = sum(
            len(record.series(METRIC, node).values)
            for node in range(record.n_nodes)
        )
        assert len(samples) == expected
        times = [(s.time, s.node) for s in samples]
        assert times == sorted(times)
        assert all(s.job == "j-0" for s in samples)
        assert all(s.n_nodes == record.n_nodes for s in samples)

    def test_interleave_round_robin(self, records):
        two = records[:2]
        stream = list(interleave_records(two, METRIC, job_ids=["a", "b"]))
        # Per-job subsequences must equal the job's own stream order.
        for job, record in zip(["a", "b"], two):
            own = [_key(s) for s in stream if s.job == job]
            assert own == [_key(s) for s in record_samples(record, METRIC, job)]
        # Round-robin: the first two samples come from different jobs.
        assert {stream[0].job, stream[1].job} == {"a", "b"}

    def test_interleave_default_job_ids(self, records):
        stream = interleave_records(records[:2], METRIC)
        jobs = {s.job for s in stream}
        assert jobs == {"job-0000", "job-0001"}

    def test_interleave_job_id_mismatch(self, records):
        with pytest.raises(ValueError, match="job ids"):
            list(interleave_records(records[:2], METRIC, job_ids=["only-one"]))
