"""Crash/fault injection for the columnar write paths.

Every base rewrite (delta-log fold, storage conversion, reshard —
each of which also rebuilds the per-shard filters) follows the same
protocol: write every new data file under generation-suffixed names,
then commit with one atomic ``os.replace`` of the manifest, then clean
up superseded files.  The invariant this suite enforces at **every**
interruption point: reloading the directory either yields exactly the
expected merged dictionary (old base plus replayed delta-log before
the commit; new base with the stale-generation segment discarded after
it) or raises a named error — never a mixed or silently truncated
state.

:class:`FaultInjector` is the reusable helper: it seams into the
engine's file-commit events (each data-file write, the manifest
replace, each cleanup removal) and can kill the operation before the
Nth event, tear the Nth file mid-write, or enforce an ENOSPC byte
budget like a nearly-full disk.  Post-commit media damage (truncated
or bit-flipped mmap segments) is injected directly on the files.

:class:`FrameProxy` extends the same idea to the wire: a frame-aware
TCP proxy that drops, tears, or duplicates replication frames between
a leader and a follower.  ``tests/test_replicate.py`` sweeps it over a
live leader→replica link.
"""

from __future__ import annotations

import builtins
import errno
import os
import shutil

import pytest

import repro.engine.columnar as columnar_mod
import repro.engine.mmapstore as mmapstore_mod
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.engine import (
    ShardedDictionary,
    compact_shards,
    load_columnar,
    reshard,
    save_columnar,
)


class InjectedFault(RuntimeError):
    """The simulated crash — deliberately not an OSError subclass so a
    swallowed-too-broadly except clause in the code under test would
    show up as a missed injection, not a silent pass."""


class FaultInjector:
    """Crashes the columnar write path at a chosen commit event.

    Events, in operation order: one per data file opened for writing
    (shards, filters, key-order, manifest temp), one for the atomic
    ``os.replace`` commit, one per post-commit ``os.remove`` cleanup.

    Modes:

    - ``fail_after=N`` — raise :class:`InjectedFault` *before* event N
      executes (the file is never created / the commit never happens).
    - ``torn=True`` with ``fail_after=N`` — event N's file is created
      and half its first write lands before the crash (a torn file).
    - ``byte_budget=B`` — writes succeed until B bytes have landed,
      then fail with ``OSError(ENOSPC)`` mid-write, like a filling
      disk.  Metadata operations (replace/remove) stay free.

    With no mode set it only counts, so a dry run measures how many
    interruption points an operation has.
    """

    _PATCH_MODULES = (columnar_mod, mmapstore_mod)

    def __init__(self, fail_after=None, torn=False, byte_budget=None):
        self.fail_after = fail_after
        self.torn = torn
        self.byte_budget = byte_budget
        self.events = 0
        self._written = 0
        self._real_open = builtins.open
        self._real_replace = os.replace
        self._real_remove = os.remove

    def install(self, mp: pytest.MonkeyPatch) -> "FaultInjector":
        for mod in self._PATCH_MODULES:
            mp.setattr(mod, "open", self._open, raising=False)
        mp.setattr(os, "replace", self._replace)
        mp.setattr(os, "remove", self._remove)
        return self

    def _fatal(self) -> bool:
        fatal = (
            self.fail_after is not None and self.events == self.fail_after
        )
        self.events += 1
        return fatal

    def _open(self, path, mode="r", *args, **kwargs):
        if "w" not in str(mode):
            return self._real_open(path, mode, *args, **kwargs)
        if self._fatal():
            if self.torn:
                return _TornFile(self._real_open(path, mode, *args, **kwargs))
            raise InjectedFault(f"crash before writing {path!r}")
        if self.byte_budget is not None:
            return _BudgetFile(self, self._real_open(path, mode, *args, **kwargs))
        return self._real_open(path, mode, *args, **kwargs)

    def _replace(self, src, dst, **kwargs):
        if self._fatal():
            raise InjectedFault(f"crash before committing {dst!r}")
        return self._real_replace(src, dst, **kwargs)

    def _remove(self, path, **kwargs):
        if self._fatal():
            raise InjectedFault(f"crash before removing {path!r}")
        return self._real_remove(path, **kwargs)

    def charge(self, n: int) -> int:
        """ENOSPC accounting: bytes of an attempted write that land."""
        if self.byte_budget is None:
            return n
        allowed = min(n, max(0, self.byte_budget - self._written))
        self._written += allowed
        return allowed


class _TornFile:
    """File proxy whose first write lands only halfway, then crashes."""

    def __init__(self, fh):
        self._fh = fh

    def write(self, data):
        self._fh.write(data[: max(1, len(data) // 2)])
        self._fh.flush()
        self._fh.close()
        raise InjectedFault(f"torn write to {self._fh.name!r}")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        if not self._fh.closed:
            self._fh.close()
        return False


class FrameProxy:
    """Frame-aware TCP proxy injecting replication socket faults.

    Sits between a :class:`~repro.engine.replicate.ReplicationFollower`
    and its leader.  The follower→leader direction is forwarded
    untouched; on the leader→follower direction the proxy decodes the
    u32-length frame stream and can, counting frames across the
    proxy's whole lifetime (reconnections included):

    - ``drop_after=N`` — forward N frames, then cut the connection
      between frames (a clean mid-stream disconnect).
    - ``tear_at=N`` — forward only the first half of frame N's bytes,
      then cut (a torn frame: the follower dies mid-``readexactly``;
      also what a leader killed mid-send looks like).
    - ``duplicate_at=N`` — deliver frame N twice back to back.
    - ``stall_at=N`` — swallow frame N and hold the connection open
      without ever delivering another byte (a black-hole: the reader
      sees no EOF, only silence — the fault only a deadline catches).

    Each fault is armed once: after it fires (``.fired``), every later
    connection through the proxy is a clean passthrough, so the
    follower's reconnect loop can be asserted to converge.
    :class:`~repro.engine.remote.RemoteShardBackend` opens a fresh
    connection per request, so the same proxy also fault-injects the
    remote probe protocol — ``tests/test_faultinject.py`` sweeps it
    over a live shard-server topology in ``TestRemoteFaultSweep``.
    """

    def __init__(self, host: str, port: int, drop_after=None, tear_at=None,
                 duplicate_at=None, stall_at=None):
        self.upstream = (host, port)
        self.drop_after = drop_after
        self.tear_at = tear_at
        self.duplicate_at = duplicate_at
        self.stall_at = stall_at
        self.fired = False
        self.frames = 0
        self.port = None
        self._server = None
        self._tasks = set()

    async def __aenter__(self):
        import asyncio

        self._server = await asyncio.start_server(
            self._handle, host="127.0.0.1", port=0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        import asyncio

        self._server.close()
        await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)

    async def _handle(self, reader, writer):
        import asyncio

        try:
            up_reader, up_writer = await asyncio.open_connection(*self.upstream)
        except OSError:
            writer.close()
            return
        pumps = (
            asyncio.ensure_future(self._pump_raw(reader, up_writer)),
            asyncio.ensure_future(self._pump_frames(up_reader, writer)),
        )
        self._tasks.update(pumps)
        done, pending = await asyncio.wait(
            pumps, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        await asyncio.gather(*pumps, return_exceptions=True)
        for w in (writer, up_writer):
            w.close()
        self._tasks.difference_update(pumps)

    async def _pump_raw(self, reader, writer):
        import asyncio

        try:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass

    async def _pump_frames(self, reader, writer):
        import asyncio
        import struct

        try:
            while True:
                header = await reader.readexactly(4)
                (length,) = struct.unpack(">I", header)
                payload = await reader.readexactly(length)
                index = self.frames
                self.frames += 1
                frame = header + payload
                if not self.fired and self.drop_after is not None \
                        and index >= self.drop_after:
                    self.fired = True
                    break
                if not self.fired and self.tear_at == index:
                    self.fired = True
                    writer.write(frame[: max(1, len(frame) // 2)])
                    await writer.drain()
                    break
                if not self.fired and self.stall_at == index:
                    self.fired = True
                    # Black-hole: never deliver, never close.  The pump
                    # parks until the client gives up and closes its
                    # side (the raw pump's EOF cancels us).
                    await asyncio.Event().wait()
                if not self.fired and self.duplicate_at == index:
                    self.fired = True
                    writer.write(frame)
                writer.write(frame)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                asyncio.CancelledError):
            pass


class _BudgetFile:
    """File proxy enforcing the injector's global byte budget."""

    def __init__(self, injector, fh):
        self._injector = injector
        self._fh = fh

    def write(self, data):
        allowed = self._injector.charge(len(data))
        self._fh.write(data[:allowed])
        if allowed < len(data):
            self._fh.flush()
            self._fh.close()
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        return len(data)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        if not self._fh.closed:
            self._fh.close()
        return False


# ---------------------------------------------------------------------------
# The operations under test, each returning (directory, expected flat EFD).


def _fp(i: int) -> Fingerprint:
    return Fingerprint(
        metric=f"m{i % 2}",
        node=i % 4,
        interval=(0.0, 60.0) if i % 3 else (60.0, 120.0),
        value=float(i) * 50.0,
    )


def _seed_directory(tmp_path, storage: str, n_base: int = 40,
                    n_delta: int = 6):
    """A columnar directory with a pending delta-log, plus the expected
    merged (base ∪ overlay) reference dictionary."""
    expected = ExecutionFingerprintDictionary()
    sharded = ShardedDictionary(2)
    for i in range(n_base):
        sharded.add(_fp(i), f"app{i % 5}_X")
        expected.add(_fp(i), f"app{i % 5}_X")
    directory = str(tmp_path / "seed")
    save_columnar(sharded, directory, storage=storage)
    store = load_columnar(directory)
    for i in range(10_000, 10_000 + n_delta):
        store.add(_fp(i), f"late{i % 3}_Y")
        expected.add(_fp(i), f"late{i % 3}_Y")
    return directory, expected


def _assert_state(directory, expected):
    """The crash invariant: a reload serves exactly the merged state."""
    store = load_columnar(directory)
    assert list(store.entries()) == list(expected.entries())
    assert store.labels() == expected.labels()
    for fp, _ in expected.entries():
        assert store.lookup_counts(fp) == expected.lookup_counts(fp)
    # And the store still answers batches (filters + overlay intact).
    keys = [fp for fp, _ in expected.entries()]
    misses = [_fp(i) for i in range(90_000, 90_020)]
    assert store.lookup_many(keys + misses) == [
        expected.lookup(fp) for fp in keys
    ] + [[] for _ in misses]


OPERATIONS = {
    "fold-npz": ("npz", lambda d: compact_shards(d)),
    "fold-mmap": ("mmap", lambda d: compact_shards(d)),
    "convert-to-mmap": ("npz", lambda d: compact_shards(d, layout="mmap")),
    "reshard-mmap": ("mmap", lambda d: reshard(d, 3)),
}


def _copy(directory, tmp_path, tag):
    dst = str(tmp_path / f"run-{tag}")
    shutil.copytree(directory, dst)
    return dst


class TestCrashPointSweep:
    """Kill (and tear) the operation at every commit event in turn."""

    @pytest.mark.parametrize("name", sorted(OPERATIONS))
    def test_every_interruption_point(self, name, tmp_path):
        storage, op = OPERATIONS[name]
        directory, expected = _seed_directory(tmp_path, storage)
        # Dry run on a copy to count this operation's commit events.
        with pytest.MonkeyPatch.context() as mp:
            counter = FaultInjector().install(mp)
            op(_copy(directory, tmp_path, "dry"))
        total = counter.events
        assert total >= 5, f"{name}: expected a multi-event write path"
        for n in range(total):
            run_dir = _copy(directory, tmp_path, f"kill{n}")
            with pytest.MonkeyPatch.context() as mp:
                FaultInjector(fail_after=n).install(mp)
                with pytest.raises(InjectedFault):
                    op(run_dir)
            _assert_state(run_dir, expected)

    @pytest.mark.parametrize("name", sorted(OPERATIONS))
    def test_torn_file_at_every_write(self, name, tmp_path):
        storage, op = OPERATIONS[name]
        directory, expected = _seed_directory(tmp_path, storage)
        with pytest.MonkeyPatch.context() as mp:
            counter = FaultInjector().install(mp)
            op(_copy(directory, tmp_path, "dry"))
        for n in range(counter.events):
            run_dir = _copy(directory, tmp_path, f"torn{n}")
            with pytest.MonkeyPatch.context() as mp:
                FaultInjector(fail_after=n, torn=True).install(mp)
                with pytest.raises(InjectedFault):
                    op(run_dir)
            _assert_state(run_dir, expected)

    @pytest.mark.parametrize("name", sorted(OPERATIONS))
    def test_interrupted_then_retried_succeeds(self, name, tmp_path):
        # A crashed rewrite must be recoverable by simply re-running it.
        storage, op = OPERATIONS[name]
        directory, expected = _seed_directory(tmp_path, storage)
        run_dir = _copy(directory, tmp_path, "retry")
        with pytest.MonkeyPatch.context() as mp:
            FaultInjector(fail_after=2).install(mp)
            with pytest.raises(InjectedFault):
                op(run_dir)
        op(run_dir)  # no injector: the retry completes
        _assert_state(run_dir, expected)
        assert load_columnar(run_dir).delta_pending == 0


class TestDiskFull:
    @pytest.mark.parametrize("name", sorted(OPERATIONS))
    @pytest.mark.parametrize("budget", (0, 200, 5_000))
    def test_enospc_mid_rewrite(self, name, budget, tmp_path):
        storage, op = OPERATIONS[name]
        directory, expected = _seed_directory(tmp_path, storage)
        run_dir = _copy(directory, tmp_path, f"enospc{budget}")
        with pytest.MonkeyPatch.context() as mp:
            FaultInjector(byte_budget=budget).install(mp)
            with pytest.raises(OSError) as exc_info:
                op(run_dir)
            assert exc_info.value.errno == errno.ENOSPC
        _assert_state(run_dir, expected)


class TestRemoteFaultSweep:
    """The distributed fan-out gate: frame faults, refused connections,
    and a host killed under traffic, over a live 3-host topology.

    :class:`FrameProxy` sits in front of one shard host and injects one
    wire fault (dropped reply, torn frame, duplicate frame, black-hole
    stall); the resilience layer of
    :class:`~repro.engine.remote.RemoteShardBackend` must absorb it.
    The invariant, mirroring the crash/wire invariants above: a
    *recovered* batch is element-wise equal to the flat store, a
    *degraded* batch marks exactly the unreachable shard's keys (and
    nothing else), and the ``remote_*`` counters reconcile with what
    the sweep actually did — never a silently wrong verdict.
    """

    N_SHARDS = 3

    FRAME_FAULTS = {
        "drop": {"drop_after": 0},
        "torn": {"tear_at": 0},
        "duplicate": {"duplicate_at": 0},
        "stall": {"stall_at": 0},
    }

    def _topology(self, n_keys: int = 60):
        """Flat reference + one single-shard server thread per shard,
        each host holding its own store copy (real fleets do not share
        heap)."""
        from repro.engine.remote import ShardServerThread

        flat = ExecutionFingerprintDictionary()
        stores = [ShardedDictionary(self.N_SHARDS)
                  for _ in range(self.N_SHARDS)]
        for i in range(n_keys):
            label = f"app{i % 5}_X"
            flat.add(_fp(i), label)
            for store in stores:
                store.add(_fp(i), label)
        threads = [
            ShardServerThread(stores[k], n_shards=self.N_SHARDS,
                              shards=[k]).start()
            for k in range(self.N_SHARDS)
        ]
        return flat, stores, threads

    def _client(self, specs, **kwargs):
        import random

        from repro.engine.remote import RemoteShardBackend

        kwargs.setdefault("n_shards", self.N_SHARDS)
        kwargs.setdefault("rng", random.Random(0))
        kwargs.setdefault("sync_tables", False)
        kwargs.setdefault("backoff_base", 0.01)
        kwargs.setdefault("backoff_cap", 0.05)
        return RemoteShardBackend(specs, **kwargs)

    @pytest.mark.parametrize("mode", sorted(FRAME_FAULTS))
    def test_frame_fault_recovers_to_exact_answers(self, mode):
        import asyncio

        flat, _, threads = self._topology()
        try:
            host, port = threads[1].endpoint.rsplit(":", 1)
            probes = [_fp(i) for i in range(80)]  # 60 hits + 20 misses

            async def sweep():
                async with FrameProxy(
                    host, int(port), **self.FRAME_FAULTS[mode]
                ) as proxy:
                    specs = [
                        f"0@{threads[0].endpoint}",
                        f"1@127.0.0.1:{proxy.port}",
                        f"2@{threads[2].endpoint}",
                    ]

                    def run():
                        # Mirrors off: the background filter fetch
                        # would race the probe fan-out for the proxy's
                        # frame-0-armed fault, making the retry
                        # counters nondeterministic.  Mirror recovery
                        # is covered by the killed-host test below.
                        remote = self._client(
                            specs, deadline=10.0, try_timeout=0.5, retries=3,
                            filter_mirrors=False,
                        )
                        verdicts = remote.probe_many(probes)
                        remote.close()
                        return remote, verdicts

                    loop = asyncio.get_running_loop()
                    remote, verdicts = await loop.run_in_executor(None, run)
                    return remote, verdicts, proxy.fired

            remote, verdicts, fired = asyncio.run(sweep())
            assert fired, f"{mode}: the armed fault never fired"
            # Recovered batch: element-wise equal to the flat store.
            assert [v.labels for v in verdicts] == [
                flat.lookup(p) for p in probes
            ]
            assert not any(v.degraded for v in verdicts)
            assert remote.last_degraded == {}
            # Counters reconcile with what the sweep did.
            stats = remote.engine_stats
            assert stats.remote_degraded == 0
            assert stats.remote_hedges == 0  # one host per shard: no replica
            assert stats.remote_calls == self.N_SHARDS + stats.remote_retries
            if mode == "duplicate":
                # On a pooled pipelined connection the duplicated reply
                # shows up where the next reply (or the hello ack) was
                # expected: a request-id desync, retried on a fresh
                # socket rather than trusted.
                assert stats.remote_retries >= 1
            elif mode == "stall":
                assert stats.remote_timeouts >= 1
                assert stats.remote_retries >= 1
            else:  # drop / torn: a transport error, then a clean retry
                assert stats.remote_errors >= 1
                assert stats.remote_retries >= 1
        finally:
            for thread in threads:
                thread.stop()

    def test_refused_connection_fails_over_through_the_breaker(self):
        import socket

        flat, _, threads = self._topology()
        # A port that refuses: bind, learn the number, close.
        probe_sock = socket.socket()
        probe_sock.bind(("127.0.0.1", 0))
        dead_port = probe_sock.getsockname()[1]
        probe_sock.close()
        try:
            specs = [
                f"1@127.0.0.1:{dead_port}",  # shard 1's primary: refused
                f"0@{threads[0].endpoint}",
                f"1@{threads[1].endpoint}",  # shard 1's live replica
                f"2@{threads[2].endpoint}",
            ]
            remote = self._client(
                specs, deadline=10.0, try_timeout=0.5, retries=2,
            )
            probes = [_fp(i) for i in range(80)]
            verdicts = remote.probe_many(probes)
            assert [v.labels for v in verdicts] == [
                flat.lookup(p) for p in probes
            ]
            assert not any(v.degraded for v in verdicts)
            stats = remote.engine_stats
            assert stats.remote_errors >= 1  # the refusal
            # Failover happens *within* the attempt — the walk reaches
            # the live replica without burning the retry budget, even
            # with the default breaker threshold (3 failures) untripped.
            assert stats.remote_retries == 0
            assert stats.remote_breaker_opens == 0
            assert stats.remote_degraded == 0
            # Two more batches: one refusal each trips the breaker at
            # the default threshold of 3 consecutive failures.
            for _ in range(2):
                assert remote.lookup_many(probes) == [
                    flat.lookup(p) for p in probes
                ]
            assert stats.remote_breaker_opens >= 1
            # The next batch goes straight to the replica: the open
            # breaker keeps the dead primary out of the admission list.
            errors_before = stats.remote_errors
            assert remote.lookup_many(probes) == [
                flat.lookup(p) for p in probes
            ]
            assert stats.remote_errors == errors_before
            assert stats.remote_degraded == 0
            remote.close()
        finally:
            for thread in threads:
                thread.stop()

    def test_host_killed_under_traffic_degrades_exactly_its_shard(
        self, tmp_path
    ):
        import re
        import subprocess
        import sys

        from repro.engine import save_columnar
        from repro.engine.sharded import shard_index

        flat, stores, threads = self._topology()
        threads[1].stop()  # shard 1 moves to a killable subprocess
        directory = str(tmp_path / "host1")
        save_columnar(stores[1], directory, storage="npz")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), os.pardir, "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "shardserve",
             "--dir", directory, "--shards", "1", "--n-shards", "3",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            m = re.search(r"tcp://([0-9.]+):(\d+)", proc.stdout.readline())
            assert m, "shardserve never reported its endpoint"
            specs = [
                f"0@{threads[0].endpoint}",
                f"1@{m.group(1)}:{m.group(2)}",
                f"2@{threads[2].endpoint}",
            ]
            remote = self._client(
                specs, deadline=2.0, try_timeout=0.4, retries=1,
            )
            probes = [_fp(i) for i in range(80)]
            # Healthy batch across all three hosts first.
            assert remote.lookup_many(probes) == [
                flat.lookup(p) for p in probes
            ]
            assert remote.last_degraded == {}
            assert remote.warm_filter_mirrors()

            proc.kill()  # SIGKILL: no goodbye frame, just dead sockets
            proc.wait(timeout=30)

            verdicts = remote.probe_many(probes)
            dead = {p for p in probes if shard_index(p, self.N_SHARDS) == 1}
            dead_stored = {p for p in dead if flat.lookup(p)}
            marked = {p for p, v in zip(probes, verdicts) if v.degraded}
            # Keys the dead shard actually stored must cross the wire
            # (Bloom filters have no false negatives) and so degrade;
            # dead-shard *misses* resolve locally from the warmed
            # mirrors and stay exact — modulo the odd false positive,
            # which degrades harmlessly.
            assert dead_stored <= marked <= dead
            assert set(remote.last_degraded) == marked
            for probe, verdict in zip(probes, verdicts):
                if verdict.degraded:
                    assert verdict.labels == [] and verdict.reason
                else:
                    assert verdict.labels == flat.lookup(probe)
            stats = remote.engine_stats
            assert stats.remote_degraded == len(marked)
            assert stats.filter_mirror_hits >= len(dead) - len(marked)
            assert stats.remote_errors + stats.remote_timeouts >= 1
            assert stats.remote_hedges == (
                stats.remote_hedges_won + stats.remote_hedges_lost
            )
            remote.close()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate(timeout=30)
            for thread in threads:
                thread.stop()


class TestPostCommitMediaDamage:
    """Damage that happens *after* a clean commit — a truncated or
    bit-flipped mmap segment must raise by name when its columns are
    finally read, never decode garbage."""

    def _committed(self, tmp_path):
        directory, expected = _seed_directory(tmp_path, "mmap")
        compact_shards(directory)  # fold cleanly: single-generation base
        return directory, expected

    def _damage_one(self, directory, mutate):
        victim = sorted(
            f for f in os.listdir(directory) if f.endswith(".mmap")
        )[0]
        path = os.path.join(directory, victim)
        data = bytearray(open(path, "rb").read())
        open(path, "wb").write(bytes(mutate(data)))
        return victim

    def test_truncated_segment_raises_by_name(self, tmp_path):
        directory, _ = self._committed(tmp_path)
        victim = self._damage_one(directory, lambda d: d[: len(d) - 64])
        store = load_columnar(directory)  # lazy: load itself is clean
        with pytest.raises(ValueError, match="truncated"):
            store.warm_index()
        with pytest.raises(ValueError, match=victim):
            store.warm_index()

    def test_bit_flipped_segment_fails_checksum(self, tmp_path):
        directory, _ = self._committed(tmp_path)
        def flip(data):
            data[len(data) // 2] ^= 0x01
            return data
        victim = self._damage_one(directory, flip)
        store = load_columnar(directory)
        with pytest.raises(ValueError, match="checksum"):
            store.warm_index()
        with pytest.raises(ValueError, match=victim):
            store.warm_index()

    def test_deleted_segment_named(self, tmp_path):
        directory, _ = self._committed(tmp_path)
        victim = sorted(
            f for f in os.listdir(directory) if f.endswith(".mmap")
        )[0]
        os.remove(os.path.join(directory, victim))
        store = load_columnar(directory)
        with pytest.raises(FileNotFoundError, match=victim):
            store.warm_index()
