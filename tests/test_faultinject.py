"""Crash/fault injection for the columnar write paths.

Every base rewrite (delta-log fold, storage conversion, reshard —
each of which also rebuilds the per-shard filters) follows the same
protocol: write every new data file under generation-suffixed names,
then commit with one atomic ``os.replace`` of the manifest, then clean
up superseded files.  The invariant this suite enforces at **every**
interruption point: reloading the directory either yields exactly the
expected merged dictionary (old base plus replayed delta-log before
the commit; new base with the stale-generation segment discarded after
it) or raises a named error — never a mixed or silently truncated
state.

:class:`FaultInjector` is the reusable helper: it seams into the
engine's file-commit events (each data-file write, the manifest
replace, each cleanup removal) and can kill the operation before the
Nth event, tear the Nth file mid-write, or enforce an ENOSPC byte
budget like a nearly-full disk.  Post-commit media damage (truncated
or bit-flipped mmap segments) is injected directly on the files.

:class:`FrameProxy` extends the same idea to the wire: a frame-aware
TCP proxy that drops, tears, or duplicates replication frames between
a leader and a follower.  ``tests/test_replicate.py`` sweeps it over a
live leader→replica link.
"""

from __future__ import annotations

import builtins
import errno
import os
import shutil

import pytest

import repro.engine.columnar as columnar_mod
import repro.engine.mmapstore as mmapstore_mod
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.engine import (
    ShardedDictionary,
    compact_shards,
    load_columnar,
    reshard,
    save_columnar,
)


class InjectedFault(RuntimeError):
    """The simulated crash — deliberately not an OSError subclass so a
    swallowed-too-broadly except clause in the code under test would
    show up as a missed injection, not a silent pass."""


class FaultInjector:
    """Crashes the columnar write path at a chosen commit event.

    Events, in operation order: one per data file opened for writing
    (shards, filters, key-order, manifest temp), one for the atomic
    ``os.replace`` commit, one per post-commit ``os.remove`` cleanup.

    Modes:

    - ``fail_after=N`` — raise :class:`InjectedFault` *before* event N
      executes (the file is never created / the commit never happens).
    - ``torn=True`` with ``fail_after=N`` — event N's file is created
      and half its first write lands before the crash (a torn file).
    - ``byte_budget=B`` — writes succeed until B bytes have landed,
      then fail with ``OSError(ENOSPC)`` mid-write, like a filling
      disk.  Metadata operations (replace/remove) stay free.

    With no mode set it only counts, so a dry run measures how many
    interruption points an operation has.
    """

    _PATCH_MODULES = (columnar_mod, mmapstore_mod)

    def __init__(self, fail_after=None, torn=False, byte_budget=None):
        self.fail_after = fail_after
        self.torn = torn
        self.byte_budget = byte_budget
        self.events = 0
        self._written = 0
        self._real_open = builtins.open
        self._real_replace = os.replace
        self._real_remove = os.remove

    def install(self, mp: pytest.MonkeyPatch) -> "FaultInjector":
        for mod in self._PATCH_MODULES:
            mp.setattr(mod, "open", self._open, raising=False)
        mp.setattr(os, "replace", self._replace)
        mp.setattr(os, "remove", self._remove)
        return self

    def _fatal(self) -> bool:
        fatal = (
            self.fail_after is not None and self.events == self.fail_after
        )
        self.events += 1
        return fatal

    def _open(self, path, mode="r", *args, **kwargs):
        if "w" not in str(mode):
            return self._real_open(path, mode, *args, **kwargs)
        if self._fatal():
            if self.torn:
                return _TornFile(self._real_open(path, mode, *args, **kwargs))
            raise InjectedFault(f"crash before writing {path!r}")
        if self.byte_budget is not None:
            return _BudgetFile(self, self._real_open(path, mode, *args, **kwargs))
        return self._real_open(path, mode, *args, **kwargs)

    def _replace(self, src, dst, **kwargs):
        if self._fatal():
            raise InjectedFault(f"crash before committing {dst!r}")
        return self._real_replace(src, dst, **kwargs)

    def _remove(self, path, **kwargs):
        if self._fatal():
            raise InjectedFault(f"crash before removing {path!r}")
        return self._real_remove(path, **kwargs)

    def charge(self, n: int) -> int:
        """ENOSPC accounting: bytes of an attempted write that land."""
        if self.byte_budget is None:
            return n
        allowed = min(n, max(0, self.byte_budget - self._written))
        self._written += allowed
        return allowed


class _TornFile:
    """File proxy whose first write lands only halfway, then crashes."""

    def __init__(self, fh):
        self._fh = fh

    def write(self, data):
        self._fh.write(data[: max(1, len(data) // 2)])
        self._fh.flush()
        self._fh.close()
        raise InjectedFault(f"torn write to {self._fh.name!r}")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        if not self._fh.closed:
            self._fh.close()
        return False


class FrameProxy:
    """Frame-aware TCP proxy injecting replication socket faults.

    Sits between a :class:`~repro.engine.replicate.ReplicationFollower`
    and its leader.  The follower→leader direction is forwarded
    untouched; on the leader→follower direction the proxy decodes the
    u32-length frame stream and can, counting frames across the
    proxy's whole lifetime (reconnections included):

    - ``drop_after=N`` — forward N frames, then cut the connection
      between frames (a clean mid-stream disconnect).
    - ``tear_at=N`` — forward only the first half of frame N's bytes,
      then cut (a torn frame: the follower dies mid-``readexactly``;
      also what a leader killed mid-send looks like).
    - ``duplicate_at=N`` — deliver frame N twice back to back.

    Each fault is armed once: after it fires (``.fired``), every later
    connection through the proxy is a clean passthrough, so the
    follower's reconnect loop can be asserted to converge.
    """

    def __init__(self, host: str, port: int, drop_after=None, tear_at=None,
                 duplicate_at=None):
        self.upstream = (host, port)
        self.drop_after = drop_after
        self.tear_at = tear_at
        self.duplicate_at = duplicate_at
        self.fired = False
        self.frames = 0
        self.port = None
        self._server = None
        self._tasks = set()

    async def __aenter__(self):
        import asyncio

        self._server = await asyncio.start_server(
            self._handle, host="127.0.0.1", port=0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        import asyncio

        self._server.close()
        await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)

    async def _handle(self, reader, writer):
        import asyncio

        try:
            up_reader, up_writer = await asyncio.open_connection(*self.upstream)
        except OSError:
            writer.close()
            return
        pumps = (
            asyncio.ensure_future(self._pump_raw(reader, up_writer)),
            asyncio.ensure_future(self._pump_frames(up_reader, writer)),
        )
        self._tasks.update(pumps)
        done, pending = await asyncio.wait(
            pumps, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        await asyncio.gather(*pumps, return_exceptions=True)
        for w in (writer, up_writer):
            w.close()
        self._tasks.difference_update(pumps)

    async def _pump_raw(self, reader, writer):
        import asyncio

        try:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass

    async def _pump_frames(self, reader, writer):
        import asyncio
        import struct

        try:
            while True:
                header = await reader.readexactly(4)
                (length,) = struct.unpack(">I", header)
                payload = await reader.readexactly(length)
                index = self.frames
                self.frames += 1
                frame = header + payload
                if not self.fired and self.drop_after is not None \
                        and index >= self.drop_after:
                    self.fired = True
                    break
                if not self.fired and self.tear_at == index:
                    self.fired = True
                    writer.write(frame[: max(1, len(frame) // 2)])
                    await writer.drain()
                    break
                if not self.fired and self.duplicate_at == index:
                    self.fired = True
                    writer.write(frame)
                writer.write(frame)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                asyncio.CancelledError):
            pass


class _BudgetFile:
    """File proxy enforcing the injector's global byte budget."""

    def __init__(self, injector, fh):
        self._injector = injector
        self._fh = fh

    def write(self, data):
        allowed = self._injector.charge(len(data))
        self._fh.write(data[:allowed])
        if allowed < len(data):
            self._fh.flush()
            self._fh.close()
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        return len(data)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        if not self._fh.closed:
            self._fh.close()
        return False


# ---------------------------------------------------------------------------
# The operations under test, each returning (directory, expected flat EFD).


def _fp(i: int) -> Fingerprint:
    return Fingerprint(
        metric=f"m{i % 2}",
        node=i % 4,
        interval=(0.0, 60.0) if i % 3 else (60.0, 120.0),
        value=float(i) * 50.0,
    )


def _seed_directory(tmp_path, storage: str, n_base: int = 40,
                    n_delta: int = 6):
    """A columnar directory with a pending delta-log, plus the expected
    merged (base ∪ overlay) reference dictionary."""
    expected = ExecutionFingerprintDictionary()
    sharded = ShardedDictionary(2)
    for i in range(n_base):
        sharded.add(_fp(i), f"app{i % 5}_X")
        expected.add(_fp(i), f"app{i % 5}_X")
    directory = str(tmp_path / "seed")
    save_columnar(sharded, directory, storage=storage)
    store = load_columnar(directory)
    for i in range(10_000, 10_000 + n_delta):
        store.add(_fp(i), f"late{i % 3}_Y")
        expected.add(_fp(i), f"late{i % 3}_Y")
    return directory, expected


def _assert_state(directory, expected):
    """The crash invariant: a reload serves exactly the merged state."""
    store = load_columnar(directory)
    assert list(store.entries()) == list(expected.entries())
    assert store.labels() == expected.labels()
    for fp, _ in expected.entries():
        assert store.lookup_counts(fp) == expected.lookup_counts(fp)
    # And the store still answers batches (filters + overlay intact).
    keys = [fp for fp, _ in expected.entries()]
    misses = [_fp(i) for i in range(90_000, 90_020)]
    assert store.lookup_many(keys + misses) == [
        expected.lookup(fp) for fp in keys
    ] + [[] for _ in misses]


OPERATIONS = {
    "fold-npz": ("npz", lambda d: compact_shards(d)),
    "fold-mmap": ("mmap", lambda d: compact_shards(d)),
    "convert-to-mmap": ("npz", lambda d: compact_shards(d, layout="mmap")),
    "reshard-mmap": ("mmap", lambda d: reshard(d, 3)),
}


def _copy(directory, tmp_path, tag):
    dst = str(tmp_path / f"run-{tag}")
    shutil.copytree(directory, dst)
    return dst


class TestCrashPointSweep:
    """Kill (and tear) the operation at every commit event in turn."""

    @pytest.mark.parametrize("name", sorted(OPERATIONS))
    def test_every_interruption_point(self, name, tmp_path):
        storage, op = OPERATIONS[name]
        directory, expected = _seed_directory(tmp_path, storage)
        # Dry run on a copy to count this operation's commit events.
        with pytest.MonkeyPatch.context() as mp:
            counter = FaultInjector().install(mp)
            op(_copy(directory, tmp_path, "dry"))
        total = counter.events
        assert total >= 5, f"{name}: expected a multi-event write path"
        for n in range(total):
            run_dir = _copy(directory, tmp_path, f"kill{n}")
            with pytest.MonkeyPatch.context() as mp:
                FaultInjector(fail_after=n).install(mp)
                with pytest.raises(InjectedFault):
                    op(run_dir)
            _assert_state(run_dir, expected)

    @pytest.mark.parametrize("name", sorted(OPERATIONS))
    def test_torn_file_at_every_write(self, name, tmp_path):
        storage, op = OPERATIONS[name]
        directory, expected = _seed_directory(tmp_path, storage)
        with pytest.MonkeyPatch.context() as mp:
            counter = FaultInjector().install(mp)
            op(_copy(directory, tmp_path, "dry"))
        for n in range(counter.events):
            run_dir = _copy(directory, tmp_path, f"torn{n}")
            with pytest.MonkeyPatch.context() as mp:
                FaultInjector(fail_after=n, torn=True).install(mp)
                with pytest.raises(InjectedFault):
                    op(run_dir)
            _assert_state(run_dir, expected)

    @pytest.mark.parametrize("name", sorted(OPERATIONS))
    def test_interrupted_then_retried_succeeds(self, name, tmp_path):
        # A crashed rewrite must be recoverable by simply re-running it.
        storage, op = OPERATIONS[name]
        directory, expected = _seed_directory(tmp_path, storage)
        run_dir = _copy(directory, tmp_path, "retry")
        with pytest.MonkeyPatch.context() as mp:
            FaultInjector(fail_after=2).install(mp)
            with pytest.raises(InjectedFault):
                op(run_dir)
        op(run_dir)  # no injector: the retry completes
        _assert_state(run_dir, expected)
        assert load_columnar(run_dir).delta_pending == 0


class TestDiskFull:
    @pytest.mark.parametrize("name", sorted(OPERATIONS))
    @pytest.mark.parametrize("budget", (0, 200, 5_000))
    def test_enospc_mid_rewrite(self, name, budget, tmp_path):
        storage, op = OPERATIONS[name]
        directory, expected = _seed_directory(tmp_path, storage)
        run_dir = _copy(directory, tmp_path, f"enospc{budget}")
        with pytest.MonkeyPatch.context() as mp:
            FaultInjector(byte_budget=budget).install(mp)
            with pytest.raises(OSError) as exc_info:
                op(run_dir)
            assert exc_info.value.errno == errno.ENOSPC
        _assert_state(run_dir, expected)


class TestPostCommitMediaDamage:
    """Damage that happens *after* a clean commit — a truncated or
    bit-flipped mmap segment must raise by name when its columns are
    finally read, never decode garbage."""

    def _committed(self, tmp_path):
        directory, expected = _seed_directory(tmp_path, "mmap")
        compact_shards(directory)  # fold cleanly: single-generation base
        return directory, expected

    def _damage_one(self, directory, mutate):
        victim = sorted(
            f for f in os.listdir(directory) if f.endswith(".mmap")
        )[0]
        path = os.path.join(directory, victim)
        data = bytearray(open(path, "rb").read())
        open(path, "wb").write(bytes(mutate(data)))
        return victim

    def test_truncated_segment_raises_by_name(self, tmp_path):
        directory, _ = self._committed(tmp_path)
        victim = self._damage_one(directory, lambda d: d[: len(d) - 64])
        store = load_columnar(directory)  # lazy: load itself is clean
        with pytest.raises(ValueError, match="truncated"):
            store.warm_index()
        with pytest.raises(ValueError, match=victim):
            store.warm_index()

    def test_bit_flipped_segment_fails_checksum(self, tmp_path):
        directory, _ = self._committed(tmp_path)
        def flip(data):
            data[len(data) // 2] ^= 0x01
            return data
        victim = self._damage_one(directory, flip)
        store = load_columnar(directory)
        with pytest.raises(ValueError, match="checksum"):
            store.warm_index()
        with pytest.raises(ValueError, match=victim):
            store.warm_index()

    def test_deleted_segment_named(self, tmp_path):
        directory, _ = self._committed(tmp_path)
        victim = sorted(
            f for f in os.listdir(directory) if f.endswith(".mmap")
        )[0]
        os.remove(os.path.join(directory, victim))
        store = load_columnar(directory)
        with pytest.raises(FileNotFoundError, match=victim):
            store.warm_index()
