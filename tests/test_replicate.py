"""Leader→replica delta-log shipping under socket-level faults.

The wire invariant mirrors the crash invariant of
``tests/test_faultinject.py`` one layer out: whatever the network does
to the replication stream — connections dropped between frames, frames
torn mid-byte, duplicate segment delivery, the leader killed mid
base-swap — a reload of the replica directory yields **exactly** the
state after some prefix of the leader's committed records at one
generation, never a mixed or partially-applied record, and once the
link heals the replica converges to a byte-identical copy of the
leader's directory (base files *and* delta-log segment).

:class:`test_faultinject.FrameProxy` injects the faults; each one is
armed once, so the follower's reconnect loop is what the sweep
actually exercises.  ``make replicate-smoke`` runs the ``smoke``
subset: one live bootstrap → trickle → base-swap round trip per
storage.
"""

from __future__ import annotations

import asyncio
import os
import re
import shutil
import signal
import subprocess
import sys
import time

import pytest

from test_faultinject import FrameProxy, InjectedFault

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.engine import ShardedDictionary, save_columnar
from repro.engine.columnar import (
    _manifest_files,
    _read_manifest,
    load_columnar,
)
from repro.engine.replicate import (
    ReplicationFollower,
    ReplicationPublisher,
    local_position,
    replication_request,
)

STORAGES = ("npz", "mmap")
N_BASE = 24
N_DELTA = 10


def _fp(i: int) -> Fingerprint:
    return Fingerprint(
        metric=f"m{i % 2}",
        node=i % 4,
        interval=(0.0, 60.0) if i % 3 else (60.0, 120.0),
        value=float(i) * 50.0,
    )


def _base_pairs(n: int = N_BASE):
    return [(_fp(i), f"app{i % 5}_X") for i in range(n)]


def _delta_ops(n: int = N_DELTA):
    """(fingerprint, label, count) appends the leader will make live."""
    return [
        (_fp(10_000 + i), f"late{i % 3}_Y", 1 + i % 2) for i in range(n)
    ]


def _seed_leader(tmp_path, storage: str, n_base: int = N_BASE) -> str:
    sharded = ShardedDictionary(2)
    for fp, label in _base_pairs(n_base):
        sharded.add(fp, label)
    directory = str(tmp_path / "leader")
    save_columnar(sharded, directory, storage=storage)
    return directory


def _snapshot(store):
    """Comparable view of a store: entries, labels, per-key counts."""
    entries = list(store.entries())
    return (
        entries,
        store.labels(),
        [store.lookup_counts(fp) for fp, _ in entries],
    )


def _expected_states(delta_ops, n_base: int = N_BASE):
    """``states[j]`` = flat snapshot after the base plus the first j
    delta records — the only states a replica may ever serve before
    the base swap."""
    efd = ExecutionFingerprintDictionary()
    for fp, label in _base_pairs(n_base):
        efd.add(fp, label)
    states = [_snapshot(efd)]
    for fp, label, count in delta_ops:
        efd.add_repeated(fp, label, count)
        states.append(_snapshot(efd))
    return states


def _assert_dirs_equal(leader_dir: str, replica_dir: str) -> None:
    """Byte-for-byte equivalence of everything the manifest references,
    plus the live delta-log segment."""
    lm = _read_manifest(leader_dir)
    rm = _read_manifest(replica_dir)
    assert rm == lm
    names = sorted(set(_manifest_files(lm)))
    for directory in (leader_dir, replica_dir):
        assert os.path.exists(os.path.join(directory, "delta-log.jsonl")) \
            == os.path.exists(os.path.join(leader_dir, "delta-log.jsonl"))
    if os.path.exists(os.path.join(leader_dir, "delta-log.jsonl")):
        names.append("delta-log.jsonl")
    for name in names:
        with open(os.path.join(leader_dir, name), "rb") as fh:
            expected = fh.read()
        with open(os.path.join(replica_dir, name), "rb") as fh:
            actual = fh.read()
        assert actual == expected, f"{name} differs between leader and replica"


def _assert_old_or_new(copy_dir, states, post_swap_leader=None):
    """The never-mixed invariant on a frozen copy of the replica dir.

    Either the directory is not bootstrapped yet (no manifest — the
    "old" state of an empty replica), or it loads to exactly
    ``states[applied]`` at the pre-swap generation, or (after a
    compaction swap) to the leader's post-swap state.
    """
    generation, applied = local_position(copy_dir)
    if generation < 0:
        return  # pre-bootstrap: nothing committed, nothing mixed
    store = load_columnar(copy_dir)
    if post_swap_leader is not None and generation \
            == post_swap_leader["generation"]:
        assert _snapshot(store) == post_swap_leader["state"]
        return
    assert 0 <= applied < len(states)
    assert _snapshot(store) == states[applied], (
        f"replica at generation {generation} applied={applied} serves a "
        f"state that is not the exact prefix state"
    )


async def _settled_copy(replica_dir, tmp_path, tag):
    """Freeze the replica directory for offline inspection."""
    dst = str(tmp_path / f"copy-{tag}")
    await asyncio.get_running_loop().run_in_executor(
        None, shutil.copytree, replica_dir, dst
    )
    return dst


async def _drive_link(tmp_path, storage, proxy_kwargs=None,
                      tear_swap=False, crash_apply_at=None):
    """One full replication round trip, optionally through a fault.

    Bootstraps an empty replica over the (possibly faulty) link,
    trickles ``N_DELTA`` appends, waits for convergence, compacts the
    leader (base swap), waits for the swap to land, and returns the
    mid-fault directory copies taken along the way for offline
    invariant checks.
    """
    leader_dir = _seed_leader(tmp_path, storage)
    replica_dir = str(tmp_path / "replica")
    ops = _delta_ops()
    leader = load_columnar(leader_dir)
    copies = []
    proxy = None
    follower = None
    injected = {"count": 0}
    async with ReplicationPublisher(
        leader_dir, port=0, poll_interval=0.005, heartbeat=0.02
    ) as publisher:
        host, port = publisher.tcp_address
        try:
            if proxy_kwargs is not None:
                proxy = FrameProxy(host, port, **proxy_kwargs)
                await proxy.__aenter__()
                host, port = "127.0.0.1", proxy.port
            follower = ReplicationFollower(
                replica_dir, host=host, port=port, reconnect_delay=0.01
            )
            await follower.start()
            assert await follower.wait_ready(timeout=30.0), \
                "replica never bootstrapped"
            store = load_columnar(replica_dir)
            if crash_apply_at is not None:
                # Replica process dies mid-apply: the Nth applied record
                # raises out of the apply path, killing the follower.
                real_apply = type(store).add_repeated

                def _crashing(self, fp, label, count):
                    if injected["count"] == crash_apply_at:
                        raise InjectedFault("replica crash mid-apply")
                    injected["count"] += 1
                    return real_apply(self, fp, label, count)

                store.add_repeated = _crashing.__get__(store)
            follower.attach(store)
            sampled = False
            for i, (fp, label, count) in enumerate(ops):
                leader.add_repeated(fp, label, count)
                await asyncio.sleep(0.01)
                if proxy is not None and proxy.fired and not sampled:
                    sampled = True
                    copies.append(
                        await _settled_copy(replica_dir, tmp_path, f"mid{i}")
                    )
            if crash_apply_at is not None:
                # The follower task died on the injected fault; a fresh
                # follower on the same directory must resume from the
                # durable position and converge.
                await follower.close()
                copies.append(
                    await _settled_copy(replica_dir, tmp_path, "crashed")
                )
                store = load_columnar(replica_dir)
                follower = ReplicationFollower(
                    replica_dir, host=host, port=port, reconnect_delay=0.01
                )
                await follower.start()
                follower.attach(store)
            assert await follower.wait_position(
                leader._delta.generation, leader.delta_pending, timeout=30.0
            ), f"replica never converged (lag={follower.lag})"
            copies.append(
                await _settled_copy(replica_dir, tmp_path, "preswap")
            )
            _assert_dirs_equal(leader_dir, replica_dir)
            if tear_swap and proxy is not None:
                # Arm a tear a few frames ahead: it lands inside the
                # base-swap snapshot the compaction is about to ship —
                # the leader dying mid-swap, as seen from the replica.
                proxy.tear_at = proxy.frames + 2
                proxy.fired = False
            generation = leader._delta.generation
            leader.compact_delta()
            assert leader._delta.generation == generation + 1
            assert await follower.wait_position(
                generation + 1, 0, timeout=30.0
            ), f"replica never swapped (lag={follower.lag})"
            _assert_dirs_equal(leader_dir, replica_dir)
            if proxy is not None and (proxy_kwargs or tear_swap):
                assert proxy.fired, "the armed fault never fired"
        finally:
            if follower is not None:
                await follower.close()
            if proxy is not None:
                await proxy.__aexit__(None, None, None)
    post_swap = {
        "generation": leader._delta.generation,
        "state": _snapshot(leader),
    }
    return ops, copies, post_swap


class TestSmokeRoundTrip:
    """Clean-link round trip: bootstrap, trickle, base swap, converge."""

    @pytest.mark.parametrize("storage", STORAGES)
    def test_smoke_bootstrap_trickle_swap(self, storage, tmp_path):
        ops, copies, post_swap = asyncio.run(
            _drive_link(tmp_path, storage)
        )
        states = _expected_states(ops)
        for copy_dir in copies:
            _assert_old_or_new(copy_dir, states, post_swap)


class TestSocketFaultSweep:
    """Every fault kind at frame indices spanning the bootstrap
    snapshot (header/file/commit frames) and the records stream."""

    FAULTS = [
        ("drop_after", n) for n in (0, 1, 4, 9, 14)
    ] + [
        ("tear_at", n) for n in (0, 2, 5, 9, 14)
    ] + [
        ("duplicate_at", n) for n in (1, 4, 9, 14)
    ]

    @pytest.mark.parametrize("storage", STORAGES)
    @pytest.mark.parametrize("fault", FAULTS,
                             ids=[f"{k}{n}" for k, n in FAULTS])
    def test_fault_recovers_exact_state(self, storage, fault, tmp_path):
        kind, index = fault
        ops, copies, post_swap = asyncio.run(
            _drive_link(tmp_path, storage, proxy_kwargs={kind: index})
        )
        states = _expected_states(ops)
        for copy_dir in copies:
            _assert_old_or_new(copy_dir, states, post_swap)

    @pytest.mark.parametrize("storage", STORAGES)
    def test_leader_killed_mid_base_swap(self, storage, tmp_path):
        # Passthrough proxy during the trickle; the tear is armed right
        # before compaction so it hits the swap snapshot's frames.
        ops, copies, post_swap = asyncio.run(
            _drive_link(tmp_path, storage,
                        proxy_kwargs={"tear_at": 10 ** 9},
                        tear_swap=True)
        )
        states = _expected_states(ops)
        for copy_dir in copies:
            _assert_old_or_new(copy_dir, states, post_swap)

    @pytest.mark.parametrize("storage", STORAGES)
    def test_replica_crash_mid_apply_resumes(self, storage, tmp_path):
        ops, copies, post_swap = asyncio.run(
            _drive_link(tmp_path, storage, crash_apply_at=3)
        )
        states = _expected_states(ops)
        for copy_dir in copies:
            _assert_old_or_new(copy_dir, states, post_swap)


class TestControlPlane:
    """status / promote / follow round trips against a live publisher."""

    def test_status_reports_position(self, tmp_path):
        directory = _seed_leader(tmp_path, "npz")

        async def run():
            store = load_columnar(directory)
            store.add(_fp(10_000), "late0_Y")
            async with ReplicationPublisher(directory, port=0) as pub:
                host, port = pub.tcp_address
                return await replication_request(
                    {"op": "status"}, host=host, port=port
                )

        status = asyncio.run(run())
        assert status["role"] == "leader"
        assert status["generation"] == 0
        assert status["records"] == 1

    def test_reply_without_op_key_round_trips(self, tmp_path):
        # Replies are not requests: the publisher's error replies and
        # the CLI's follow ack ({"ok": ...}) carry no "op" key, and the
        # control client must hand them back instead of rejecting the
        # frame (which made elect_and_promote report a successful
        # re-follow as failed).
        directory = _seed_leader(tmp_path, "npz")

        async def run():
            async def on_follow(msg):
                return {"ok": True, "target": str(msg.get("target", ""))}

            async with ReplicationPublisher(
                directory, port=0, role="replica", on_follow=on_follow
            ) as pub:
                host, port = pub.tcp_address
                ack = await replication_request(
                    {"op": "follow", "target": "h:1"}, host=host, port=port
                )
                refused = await replication_request(
                    {"op": "promote"}, host=host, port=port
                )
                return ack, refused

        ack, refused = asyncio.run(run())
        assert ack == {"ok": True, "target": "h:1"}
        assert "error" in refused  # no on_promote: refusal, not a parse error

    def test_promote_folds_and_leads(self, tmp_path):
        leader_dir = _seed_leader(tmp_path, "npz")
        replica_dir = str(tmp_path / "replica")

        async def run():
            leader = load_columnar(leader_dir)
            async with ReplicationPublisher(
                leader_dir, port=0, poll_interval=0.005, heartbeat=0.02
            ) as pub:
                host, port = pub.tcp_address
                follower = ReplicationFollower(
                    replica_dir, host=host, port=port, reconnect_delay=0.01
                )
                await follower.start()
                assert await follower.wait_ready(timeout=30.0)
                store = load_columnar(replica_dir)
                follower.attach(store)
                for fp, label, count in _delta_ops(4):
                    leader.add_repeated(fp, label, count)
                assert await follower.wait_position(0, 4, timeout=30.0)
                reply = await follower.promote()
                return reply, local_position(replica_dir)

        reply, (generation, applied) = asyncio.run(run())
        assert reply["role"] == "leader"
        assert reply["folded"] == 4
        # Promotion compacts: the pending records are fenced into a new
        # generation no stale leader can confuse with its own.
        assert (generation, applied) == (1, 0)
        promoted = load_columnar(replica_dir)
        expected = _expected_states(_delta_ops(4))[-1]
        assert _snapshot(promoted) == expected

    def test_elect_and_promote_picks_most_advanced(self, tmp_path):
        from repro.engine.replicate import elect_and_promote

        leader_dir = _seed_leader(tmp_path, "npz")
        ahead_dir = str(tmp_path / "ahead")
        behind_dir = str(tmp_path / "behind")

        async def run():
            leader = load_columnar(leader_dir)
            async with ReplicationPublisher(
                leader_dir, port=0, poll_interval=0.005, heartbeat=0.02
            ) as pub:
                host, port = pub.tcp_address
                followers, pubs = [], []
                for directory in (ahead_dir, behind_dir):
                    f = ReplicationFollower(
                        directory, host=host, port=port,
                        reconnect_delay=0.01,
                    )
                    await f.start()
                    assert await f.wait_ready(timeout=30.0)
                    f.attach(load_columnar(directory))
                    followers.append(f)

                    async def on_promote(f=f):
                        return await f.promote()

                    async def on_follow(msg, f=f):
                        from repro.engine.replicate import (
                            parse_replica_endpoint,
                        )
                        await f.refollow(
                            **parse_replica_endpoint(str(msg["target"]))
                        )
                        return {"ok": True}

                    p = ReplicationPublisher(
                        directory, port=0, poll_interval=0.005,
                        heartbeat=0.02, role="replica",
                        on_promote=on_promote, on_follow=on_follow,
                    )
                    await p.start()
                    pubs.append(p)
                for fp, label, count in _delta_ops(6):
                    leader.add_repeated(fp, label, count)
                assert await followers[0].wait_position(0, 6, timeout=30.0)
                # Partition the second replica mid-stream: it stays
                # behind at whatever it managed to apply.
                await followers[1].close()
                behind_applied = followers[1].applied
                # Leader dies; failover across the two replica
                # publishers must elect the caught-up one.
                candidates = [
                    f"127.0.0.1:{p.tcp_address[1]}" for p in pubs
                ]
                outcome = await elect_and_promote(candidates, timeout=10.0)
                try:
                    return outcome, candidates, behind_applied
                finally:
                    for f in followers:
                        await f.close()
                    for p in pubs:
                        await p.close()

        outcome, candidates, behind_applied = asyncio.run(run())
        assert outcome["winner"] == candidates[0]
        assert outcome["promoted"]["role"] == "leader"
        assert outcome["promoted"]["generation"] == 1
        assert set(outcome["refollowed"]) == {candidates[1]}
        ahead = load_columnar(ahead_dir)
        assert _snapshot(ahead) == _expected_states(_delta_ops(6))[-1]
        # The behind replica never applied a record it did not have.
        assert behind_applied <= 6


class TestFollowerRedialBackoff:
    """The redial delay sequence: exponential from ``reconnect_delay``
    with full jitter, capped, and reset by a successful subscribe —
    shared machinery with the remote-probe retry policy
    (:class:`repro._util.backoff.BackoffPolicy`)."""

    class _MaxRng:
        """``uniform(0, b) == b``: exposes the envelope as the delays."""

        def uniform(self, a, b):
            return b

    def test_delay_sequence_doubles_and_caps(self, tmp_path):
        follower = ReplicationFollower(
            str(tmp_path / "r"), host="127.0.0.1", port=1,
            reconnect_delay=0.01, reconnect_cap=0.08,
            reconnect_rng=self._MaxRng(),
        )
        delays = [follower._next_redial_delay() for _ in range(6)]
        assert delays == pytest.approx([0.01, 0.02, 0.04, 0.08, 0.08, 0.08])

    def test_default_cap_is_32x_base(self, tmp_path):
        follower = ReplicationFollower(
            str(tmp_path / "r"), host="127.0.0.1", port=1,
            reconnect_delay=0.25, reconnect_rng=self._MaxRng(),
        )
        delays = [follower._next_redial_delay() for _ in range(12)]
        assert max(delays) == pytest.approx(8.0)

    def test_delays_are_full_jitter_within_the_envelope(self, tmp_path):
        import random as random_mod

        follower = ReplicationFollower(
            str(tmp_path / "r"), host="127.0.0.1", port=1,
            reconnect_delay=0.5, reconnect_cap=64.0,
            reconnect_rng=random_mod.Random(11),
        )
        for attempt in range(8):
            delay = follower._next_redial_delay()
            assert 0.0 <= delay <= min(64.0, 0.5 * 2 ** attempt)

    def test_successful_subscribe_resets_the_sequence(self, tmp_path):
        async def run():
            leader_dir = _seed_leader(tmp_path, "npz")
            replica_dir = str(tmp_path / "replica")
            async with ReplicationPublisher(
                leader_dir, port=0, poll_interval=0.005, heartbeat=0.02
            ) as publisher:
                host, port = publisher.tcp_address
                follower = ReplicationFollower(
                    replica_dir, host=host, port=port,
                    reconnect_delay=0.01, reconnect_rng=self._MaxRng(),
                )
                # Pretend the leader was unreachable for a while first.
                follower._redial_attempt = 7
                await follower.start()
                assert await follower.wait_ready(timeout=30.0)
                assert follower._redial_attempt == 0
                # The next redial (if the link dropped now) starts from
                # the base again, not from the accumulated envelope.
                assert follower._next_redial_delay() == pytest.approx(0.01)
                await follower.close()

        asyncio.run(run())


class TestCLIFailover:
    """Subprocess round trip: leader + two replicas, SIGKILL the
    leader, ``efd promote``, the survivors re-converge."""

    @staticmethod
    def _spawn(env, argv, out_path):
        out = open(out_path, "w", encoding="utf-8")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            stdout=out, stderr=subprocess.STDOUT, env=env,
        )
        return proc, out

    @staticmethod
    def _await_line(path, pattern, deadline, proc=None):
        rx = re.compile(pattern)
        while time.monotonic() < deadline:
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        m = rx.search(line)
                        if m:
                            return m
            if proc is not None and proc.poll() is not None:
                raise AssertionError(
                    f"process exited rc={proc.returncode} before "
                    f"{pattern!r}: {open(path).read()}"
                )
            time.sleep(0.05)
        raise AssertionError(f"timed out waiting for {pattern!r} in {path}")

    def test_kill_leader_promote_converge(self, tmp_path):
        from repro.cli import main

        leader_dir = _seed_leader(tmp_path, "npz")
        replica_dirs = [str(tmp_path / f"replica{i}") for i in (0, 1)]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), os.pardir, "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        deadline = time.monotonic() + 60.0
        procs, outs = [], []
        try:
            leader_out = str(tmp_path / "leader.out")
            proc, out = self._spawn(
                env,
                ["serve", "--efd-dir", leader_dir, "--depth", "2",
                 "--publish", "127.0.0.1:0", "--quiet"],
                leader_out,
            )
            procs.append(proc)
            outs.append(out)
            m = self._await_line(
                leader_out, r"publishing on tcp://([0-9.]+):(\d+)",
                deadline, proc,
            )
            leader_ep = f"{m.group(1)}:{m.group(2)}"
            replica_eps = []
            replica_outs = []
            for i, directory in enumerate(replica_dirs):
                out_path = str(tmp_path / f"replica{i}.out")
                proc, out = self._spawn(
                    env,
                    ["serve", "--efd-dir", directory, "--depth", "2",
                     "--follow", leader_ep,
                     "--publish", "127.0.0.1:0", "--quiet"],
                    out_path,
                )
                procs.append(proc)
                outs.append(out)
                m = self._await_line(
                    out_path, r"publishing on tcp://([0-9.]+):(\d+)",
                    deadline, proc,
                )
                replica_eps.append(f"{m.group(1)}:{m.group(2)}")
                replica_outs.append(out_path)

            # Trickle records into the leader's delta-log from here: the
            # publisher ships from disk, so an out-of-process append is
            # indistinguishable from a learn-while-serving write.
            writer_store = load_columnar(leader_dir)
            for fp, label, count in _delta_ops(4):
                writer_store.add_repeated(fp, label, count)

            async def _statuses():
                out = {}
                for ep in replica_eps:
                    host, port = ep.rsplit(":", 1)
                    out[ep] = await replication_request(
                        {"op": "status"}, host=host, port=int(port),
                        timeout=10.0,
                    )
                return out

            while time.monotonic() < deadline:
                statuses = asyncio.run(_statuses())
                if all(s.get("records") == 4 for s in statuses.values()):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError(f"replicas never caught up: {statuses}")

            procs[0].kill()
            procs[0].wait(timeout=30)

            rc = main(["promote", "--candidates", *replica_eps])
            assert rc == 0

            new_leader = None
            while time.monotonic() < deadline:
                statuses = asyncio.run(_statuses())
                leaders = [
                    ep for ep, s in statuses.items()
                    if s.get("role") == "leader"
                ]
                if len(leaders) == 1 and all(
                    s.get("generation") == 1 and s.get("records") == 0
                    for s in statuses.values()
                ):
                    new_leader = leaders[0]
                    break
                time.sleep(0.1)
            assert new_leader is not None, f"never converged: {statuses}"

            for proc in procs[1:]:
                proc.send_signal(signal.SIGTERM)
            for proc in procs[1:]:
                assert proc.wait(timeout=30) == 0
            _assert_dirs_equal(replica_dirs[0], replica_dirs[1])
            for directory in replica_dirs:
                generation, applied = local_position(directory)
                assert (generation, applied) == (1, 0)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)
            for out in outs:
                out.close()
