import pytest

from repro.data.splits import (
    UNKNOWN_LABEL,
    Split,
    hard_input_splits,
    hard_unknown_splits,
    kfold_splits,
    soft_input_splits,
    soft_unknown_splits,
)


class TestSplitValidation:
    def test_rejects_expected_length_mismatch(self):
        with pytest.raises(ValueError, match="expected"):
            Split("s", (0,), (1, 2), ("a",))

    def test_rejects_train_test_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            Split("s", (0, 1), (1,), ("a",))


class TestKFold:
    def test_partitions_everything(self, small_dataset):
        splits = kfold_splits(small_dataset, k=3, seed=0)
        assert len(splits) == 3
        covered = sorted(i for s in splits for i in s.test_indices)
        assert covered == list(range(len(small_dataset)))

    def test_train_test_disjoint_and_complete(self, small_dataset):
        for split in kfold_splits(small_dataset, k=3, seed=0):
            union = set(split.train_indices) | set(split.test_indices)
            assert union == set(range(len(small_dataset)))

    def test_stratified_by_pair(self, small_dataset):
        # Every (app, input) pair appears in every fold's test set
        # (3 reps over 3 folds -> exactly one each).
        splits = kfold_splits(small_dataset, k=3, seed=0)
        for split in splits:
            labels = [small_dataset[i].label for i in split.test_indices]
            assert len(set(labels)) == 37

    def test_expected_is_app_level(self, small_dataset):
        split = kfold_splits(small_dataset, k=3, seed=0)[0]
        for idx, expected in zip(split.test_indices, split.expected):
            assert expected == small_dataset[idx].app_name

    def test_seed_changes_assignment(self, small_dataset):
        a = kfold_splits(small_dataset, k=3, seed=0)[0].test_indices
        b = kfold_splits(small_dataset, k=3, seed=1)[0].test_indices
        assert a != b

    def test_rejects_k_too_small(self, small_dataset):
        with pytest.raises(ValueError):
            kfold_splits(small_dataset, k=1)


class TestSoftInput:
    def test_one_split_per_input_per_fold(self, small_dataset):
        splits = soft_input_splits(small_dataset, k=3, seed=0)
        assert len(splits) == 4 * 3  # inputs L,X,Y,Z x 3 folds

    def test_training_lacks_removed_input(self, small_dataset):
        for split in soft_input_splits(small_dataset, k=3, seed=0):
            removed = split.name.split("[-")[1][0]
            train_inputs = {
                small_dataset[i].input_size for i in split.train_indices
            }
            assert removed not in train_inputs

    def test_test_sets_unchanged_from_normal_fold(self, small_dataset):
        base = kfold_splits(small_dataset, k=3, seed=0)
        soft = soft_input_splits(small_dataset, k=3, seed=0)
        base_tests = [s.test_indices for s in base]
        for i, split in enumerate(soft):
            assert split.test_indices == base_tests[i % 3]


class TestSoftUnknown:
    def test_one_split_per_app_per_fold(self, small_dataset):
        splits = soft_unknown_splits(small_dataset, k=3, seed=0)
        assert len(splits) == 11 * 3

    def test_removed_app_not_in_training(self, small_dataset):
        split = soft_unknown_splits(small_dataset, k=3, seed=0)[0]
        removed = split.name.split("[-")[1].split("]")[0]
        train_apps = {small_dataset[i].app_name for i in split.train_indices}
        assert removed not in train_apps

    def test_removed_app_expected_unknown(self, small_dataset):
        for split in soft_unknown_splits(small_dataset, k=3, seed=0)[:6]:
            removed = split.name.split("[-")[1].split("]")[0]
            for idx, expected in zip(split.test_indices, split.expected):
                if small_dataset[idx].app_name == removed:
                    assert expected == UNKNOWN_LABEL
                else:
                    assert expected == small_dataset[idx].app_name


class TestHardInput:
    def test_one_split_per_input(self, small_dataset):
        splits = hard_input_splits(small_dataset)
        assert [s.name for s in splits] == [
            "hard_input[L]", "hard_input[X]", "hard_input[Y]", "hard_input[Z]"
        ]

    def test_test_exclusively_held_out_input(self, small_dataset):
        for split in hard_input_splits(small_dataset):
            held = split.name.split("[")[1][0]
            assert all(
                small_dataset[i].input_size == held for i in split.test_indices
            )
            assert all(
                small_dataset[i].input_size != held for i in split.train_indices
            )

    def test_expected_is_app_name(self, small_dataset):
        split = hard_input_splits(small_dataset)[0]
        assert all(
            e == small_dataset[i].app_name
            for i, e in zip(split.test_indices, split.expected)
        )

    def test_L_split_covers_only_starred_apps(self, small_dataset):
        split = [s for s in hard_input_splits(small_dataset)
                 if s.name == "hard_input[L]"][0]
        apps = {small_dataset[i].app_name for i in split.test_indices}
        assert apps == {"miniGhost", "miniAMR", "miniMD", "kripke"}


class TestHardUnknown:
    def test_one_split_per_app(self, small_dataset):
        assert len(hard_unknown_splits(small_dataset)) == 11

    def test_test_exclusively_held_out_app(self, small_dataset):
        for split in hard_unknown_splits(small_dataset):
            held = split.name.split("[")[1].rstrip("]")
            assert all(
                small_dataset[i].app_name == held for i in split.test_indices
            )
            assert all(
                small_dataset[i].app_name != held for i in split.train_indices
            )

    def test_all_expected_unknown(self, small_dataset):
        for split in hard_unknown_splits(small_dataset):
            assert set(split.expected) == {UNKNOWN_LABEL}
