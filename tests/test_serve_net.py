"""Network ingestion tests: the TCP/UDS listener in front of the service.

The headline property mirrors ``tests/test_serve_service.py`` one layer
out: N producers interleaving the same samples over sockets must yield
verdicts element-wise identical to the single-stream ``efd serve`` path,
across backpressure configurations and both transports.  The edge-case
suites prove the listener's per-connection fault isolation (a malformed
or oversized line costs exactly one producer its connection — never data
already parsed, never a peer), the graceful-drain close, and the CLI
round trip (``efd serve --uds`` + ``efd replay`` + SIGTERM).

``make serve-smoke`` runs the ``smoke``-marked subset: boot a listener
on an ephemeral UDS, replay a tiny stream, assert one verdict.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.recognizer import EFDRecognizer
from repro.core.streaming import StreamingRecognizer
from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.engine import BatchRecognizer
from repro.serve import (
    IngestService,
    NetListener,
    Sample,
    ServeConfig,
    interleave_records,
    push_samples,
    replay_samples,
    split_by_job,
)

METRIC = "nr_mapped_vmstat"
DEPTH = 2


@pytest.fixture(scope="module")
def dataset():
    config = DatasetConfig(
        metrics=(METRIC,), repetitions=2, seed=13, duration_cap=150.0,
        apps=("ft", "mg", "lu", "CoMD"),
    )
    return TaxonomistDatasetGenerator(config).generate()


@pytest.fixture(scope="module")
def recognizer(dataset):
    return EFDRecognizer(metric=METRIC, depth=DEPTH).fit(dataset)


def _engine(recognizer) -> BatchRecognizer:
    return BatchRecognizer(recognizer.dictionary_, metric=METRIC, depth=DEPTH)


def _reference_verdicts(recognizer, records, job_ids):
    """The single-stream reference: same samples, synchronous batch."""
    streaming = StreamingRecognizer.from_recognizer(recognizer)
    sessions = []
    for record, job in zip(records, job_ids):
        session = streaming.open_session(n_nodes=record.n_nodes, session_id=job)
        for node in range(record.n_nodes):
            series = record.series(METRIC, node)
            session.ingest_many(node, series.times, series.values)
        sessions.append(session)
    engine = _engine(recognizer)
    return dict(zip(job_ids, engine.recognize_sessions(sessions, force=True)))


async def _serve_net(engine, config, uds=None, port=None, run=None):
    """Run ``run(listener)`` against a fresh service + listener."""
    service = IngestService(engine, config)
    async with service:
        async with NetListener(service, port=port, uds=uds) as listener:
            result = await run(listener)
        await service.drain()
    return service, result


# ---------------------------------------------------------------------------
# Smoke: the `make serve-smoke` gate
# ---------------------------------------------------------------------------

class TestSmoke:
    def test_smoke_uds_one_producer_one_verdict(
        self, recognizer, dataset, tmp_path
    ):
        """Boot the listener on an ephemeral UDS, replay one tiny job
        stream, and get exactly the single-stream verdict back."""
        record = list(dataset)[0]
        reference = _reference_verdicts(recognizer, [record], ["smoke-job"])
        samples = list(interleave_records([record], METRIC, ["smoke-job"]))
        sock = str(tmp_path / "efd.sock")
        engine = _engine(recognizer)

        async def run(listener):
            return await push_samples(samples, uds=sock)

        service, summary = asyncio.run(_serve_net(
            engine, ServeConfig(batch_max_delay=0.002), uds=sock, run=run
        ))
        assert summary["ok"] is True
        assert summary["accepted"] == len(samples)
        assert service.results == {"smoke-job": reference["smoke-job"]}
        assert engine.stats.conns_accepted == 1
        assert engine.stats.conns_active == 0


# ---------------------------------------------------------------------------
# Equivalence property: N producers == single stream
# ---------------------------------------------------------------------------

NET_CONFIGS = [
    # Tiny ingest queue + blocking backpressure: handlers suspend on
    # submit_many, the socket buffers fill, producers stall — the
    # TCP-flow-control path, constantly exercised.
    ServeConfig(max_pending_samples=8, backpressure="block",
                batch_max_sessions=3, batch_max_delay=0.002,
                net_batch_samples=16, net_batch_delay=0.001),
    # Shed policy with ample capacity: the lossy configuration, sized
    # so it never actually loses anything.
    ServeConfig(max_pending_samples=200_000, backpressure="shed",
                batch_max_sessions=64, batch_max_delay=0.02),
]


class TestEquivalence:
    @pytest.mark.parametrize("config", NET_CONFIGS,
                             ids=["block-tiny-queue", "shed-ample-queue"])
    @pytest.mark.parametrize("transport", ["uds", "tcp"])
    def test_three_producers_equal_single_stream(
        self, recognizer, dataset, tmp_path, config, transport
    ):
        records = list(dataset)[:9]
        job_ids = [f"job-{i:04d}" for i in range(len(records))]
        reference = _reference_verdicts(recognizer, records, job_ids)
        samples = list(interleave_records(records, METRIC, job_ids))
        sock = str(tmp_path / f"efd-{transport}.sock")
        engine = _engine(recognizer)

        async def run(listener):
            if transport == "uds":
                return await replay_samples(samples, producers=3, uds=sock)
            host, port = listener.tcp_address
            return await replay_samples(samples, producers=3,
                                        host=host, port=port)

        service, summaries = asyncio.run(_serve_net(
            engine, config,
            uds=sock if transport == "uds" else None,
            port=0 if transport == "tcp" else None,
            run=run,
        ))

        assert len(summaries) == 3
        assert all(s.get("ok") for s in summaries)
        assert sum(s["accepted"] for s in summaries) == len(samples)
        stats = engine.stats
        assert stats.n_shed == 0
        assert stats.n_protocol_errors == 0
        assert stats.conns_accepted == 3
        assert stats.conns_active == 0
        results = service.results
        assert set(results) == set(job_ids)
        for job in job_ids:
            assert results[job] == reference[job], job

    def test_tcp_and_uds_serve_concurrently(
        self, recognizer, dataset, tmp_path
    ):
        """One listener, both transports at once, producers split."""
        records = list(dataset)[:4]
        job_ids = [f"job-{i}" for i in range(len(records))]
        reference = _reference_verdicts(recognizer, records, job_ids)
        streams = split_by_job(
            list(interleave_records(records, METRIC, job_ids)), 2
        )
        sock = str(tmp_path / "both.sock")
        engine = _engine(recognizer)

        async def run(listener):
            host, port = listener.tcp_address
            return await asyncio.gather(
                push_samples(streams[0], uds=sock),
                push_samples(streams[1], host=host, port=port),
            )

        service, summaries = asyncio.run(_serve_net(
            engine, ServeConfig(batch_max_delay=0.002),
            uds=sock, port=0, run=run,
        ))
        assert all(s.get("ok") for s in summaries)
        for job in job_ids:
            assert service.results[job] == reference[job], job

    def test_split_by_job_keeps_per_job_order(self, dataset):
        records = list(dataset)[:5]
        samples = list(interleave_records(records, METRIC))
        streams = split_by_job(samples, 3)
        assert sum(len(s) for s in streams) == len(samples)
        # Each job rides exactly one stream, in original sample order.
        for job in {s.job for s in samples}:
            homes = [i for i, stream in enumerate(streams)
                     if any(s.job == job for s in stream)]
            assert len(homes) == 1
            mine = [s for s in streams[homes[0]] if s.job == job]
            assert mine == [s for s in samples if s.job == job]
        with pytest.raises(ValueError, match="n >= 1"):
            split_by_job(samples, 0)


# ---------------------------------------------------------------------------
# Per-connection fault isolation
# ---------------------------------------------------------------------------

async def _raw_uds_exchange(sock: str, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_unix_connection(sock)
    writer.write(payload)
    await writer.drain()
    writer.write_eof()
    reply = await reader.readline()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return reply


class TestFaultIsolation:
    def test_malformed_line_closes_only_that_producer(
        self, recognizer, dataset, tmp_path
    ):
        """Producer B sends garbage after its valid samples: B's
        connection errors out, B's parsed samples are still submitted,
        and producers A/C are untouched — all verdicts still match the
        single-stream reference."""
        records = list(dataset)[:6]
        job_ids = [f"job-{i}" for i in range(len(records))]
        reference = _reference_verdicts(recognizer, records, job_ids)
        streams = split_by_job(
            list(interleave_records(records, METRIC, job_ids)), 3
        )
        sock = str(tmp_path / "poison.sock")
        engine = _engine(recognizer)

        poison = "\n".join(s.to_json() for s in streams[1])
        poison += '\n{"job": "evil", "node": not-even-json\n'

        async def run(listener):
            good_a, bad, good_c = await asyncio.gather(
                push_samples(streams[0], uds=sock),
                _raw_uds_exchange(sock, poison.encode()),
                push_samples(streams[2], uds=sock),
            )
            return good_a, json.loads(bad), good_c

        service, (good_a, bad, good_c) = asyncio.run(_serve_net(
            engine, ServeConfig(batch_max_delay=0.002), uds=sock, run=run
        ))

        assert good_a.get("ok") and good_c.get("ok")
        assert "invalid JSON" in bad["error"]
        # The valid prefix of the poisoned stream was still submitted.
        assert bad["accepted"] == len(streams[1])
        stats = engine.stats
        assert stats.n_protocol_errors == 1
        assert stats.conns_dropped == 1
        assert stats.conns_active == 0
        results = service.results
        assert set(results) == set(job_ids)
        for job in job_ids:
            assert results[job] == reference[job], job

    def test_oversized_line_is_a_protocol_error(self, recognizer, tmp_path):
        sock = str(tmp_path / "fat.sock")
        engine = _engine(recognizer)
        config = ServeConfig(max_line_bytes=128, batch_max_delay=0.002)
        fat = b'{"job": "fat", "node": 0, "t": 61.0, "value": 1.0, "pad": "' \
              + b"x" * 400 + b'"}\n'

        async def run(listener):
            return json.loads(await _raw_uds_exchange(sock, fat))

        _, reply = asyncio.run(_serve_net(engine, config, uds=sock, run=run))
        assert "max_line_bytes" in reply["error"]
        assert engine.stats.n_protocol_errors == 1
        assert engine.stats.conns_dropped == 1

    def test_valid_lines_sharing_a_chunk_with_oversized_tail_survive(
        self, recognizer, tmp_path
    ):
        """Acceptance must not depend on TCP chunk boundaries: valid
        complete lines delivered in the same read as an oversized
        unterminated tail are still submitted before the error."""
        sock = str(tmp_path / "tail.sock")
        engine = _engine(recognizer)
        config = ServeConfig(max_line_bytes=128, batch_max_delay=0.002)
        good = b'{"job": "ok", "node": 0, "t": 61.0, "value": 1.0, "nodes": 1}\n'
        payload = good + good + b'{"job": "fat", "pad": "' + b"x" * 400

        async def run(listener):
            return json.loads(await _raw_uds_exchange(sock, payload))

        service, reply = asyncio.run(
            _serve_net(engine, config, uds=sock, run=run)
        )
        assert "max_line_bytes" in reply["error"]
        assert reply["accepted"] == 2
        assert service.n_sessions == 1  # job "ok" opened from the prefix

    def test_push_samples_reports_server_refusal_without_crashing(
        self, recognizer, tmp_path
    ):
        """A server that refuses a line and hangs up mid-stream must
        surface as an {"error": ...} summary from push_samples — not an
        unhandled ConnectionError killing the whole replay."""
        sock = str(tmp_path / "refused.sock")
        engine = _engine(recognizer)
        config = ServeConfig(max_line_bytes=96, batch_max_delay=0.002)
        # One oversized sample early, then a long tail the producer
        # will still be writing when the server closes on it.
        fat_job = "f" * 200
        stream = [Sample(job=fat_job, node=0, time=61.0, value=1.0, n_nodes=1)]
        stream += [
            Sample(job="bulk", node=0, time=float(t), value=1.0, n_nodes=1)
            for t in range(50_000)
        ]

        async def run(listener):
            return await push_samples(stream, uds=sock, batch_lines=64)

        _, summary = asyncio.run(_serve_net(engine, config, uds=sock, run=run))
        assert "error" in summary
        assert engine.stats.n_protocol_errors == 1

    def test_blank_lines_and_comments_are_skipped(self, recognizer, tmp_path):
        sock = str(tmp_path / "blank.sock")
        engine = _engine(recognizer)
        payload = (
            b"# a relay header\n"
            b"\n"
            b'{"job": "j", "node": 0, "t": 61.0, "value": 1.0, "nodes": 1}\n'
        )

        async def run(listener):
            return json.loads(await _raw_uds_exchange(sock, payload))

        service, reply = asyncio.run(_serve_net(
            engine, ServeConfig(batch_max_delay=0.002), uds=sock, run=run
        ))
        assert reply["ok"] is True
        assert reply["accepted"] == 1
        assert reply["lines"] == 3
        assert service.n_sessions == 1


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------

class TestGracefulDrain:
    def test_close_abort_flushes_parsed_samples(self, recognizer, tmp_path):
        """close(abort=True) mid-stream must not lose samples already
        parsed: the producer's open connection is flushed and answered,
        and the session state reflects every line sent so far."""
        sock = str(tmp_path / "drain.sock")
        engine = _engine(recognizer)

        async def run():
            config = ServeConfig(batch_max_delay=0.002,
                                 net_batch_samples=1024,
                                 net_batch_delay=5.0)
            service = IngestService(engine, config)
            async with service:
                listener = NetListener(service, uds=sock)
                await listener.start()
                reader, writer = await asyncio.open_unix_connection(sock)
                for t in range(61, 71):
                    writer.write((Sample(
                        job="inflight", node=0, time=float(t),
                        value=1.0, n_nodes=1,
                    ).to_json() + "\n").encode())
                await writer.drain()
                # No EOF: the handler is parked mid-batch (the huge
                # net_batch_delay guarantees nothing was submitted yet).
                while engine.stats.conns_active < 1:
                    await asyncio.sleep(0.001)
                await asyncio.sleep(0.05)
                await listener.close(abort=True)
                reply = json.loads(await reader.readline())
                writer.close()
                await service.drain()
                # Stream cut mid-interval: decide it from what arrived.
                state = service._sessions["inflight"]
                assert state.session.n_samples == 10
                return reply

        reply = asyncio.run(run())
        assert reply["ok"] is True
        assert reply["accepted"] == 10
        assert engine.stats.conns_active == 0
        assert engine.stats.conns_dropped == 0
        assert not os.path.exists(sock)  # close() removed the UDS file

    def test_closed_listener_refuses_new_producers(
        self, recognizer, tmp_path
    ):
        sock = str(tmp_path / "closed.sock")
        engine = _engine(recognizer)

        async def run():
            async with IngestService(engine, ServeConfig()) as service:
                listener = NetListener(service, uds=sock)
                await listener.start()
                await listener.close()
                with pytest.raises((ConnectionError, FileNotFoundError)):
                    await asyncio.open_unix_connection(sock)

        asyncio.run(run())


# ---------------------------------------------------------------------------
# CLI round trip: efd serve --uds + efd replay + SIGTERM
# ---------------------------------------------------------------------------

class TestCLI:
    def test_serve_uds_replay_sigterm_round_trip(self, tmp_path):
        from repro.cli import main

        data = str(tmp_path / "ds.npz")
        efd = str(tmp_path / "efd.json")
        stream = str(tmp_path / "stream.jsonl")
        sock = str(tmp_path / "cli.sock")
        assert main(["generate", "--out", data, "--repetitions", "2",
                     "--duration-cap", "150", "--seed", "11"]) == 0
        assert main(["fit", "--data", data, "--out", efd,
                     "--depth", "2"]) == 0

        from repro.data.io import load_dataset
        from repro.serve import interleave_records as ir

        records = list(load_dataset(data))[:4]
        with open(stream, "w", encoding="utf-8") as fh:
            for sample in ir(records, METRIC):
                fh.write(sample.to_json() + "\n")

        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root, "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--efd", efd,
             "--depth", "2", "--uds", sock, "--batch-delay", "0.002",
             "--retention-max-done", "100"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            deadline = time.time() + 30
            while not os.path.exists(sock):
                assert proc.poll() is None, proc.stdout.read()
                assert time.time() < deadline, "listener never bound its UDS"
                time.sleep(0.05)

            assert main(["replay", "--input", stream, "--uds", sock,
                         "--producers", "2", "--quiet"]) == 0

            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        assert proc.returncode == 0, out
        assert "listening on unix://" in out
        assert "verdict job=" in out
        assert "draining" in out
        assert "served 4 session(s), 4 verdict(s)" in out
        assert "connections : accepted=2" in out

    def test_replay_parser_requires_endpoint(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--input", "x.jsonl"])

    def test_serve_rejects_demo_with_listen(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--demo"):
            main(["serve", "--demo", "--uds", "/tmp/never-used.sock"])
