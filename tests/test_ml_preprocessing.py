import numpy as np
import pytest

from repro.ml.preprocessing import LabelEncoder, StandardScaler


class TestLabelEncoder:
    def test_round_trip(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(["sp", "bt", "sp", "ft"])
        assert sorted(enc.classes_.tolist()) == ["bt", "ft", "sp"]
        restored = enc.inverse_transform(codes)
        assert restored.tolist() == ["sp", "bt", "sp", "ft"]

    def test_unseen_label_raises(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError, match="unseen"):
            enc.transform(["c"])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])

    def test_bad_codes_raise(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            enc.inverse_transform([5])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            LabelEncoder().fit([])


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, (200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_passes_through(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)  # mean removed, scale 1

    def test_inverse_transform_round_trip(self):
        X = np.random.default_rng(1).normal(2, 5, (50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_with_mean_false(self):
        X = np.array([[1.0], [3.0]])
        Z = StandardScaler(with_mean=False).fit_transform(X)
        assert Z[0, 0] > 0  # mean kept

    def test_feature_count_enforced(self):
        scaler = StandardScaler().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((5, 2)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))
