"""End-to-end integration tests: the full pipeline from workload models
through telemetry to recognition, including the paper's headline claims
at reduced scale and the streaming/scheduler scenario."""

import numpy as np
import pytest

from repro.baselines.taxonomist import TaxonomistClassifier
from repro.cluster.execution import ExecutionEngine
from repro.cluster.job import Job
from repro.cluster.scheduler import Scheduler
from repro.cluster.system import Cluster
from repro.core.recognizer import EFDRecognizer
from repro.core.serialization import dictionary_from_json, dictionary_to_json
from repro.data.io import load_dataset, save_dataset
from repro.data.splits import kfold_splits
from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
from repro.experiments.protocol import make_efd_factory, run_experiment
from repro.workloads.cryptominer import make_cryptominer
from repro.workloads.registry import default_workloads
from repro.workloads.unknown import make_unknown_app


class TestHeadlineClaims:
    """Reduced-scale versions of the paper's claims (benches run full scale)."""

    def test_single_metric_two_minutes_f_high(self, small_dataset):
        # "F-scores above 95 percent ... only uses the first 2 minutes and
        # a single system metric."  The fixture runs 3 repetitions instead
        # of the public dataset's 10, which thins dictionary coverage, so
        # the reduced-scale bound is slightly looser; the full-scale claim
        # (>0.95 at 10 repetitions) is enforced by the Figure 2 benchmark.
        result = run_experiment(
            "normal_fold", small_dataset, make_efd_factory(), k=3
        )
        assert result.fscore > 0.88

    def test_generalization_not_memorization(self, small_dataset):
        # Each fold's test executions were never seen during learning.
        split = kfold_splits(small_dataset, k=3, seed=1)[0]
        train = small_dataset.subset(list(split.train_indices))
        test = small_dataset.subset(list(split.test_indices))
        recognizer = EFDRecognizer().fit(train)
        accuracy = np.mean(
            [recognizer.predict_one(r) == r.app_name for r in test]
        )
        assert accuracy > 0.9

    def test_dictionary_survives_serialization_mid_pipeline(self, small_dataset):
        split = kfold_splits(small_dataset, k=3, seed=1)[0]
        train = small_dataset.subset(list(split.train_indices))
        test = small_dataset.subset(list(split.test_indices))
        recognizer = EFDRecognizer(depth=2).fit(train)
        # Round-trip the dictionary through JSON, then keep recognizing.
        recognizer.dictionary_ = dictionary_from_json(
            dictionary_to_json(recognizer.dictionary_)
        )
        accuracy = np.mean(
            [recognizer.predict_one(r) == r.app_name for r in test]
        )
        assert accuracy > 0.85

    def test_dataset_round_trip_preserves_recognition(self, tiny_dataset, tmp_path):
        path = str(tmp_path / "ds.npz")
        save_dataset(tiny_dataset, path)
        reloaded = load_dataset(path)
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        for original, restored in zip(tiny_dataset, reloaded):
            assert recognizer.predict_one(restored) == \
                recognizer.predict_one(original)


class TestCryptominerScenario:
    """The paper's motivating misuse case, end to end."""

    def _run_miner(self, rng=0):
        engine = ExecutionEngine(metrics=["nr_mapped_vmstat"])
        return engine.run(make_cryptominer(), "X", n_nodes=4, rng=rng,
                          duration=150.0)

    def test_miner_not_recognized_as_legit_app(self, small_dataset):
        from repro.data.dataset import ExecutionRecord

        recognizer = EFDRecognizer(depth=2).fit(small_dataset)
        miner = ExecutionRecord.from_result(self._run_miner(), 9999)
        assert recognizer.predict_one(miner) == "unknown"

    def test_known_miner_recognized_on_repeat(self, small_dataset):
        from repro.data.dataset import ExecutionRecord

        recognizer = EFDRecognizer(depth=2).fit(small_dataset)
        first = ExecutionRecord.from_result(self._run_miner(rng=1), 9998)
        recognizer.partial_fit(first, label="xmr_miner_X")
        repeat = ExecutionRecord.from_result(self._run_miner(rng=2), 9999)
        assert recognizer.predict_one(repeat) == "xmr_miner"


class TestUnknownAppRobustness:
    def test_random_unknowns_mostly_flagged(self, small_dataset):
        from repro.data.dataset import ExecutionRecord

        recognizer = EFDRecognizer(depth=2).fit(small_dataset)
        engine = ExecutionEngine(metrics=["nr_mapped_vmstat"])
        unknown_count = 0
        n = 8
        for i in range(n):
            app = make_unknown_app(f"novel{i}")
            result = engine.run(app, "X", n_nodes=4, rng=i, duration=150.0)
            record = ExecutionRecord.from_result(result, 10000 + i)
            if recognizer.predict_one(record) == "unknown":
                unknown_count += 1
        # Random levels over [3000, 13000] sometimes collide with known
        # buckets — but most unknowns must be flagged.
        assert unknown_count >= n // 2

    def test_adversarial_unknown_fools_single_metric(self, small_dataset):
        # An unknown app pinned exactly on ft's fingerprint level IS
        # recognized as ft — the single-metric EFD's documented limit
        # (motivation for combinatorial fingerprints).
        from repro.data.dataset import ExecutionRecord

        recognizer = EFDRecognizer(depth=2).fit(small_dataset)
        imposter = make_unknown_app("imposter", near_app_level=6000.0)
        engine = ExecutionEngine(metrics=["nr_mapped_vmstat"])
        record = ExecutionRecord.from_result(
            engine.run(imposter, "X", n_nodes=4, rng=3, duration=150.0), 7777
        )
        assert recognizer.predict_one(record) == "ft"


class TestSchedulerIntegration:
    def test_recognize_jobs_from_schedule(self, small_dataset):
        # Jobs flow through the scheduler; each execution's telemetry is
        # recognized two simulated minutes in.
        from repro.data.dataset import ExecutionRecord

        recognizer = EFDRecognizer(depth=2).fit(small_dataset)
        workloads = default_workloads()
        cluster = Cluster(8)
        jobs = [
            Job(i, workloads.get(name), "X", n_nodes=4, submit_time=float(i * 10))
            for i, name in enumerate(["ft", "mg", "lu", "CoMD"])
        ]
        schedule = Scheduler(cluster).run(jobs)
        engine = ExecutionEngine(metrics=["nr_mapped_vmstat"])
        hits = 0
        for entry in schedule:
            result = engine.run(
                workloads.get(entry.app_name), entry.input_size,
                n_nodes=len(entry.node_ids), rng=entry.job_id,
                duration=150.0,
            )
            record = ExecutionRecord.from_result(result, 5000 + entry.job_id)
            if recognizer.predict_one(record) == entry.app_name:
                hits += 1
        assert hits == len(schedule)


class TestFailureInjection:
    def test_recognition_survives_heavy_dropout(self):
        from repro.telemetry.sampler import SamplerConfig

        config = DatasetConfig(
            metrics=("nr_mapped_vmstat",),
            repetitions=3,
            seed=21,
            duration_cap=150.0,
            apps=("ft", "mg", "lu"),
            sampler=SamplerConfig(dropout_prob=0.3),
        )
        dataset = TaxonomistDatasetGenerator(config).generate()
        recognizer = EFDRecognizer(depth=2).fit(dataset)
        accuracy = np.mean(
            [recognizer.predict_one(r) == r.app_name for r in dataset]
        )
        # 30 % sample loss barely moves a 60-sample mean.
        assert accuracy > 0.9

    def test_recognition_degrades_gracefully_under_harsh_noise(self):
        config = DatasetConfig(
            metrics=("nr_mapped_vmstat",),
            repetitions=3,
            seed=22,
            duration_cap=150.0,
            apps=("ft", "mg", "lu"),
            noise_kind="harsh",
            noise_scale=4.0,
        )
        dataset = TaxonomistDatasetGenerator(config).generate()
        recognizer = EFDRecognizer(depth=2).fit(dataset)
        predictions = [recognizer.predict_one(r) for r in dataset]
        # It may misrecognize under 16x noise, but must never crash and
        # must still produce a verdict for every record.
        assert len(predictions) == len(dataset)
        assert all(isinstance(p, str) for p in predictions)
