import numpy as np
import pytest

from repro.telemetry.timeseries import TimeSeries, interval_mean


class TestIntervalMeanFunction:
    def test_basic_window(self):
        values = np.arange(10, dtype=float)  # samples at t=0..9
        assert interval_mean(values, 2, 5) == pytest.approx(3.0)  # samples 2,3,4

    def test_clamps_to_series_bounds(self):
        values = np.ones(5)
        assert interval_mean(values, -10, 100) == 1.0

    def test_empty_window_is_nan(self):
        values = np.ones(5)
        assert np.isnan(interval_mean(values, 10, 20))

    def test_nan_samples_excluded(self):
        values = np.array([1.0, np.nan, 3.0])
        assert interval_mean(values, 0, 3) == pytest.approx(2.0)

    def test_all_nan_window_is_nan(self):
        values = np.array([np.nan, np.nan])
        assert np.isnan(interval_mean(values, 0, 2))

    def test_rejects_reversed_interval(self):
        with pytest.raises(ValueError):
            interval_mean(np.ones(5), 5, 2)

    def test_respects_t0(self):
        values = np.array([10.0, 20.0])
        # Samples at t=100 and 101; window [100, 101) holds only the first.
        assert interval_mean(values, 100, 101, t0=100.0) == 10.0


class TestTimeSeries:
    def test_duration_and_times(self):
        ts = TimeSeries(np.zeros(120))
        assert ts.duration == 120.0
        assert ts.times[0] == 0.0 and ts.times[-1] == 119.0

    def test_interval_mean_matches_function(self):
        values = np.arange(200, dtype=float)
        ts = TimeSeries(values)
        assert ts.interval_mean(60, 120) == pytest.approx(values[60:120].mean())

    def test_interval_stats(self):
        ts = TimeSeries(np.array([1.0, 2.0, 3.0, 4.0]))
        mean, std = ts.interval_stats(0, 4)
        assert mean == pytest.approx(2.5)
        assert std == pytest.approx(np.std([1, 2, 3, 4]))

    def test_slice_shares_memory(self):
        ts = TimeSeries(np.arange(100, dtype=float))
        window = ts.slice(10, 20)
        assert len(window) == 10
        assert window.t0 == 10.0
        assert np.shares_memory(window.values, ts.values)

    def test_slice_out_of_range_empty(self):
        ts = TimeSeries(np.arange(10, dtype=float))
        assert len(ts.slice(50, 60)) == 0

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            TimeSeries([1.0], period=0.0)

    def test_equality_with_nan(self):
        a = TimeSeries(np.array([1.0, np.nan]))
        b = TimeSeries(np.array([1.0, np.nan]))
        assert a == b

    def test_dropout_fraction(self):
        ts = TimeSeries(np.array([1.0, np.nan, 3.0, np.nan]))
        assert ts.dropout_fraction() == 0.5
        assert not ts.is_complete()

    def test_downsample_averages_blocks(self):
        ts = TimeSeries(np.array([1.0, 3.0, 5.0, 7.0]))
        down = ts.downsample(2)
        assert np.allclose(down.values, [2.0, 6.0])
        assert down.period == 2.0

    def test_downsample_nan_aware(self):
        ts = TimeSeries(np.array([1.0, np.nan, 5.0, 7.0]))
        down = ts.downsample(2)
        assert np.allclose(down.values, [1.0, 6.0])

    def test_downsample_factor_one_copies(self):
        ts = TimeSeries(np.arange(4, dtype=float))
        down = ts.downsample(1)
        assert down == ts
        assert not np.shares_memory(down.values, ts.values)

    def test_fill_dropout_previous(self):
        ts = TimeSeries(np.array([np.nan, 2.0, np.nan, 4.0]))
        filled = ts.fill_dropout("previous")
        assert np.allclose(filled.values, [2.0, 2.0, 2.0, 4.0])

    def test_fill_dropout_mean(self):
        ts = TimeSeries(np.array([1.0, np.nan, 3.0]))
        filled = ts.fill_dropout("mean")
        assert np.allclose(filled.values, [1.0, 2.0, 3.0])

    def test_fill_dropout_all_nan_raises(self):
        ts = TimeSeries(np.array([np.nan, np.nan]))
        with pytest.raises(ValueError):
            ts.fill_dropout("previous")

    def test_fill_dropout_unknown_method(self):
        ts = TimeSeries(np.array([1.0]))
        with pytest.raises(ValueError, match="unknown fill method"):
            ts.fill_dropout("zero")
