import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.naive_bayes import GaussianNB
from repro.ml.tree import DecisionTreeClassifier


def _blobs(n_per_class=40, spread=0.5, seed=0):
    """Three well-separated Gaussian blobs in 2-D."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [5.0, 0.0], [0.0, 5.0]])
    X = np.vstack(
        [rng.normal(c, spread, (n_per_class, 2)) for c in centers]
    )
    y = np.repeat(["a", "b", "c"], n_per_class)
    return X, y


def _xor(n=200, seed=1):
    """XOR pattern: linearly inseparable, tree-friendly."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


ALL_CLASSIFIERS = [
    lambda: DecisionTreeClassifier(random_state=0),
    lambda: RandomForestClassifier(n_estimators=15, random_state=0),
    lambda: KNeighborsClassifier(3),
    lambda: GaussianNB(),
]


class TestSharedContract:
    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_fit_predict_blobs(self, factory):
        X, y = _blobs()
        clf = factory().fit(X, y)
        assert clf.score(X, y) > 0.95

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_classes_sorted(self, factory):
        X, y = _blobs()
        clf = factory().fit(X, y)
        assert clf.classes_.tolist() == ["a", "b", "c"]

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_predict_proba_rows_sum_to_one(self, factory):
        X, y = _blobs()
        clf = factory().fit(X, y)
        proba = clf.predict_proba(X[:10])
        assert proba.shape == (10, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_unfitted_predict_raises(self, factory):
        with pytest.raises(RuntimeError):
            factory().predict(np.zeros((2, 2)))

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_feature_count_checked(self, factory):
        X, y = _blobs()
        clf = factory().fit(X, y)
        with pytest.raises(ValueError):
            clf.predict(np.zeros((2, 5)))

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_nan_input_rejected(self, factory):
        X, y = _blobs()
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            factory().fit(X, y)


class TestDecisionTree:
    def test_solves_xor(self):
        X, y = _xor()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_max_depth_limits(self):
        X, y = _xor()
        stump = DecisionTreeClassifier(max_depth=1, random_state=0).fit(X, y)
        assert stump.depth <= 1
        # A depth-1 tree cannot solve XOR.
        assert stump.score(X, y) < 0.75

    def test_min_samples_leaf_respected(self):
        X, y = _blobs(10)
        tree = DecisionTreeClassifier(min_samples_leaf=5, random_state=0).fit(X, y)
        counts = [
            n.counts.sum() for n in tree._nodes if n.is_leaf
        ]
        assert min(counts) >= 5

    def test_entropy_criterion_works(self):
        X, y = _blobs()
        tree = DecisionTreeClassifier(criterion="entropy", random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_pure_node_stops(self):
        X = np.array([[0.0], [1.0]])
        y = np.array(["a", "a"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1

    def test_constant_features_give_leaf(self):
        X = np.zeros((10, 3))
        y = np.array(["a", "b"] * 5)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1  # no valid split exists

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="mse")
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_deterministic_given_seed(self):
        X, y = _xor()
        a = DecisionTreeClassifier(max_features=1, random_state=3).fit(X, y)
        b = DecisionTreeClassifier(max_features=1, random_state=3).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))


class TestRandomForest:
    def test_beats_single_stump_on_xor(self):
        X, y = _xor(300)
        forest = RandomForestClassifier(
            n_estimators=25, random_state=0
        ).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_confidence_low_on_far_points(self):
        X, y = _blobs(spread=0.3)
        forest = RandomForestClassifier(n_estimators=25, random_state=0).fit(X, y)
        inlier_conf = forest.confidence(X[:5])
        outlier_conf = forest.confidence(np.array([[2.5, 2.5]]))
        assert inlier_conf.mean() > outlier_conf.mean()

    def test_bootstrap_off_uses_full_sample(self):
        X, y = _blobs()
        forest = RandomForestClassifier(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        assert forest.score(X, y) > 0.95

    def test_invalid_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)


class TestKNN:
    def test_one_neighbor_memorizes(self):
        X, y = _blobs(15)
        knn = KNeighborsClassifier(1).fit(X, y)
        assert knn.score(X, y) == 1.0

    def test_distance_weighting(self):
        X = np.array([[0.0], [0.1], [10.0]])
        y = np.array(["near", "near", "far"])
        knn = KNeighborsClassifier(3, weights="distance").fit(X, y)
        assert knn.predict(np.array([[0.05]]))[0] == "near"

    def test_k_larger_than_train_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(10).fit(np.zeros((3, 1)), ["a", "b", "a"])

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="gaussian")


class TestGaussianNB:
    def test_recovers_class_means(self):
        X, y = _blobs(60, spread=0.4)
        nb = GaussianNB().fit(X, y)
        assert np.allclose(nb.theta_[0], [0, 0], atol=0.3)
        assert np.allclose(nb.theta_[1], [5, 0], atol=0.3)

    def test_priors_sum_to_one(self):
        X, y = _blobs()
        nb = GaussianNB().fit(X, y)
        assert nb.class_prior_.sum() == pytest.approx(1.0)

    def test_constant_feature_survives(self):
        X = np.column_stack([np.ones(20), np.r_[np.zeros(10), np.ones(10)]])
        y = np.array(["a"] * 10 + ["b"] * 10)
        nb = GaussianNB().fit(X, y)
        assert nb.score(X, y) == 1.0

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            GaussianNB(var_smoothing=-1.0)
