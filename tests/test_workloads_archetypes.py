import numpy as np
import pytest

from repro.workloads.archetypes import (
    DEFAULT_AMPLITUDE,
    SHAPES,
    make_shape,
)


def _grid(n=600):
    return np.arange(n, dtype=float)


class TestShapeContracts:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_mean_near_one(self, name):
        # Shapes are multiplicative modulations around 1.0: the interval
        # mean must stay close to the base level (EFD's core assumption).
        shape = make_shape(name, amp=DEFAULT_AMPLITUDE[name], period=25.0, phase=0.3)
        values = shape(_grid(2000))
        assert abs(values.mean() - 1.0) < 0.05

    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_positive_everywhere(self, name):
        shape = make_shape(name, amp=DEFAULT_AMPLITUDE[name], period=25.0, phase=1.0)
        assert np.all(shape(_grid()) > 0)

    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_vectorized_matches_scalar(self, name):
        shape = make_shape(name, amp=0.1, period=20.0, phase=0.5)
        grid = _grid(50)
        full = shape(grid)
        singles = np.array([shape(np.array([t]))[0] for t in grid])
        assert np.allclose(full, singles)

    def test_plateau_is_quiet(self):
        shape = make_shape("plateau", amp=DEFAULT_AMPLITUDE["plateau"],
                           period=30.0, phase=0.0)
        values = shape(_grid())
        assert values.std() < 0.01

    def test_periodic_is_louder_than_plateau(self):
        quiet = make_shape("plateau", amp=DEFAULT_AMPLITUDE["plateau"],
                           period=30.0, phase=0.0)(_grid())
        loud = make_shape("periodic", amp=DEFAULT_AMPLITUDE["periodic"],
                          period=30.0, phase=0.0)(_grid())
        assert loud.std() > 10 * quiet.std()

    def test_ramp_monotone_then_flat(self):
        shape = make_shape("ramp", amp=0.2, period=10.0, phase=0.0)
        values = shape(_grid(200))
        assert values[0] < values[79]  # rising inside the ramp
        assert values[85] == values[199]  # saturated afterwards


class TestMakeShapeValidation:
    def test_unknown_archetype(self):
        with pytest.raises(ValueError, match="unknown archetype"):
            make_shape("sawtooth", amp=0.1, period=10.0, phase=0.0)

    def test_negative_amp(self):
        with pytest.raises(ValueError):
            make_shape("plateau", amp=-0.1, period=10.0, phase=0.0)

    def test_non_positive_period(self):
        with pytest.raises(ValueError):
            make_shape("plateau", amp=0.1, period=0.0, phase=0.0)

    def test_amplitude_defaults_cover_all_archetypes(self):
        assert set(DEFAULT_AMPLITUDE) == set(SHAPES)
