import numpy as np
import pytest

from repro.workloads.archetypes import (
    DEFAULT_AMPLITUDE,
    SHAPES,
    make_shape,
)


def _grid(n=600):
    return np.arange(n, dtype=float)


class TestShapeContracts:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_mean_near_one(self, name):
        # Shapes are multiplicative modulations around 1.0: the interval
        # mean must stay close to the base level (EFD's core assumption).
        shape = make_shape(name, amp=DEFAULT_AMPLITUDE[name], period=25.0, phase=0.3)
        values = shape(_grid(2000))
        assert abs(values.mean() - 1.0) < 0.05

    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_positive_everywhere(self, name):
        shape = make_shape(name, amp=DEFAULT_AMPLITUDE[name], period=25.0, phase=1.0)
        assert np.all(shape(_grid()) > 0)

    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_vectorized_matches_scalar(self, name):
        shape = make_shape(name, amp=0.1, period=20.0, phase=0.5)
        grid = _grid(50)
        full = shape(grid)
        singles = np.array([shape(np.array([t]))[0] for t in grid])
        assert np.allclose(full, singles)

    def test_plateau_is_quiet(self):
        shape = make_shape("plateau", amp=DEFAULT_AMPLITUDE["plateau"],
                           period=30.0, phase=0.0)
        values = shape(_grid())
        assert values.std() < 0.01

    def test_periodic_is_louder_than_plateau(self):
        quiet = make_shape("plateau", amp=DEFAULT_AMPLITUDE["plateau"],
                           period=30.0, phase=0.0)(_grid())
        loud = make_shape("periodic", amp=DEFAULT_AMPLITUDE["periodic"],
                          period=30.0, phase=0.0)(_grid())
        assert loud.std() > 10 * quiet.std()

    def test_ramp_monotone_then_flat(self):
        shape = make_shape("ramp", amp=0.2, period=10.0, phase=0.0)
        values = shape(_grid(200))
        assert values[0] < values[79]  # rising inside the ramp
        assert values[85] == values[199]  # saturated afterwards


class TestMakeShapeValidation:
    def test_unknown_archetype(self):
        with pytest.raises(ValueError, match="unknown archetype"):
            make_shape("sawtooth", amp=0.1, period=10.0, phase=0.0)

    def test_negative_amp(self):
        with pytest.raises(ValueError):
            make_shape("plateau", amp=-0.1, period=10.0, phase=0.0)

    def test_non_positive_period(self):
        with pytest.raises(ValueError):
            make_shape("plateau", amp=0.1, period=0.0, phase=0.0)

    def test_amplitude_defaults_cover_all_archetypes(self):
        assert set(DEFAULT_AMPLITUDE) == set(SHAPES)


class TestVersionedArchetypes:
    """Versioned variants: the workload side of the family cascade.

    All assertions here are on the noise-free base-level lattice, so
    they are exact; the signal-level (jittered, sampled) counterparts
    live in test_workloads_signal_stability.py.
    """

    def _nr_mapped(self):
        from repro.telemetry.metrics import default_registry

        return default_registry().get("nr_mapped_vmstat")

    def test_variant_name_round_trips_through_family_heuristic(self):
        from repro.family import split_version
        from repro.workloads.versions import make_versioned_app

        variant = make_versioned_app("ft", "2.0")
        assert variant.name == "ft-2.0"
        assert split_version(variant.name) == ("ft", "2.0")

    def test_invalid_version_strings_rejected(self):
        from repro.workloads.versions import make_versioned_app

        for bad in ("", "new", "beta-1", "v"):
            with pytest.raises(ValueError, match="version"):
                make_versioned_app("ft", bad)

    def test_drift_out_of_bounds_rejected(self):
        from repro.workloads.versions import make_versioned_app

        with pytest.raises(ValueError, match="drift"):
            make_versioned_app("ft", "1.0", drift=0.5)
        with pytest.raises(ValueError, match="drift"):
            make_versioned_app("ft", "1.0", drift=-0.1)

    def test_unknown_base_rejected(self):
        from repro.workloads.versions import make_versioned_app

        with pytest.raises(KeyError, match="unknown base"):
            make_versioned_app("no_such_app", "1.0")

    def test_drift_slots_lie_in_documented_window(self):
        from repro.workloads.versions import DRIFT_RANGE, DRIFT_SLOTS

        lo, hi = DRIFT_RANGE
        for slot in DRIFT_SLOTS:
            assert lo <= abs(slot) <= hi

    def test_consecutive_versions_drift_in_opposite_directions(self):
        from repro.workloads.versions import make_version_family

        v1, v2 = make_version_family("ft", ["1.0", "2.0"])
        assert v1.drift != v2.drift
        assert v1.drift * v2.drift < 0  # opposite signs: widest separation

    def test_hash_derived_drift_is_deterministic(self):
        from repro.workloads.versions import DRIFT_SLOTS, make_versioned_app

        first = make_versioned_app("mg", "3.1")
        second = make_versioned_app("mg", "3.1")
        assert first.drift == second.drift
        assert first.drift in DRIFT_SLOTS

    def test_base_level_is_scaled_base(self):
        from repro.workloads.nas import make_nas_app
        from repro.workloads.versions import make_versioned_app

        metric = self._nr_mapped()
        base = make_nas_app("ft")
        variant = make_versioned_app(base, "2.0", drift=0.004)
        for inp in ("X", "Y", "Z"):
            for node in range(4):
                assert variant.base_level(metric, inp, node, 4) == (
                    pytest.approx(
                        base.base_level(metric, inp, node, 4) * 1.004
                    )
                )

    def test_versions_separate_at_depth3_and_share_depth2(self):
        # The drift window's whole purpose: a new version is a NEW fine
        # key (depth 3) inside the SAME coarse bucket (depth 2).
        from repro.core.rounding import round_depth
        from repro.workloads.versions import make_version_family

        metric = self._nr_mapped()
        for family in ("ft", "mg", "sp", "xmr_miner"):
            v1, v2 = make_version_family(family, ["1.0", "2.0"])
            coarse1, coarse2 = set(), set()
            for inp in ("X", "Y", "Z"):
                for node in range(4):
                    lvl1 = v1.base_level(metric, inp, node, 4)
                    lvl2 = v2.base_level(metric, inp, node, 4)
                    assert round_depth(lvl1, 3) != round_depth(lvl2, 3), (
                        family, inp, node,
                    )
                    coarse1.add(round_depth(lvl1, 2))
                    coarse2.add(round_depth(lvl2, 2))
            assert coarse1 & coarse2, family

    def test_coarse_keys_never_cross_families(self):
        # Versions of one family share depth-2 keys with each other and
        # with NO variant of any other family — the separation the
        # coarse tier's family voting rides on.
        from repro.core.rounding import round_depth
        from repro.workloads.versions import versioned_workloads

        metric = self._nr_mapped()
        registry = versioned_workloads()
        keys = {}
        for name in registry.names():
            app = registry.get(name)
            keys[name] = {
                round_depth(app.base_level(metric, inp, node, 4), 2)
                for inp in ("X", "Y", "Z")
                for node in range(4)
            }
        for a in keys:
            family_a = a.rsplit("-", 1)[0]
            for b in keys:
                if a == b:
                    continue
                shared = keys[a] & keys[b]
                if b.rsplit("-", 1)[0] == family_a:
                    assert shared, (a, b)
                else:
                    assert not shared, (a, b)

    def test_versioned_workloads_registry_contents(self):
        from repro.workloads.versions import (
            VersionedAppModel,
            versioned_workloads,
        )

        registry = versioned_workloads()
        names = registry.names()
        assert "ft-1.0" in names and "ft-2.0" in names
        assert "xmr_miner-1.0" in names
        for name in names:
            model = registry.get(name)
            assert isinstance(model, VersionedAppModel)
            assert model.name == name
