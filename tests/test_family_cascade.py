"""Property and unit tier for the family cascade's rounding foundations.

Three concerns live here:

- **Scalar/vector rounding agreement** — the cascade projects fine keys
  with the scalar :func:`round_depth` while the columnar store rounds
  with :func:`round_depth_array`; if the two ever disagree, a key stored
  by one path is unreachable from the other.  The agreement is asserted
  *bitwise* across the whole double range: subnormals, signed zeros,
  negatives, the very top of the range, and NaN.
- **Containment direction** — the folklore claim "deepening never merges
  keys a shallower depth kept apart" is FALSE (``1.4996`` / ``1.5004``
  is a counterexample: depth 1 keeps them apart, depth 3 merges them).
  What actually holds, and what the cascade relies on, is the projection
  direction: equal fine keys have equal coarse projections, and
  projecting is idempotent per depth.
- **FamilyCascade semantics** — the three verdict outcomes, write-through
  and out-of-band learning, spec round-trips, MatchResult duck-typing,
  and the cascade counters on :class:`~repro.engine.stats.EngineStats`.
"""

import json
import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.core.matcher import match_fingerprints
from repro.core.rounding import bucket_width, round_depth, round_depth_array
from repro.engine.stats import EngineStats
from repro.family import (
    FamilyCascade,
    FamilySpec,
    FamilyVerdict,
    load_family_spec,
    save_family_spec,
    split_version,
)

# The full double range, nothing excluded: the agreement contract has no
# carve-outs.  derandomize keeps the tier-1 gate reproducible.
all_floats = st.floats(
    allow_nan=True, allow_infinity=True, allow_subnormal=True, width=64
)
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
depths = st.integers(min_value=1, max_value=25)


def _bits(x: float) -> bytes:
    return struct.pack("<d", x)


def _same_double(a: float, b: float) -> bool:
    """Bitwise equality, treating any two NaNs as equal."""
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return _bits(a) == _bits(b)


class TestScalarVectorAgreement:
    """round_depth and round_depth_array are one function, twice."""

    @settings(max_examples=300, derandomize=True)
    @given(st.lists(all_floats, min_size=1, max_size=30), depths)
    def test_bitwise_agreement(self, values, depth):
        arr = round_depth_array(np.array(values, dtype=float), depth)
        for value, vectorized in zip(values, arr):
            scalar = round_depth(value, depth)
            assert _same_double(scalar, float(vectorized)), (
                f"round_depth({value!r}, {depth}) = {scalar!r} but the "
                f"vectorized path produced {float(vectorized)!r}"
            )

    @settings(max_examples=200, derandomize=True)
    @given(all_floats, depths)
    def test_single_element_agreement(self, value, depth):
        scalar = round_depth(value, depth)
        vectorized = float(round_depth_array([value], depth)[0])
        assert _same_double(scalar, vectorized)

    @pytest.mark.parametrize("depth", [1, 2, 3, 8])
    def test_subnormals_do_not_overflow(self, depth):
        # Regression: scaling a subnormal up to the units position needs
        # 10**(depth+323), which overflowed the scalar path to an
        # OverflowError while the vectorized path silently produced NaN.
        for value in (5e-324, -5e-324, 1e-320, 2.2250738585072014e-308):
            scalar = round_depth(value, depth)
            vectorized = float(round_depth_array([value], depth)[0])
            assert math.isfinite(scalar)
            assert _same_double(scalar, vectorized)
        assert round_depth(2.2250738585072014e-308, 2) == 2.2e-308
        assert round_depth(5e-324, 1) == 5e-324

    def test_top_of_range_agreement(self):
        # Regression: 10.0 ** 301 and np.power(10.0, 301.0) differ by an
        # ulp, which made the two paths disagree on the largest double
        # at depth 8 (1.7976931e+308 vs 1.7976930999999998e+308).
        top = 1.7976931348623157e308
        assert round_depth(top, 8) == 1.7976931e308
        assert float(round_depth_array([top], 8)[0]) == 1.7976931e308
        # Rounding the top of the range *up* legitimately saturates —
        # identically and silently on both paths.
        assert round_depth(top, 1) == float("inf")
        assert float(round_depth_array([top], 1)[0]) == float("inf")

    def test_infinities_propagate_on_both_paths(self):
        for value in (float("inf"), float("-inf")):
            assert round_depth(value, 3) == value
            assert float(round_depth_array([value], 3)[0]) == value

    def test_nan_propagates_canonically(self):
        assert math.isnan(round_depth(float("nan"), 2))
        out = round_depth_array([float("nan"), 1.0], 2)
        assert math.isnan(out[0]) and out[1] == 1.0
        # Both paths canonicalize the NaN payload, so even the bitwise
        # comparison the agreement property uses would hold without the
        # both-NaN special case.
        assert _bits(round_depth(float("nan"), 2)) == _bits(float(out[0]))

    @settings(max_examples=100, derandomize=True)
    @given(depths)
    def test_negative_zero_normalizes_to_positive_zero(self, depth):
        scalar = round_depth(-0.0, depth)
        vectorized = float(round_depth_array([-0.0], depth)[0])
        assert scalar == 0.0 and math.copysign(1.0, scalar) == 1.0
        assert vectorized == 0.0 and math.copysign(1.0, vectorized) == 1.0

    @settings(max_examples=200, derandomize=True)
    @given(finite_floats, depths)
    def test_sign_symmetry_full_range(self, value, depth):
        if value == 0.0:
            # Both signed zeros normalize to +0.0, deliberately breaking
            # bitwise sign symmetry at zero (one key, not two).
            assert _bits(round_depth(value, depth)) == _bits(0.0)
            return
        assert _same_double(round_depth(-value, depth),
                            -round_depth(value, depth))


class TestContainmentDirection:
    """Which way the depth hierarchy actually nests."""

    def test_deepening_can_merge_keys_a_shallower_depth_kept_apart(self):
        # The intuitive claim is false.  1.4996 and 1.5004 straddle the
        # depth-1 boundary at 1.5 (they round to 1.0 and 2.0) yet both
        # round to 1.5 at depth 3: deepening MERGED them.
        x, y = 1.4996, 1.5004
        assert round_depth(x, 1) == 1.0
        assert round_depth(y, 1) == 2.0
        assert round_depth(x, 3) == round_depth(y, 3) == 1.5

    def test_projection_differs_from_raw_shallow_rounding(self):
        # Why the cascade probes with projections of fine keys rather
        # than raw-value roundings: double rounding crosses the 1.5
        # boundary, a raw depth-1 rounding does not.
        fine = round_depth(1.4996, 3)  # 1.5
        assert round_depth(fine, 1) == 2.0
        assert round_depth(1.4996, 1) == 1.0

    @settings(max_examples=300, derandomize=True)
    @given(finite_floats, finite_floats, depths, depths)
    def test_equal_fine_keys_have_equal_projections(self, x, y, d1, d2):
        coarse_depth, fine_depth = sorted((d1, d2))
        fx, fy = round_depth(x, fine_depth), round_depth(y, fine_depth)
        if _same_double(fx, fy):
            assert _same_double(
                round_depth(fx, coarse_depth), round_depth(fy, coarse_depth)
            )

    @settings(max_examples=300, derandomize=True)
    @given(finite_floats, depths)
    def test_rounding_is_idempotent_per_depth(self, value, depth):
        once = round_depth(value, depth)
        if math.isinf(once):  # saturated past the largest double
            assert round_depth(once, depth) == once
            return
        assert _same_double(round_depth(once, depth), once)

    @settings(max_examples=200, derandomize=True)
    @given(st.floats(min_value=1e-6, max_value=1e12), depths)
    def test_projection_stays_within_one_coarse_bucket(self, value, depth):
        # The quantitative form of containment the drift windows in
        # repro.workloads.versions rely on: projecting a fine key moves
        # it at most half a coarse bucket from the raw coarse rounding.
        fine = round_depth(value, depth + 2)
        projected = round_depth(fine, depth)
        raw = round_depth(value, depth)
        assert abs(projected - raw) <= bucket_width(value, depth) * (1 + 1e-9)


class TestDepthValidationUnified:
    """Both rounding paths validate depth first, with one error text."""

    MESSAGE = "rounding depth must be >= 1, got {got}"

    @pytest.mark.parametrize("bad", [0, -1, -37])
    def test_identical_error_text_on_all_paths(self, bad):
        expected = self.MESSAGE.format(got=bad)
        for fn, arg in (
            (round_depth, 1.0),
            (round_depth_array, np.ones(2)),
            (bucket_width, 1.0),
        ):
            with pytest.raises(ValueError) as err:
                fn(arg, bad)
            assert str(err.value) == expected

    def test_array_path_validates_before_coercion(self):
        # An uncoercible value must not turn a depth error into a
        # TypeError: validation order is part of the contract.
        with pytest.raises(ValueError) as err:
            round_depth_array(object(), 0)
        assert str(err.value) == self.MESSAGE.format(got=0)

    def test_cascade_reuses_the_shared_message(self):
        fine = ExecutionFingerprintDictionary()
        with pytest.raises(ValueError) as err:
            FamilyCascade(fine, spec=FamilySpec(), coarse_depth=0)
        assert str(err.value) == self.MESSAGE.format(got=0)
        with pytest.raises(ValueError, match="fine_depth must be >="):
            FamilyCascade(fine, spec=FamilySpec(), coarse_depth=3, fine_depth=2)


class TestSplitVersionAndSpec:
    @pytest.mark.parametrize(
        "app,family,version",
        [
            ("lammps-2.1", "lammps", "2.1"),
            ("ft-1.0", "ft", "1.0"),
            ("gromacs-v3", "gromacs", "v3"),
            ("miniAMR", "miniAMR", None),
            ("xmr_miner", "xmr_miner", None),
            ("my-app", "my-app", None),  # dash but no digit: not a version
        ],
    )
    def test_split_version(self, app, family, version):
        assert split_version(app) == (family, version)

    def test_singleton_spec_is_the_identity(self):
        spec = FamilySpec.singleton(["ft-1.0", "mg"])
        assert spec.family_of_app("ft-1.0") == "ft-1.0"
        assert spec.family_of_app("mg") == "mg"

    def test_from_apps_groups_versions(self):
        spec = FamilySpec.from_apps(["ft-1.0", "ft-2.0", "mg-1.0"])
        assert spec.families(["ft-1.0", "ft-2.0", "mg-1.0"]) == ["ft", "mg"]
        assert spec.variants_by_family(["ft-1.0", "mg-1.0", "ft-2.0"]) == {
            "ft": ["ft-1.0", "ft-2.0"],
            "mg": ["mg-1.0"],
        }

    def test_heuristic_fallback_for_unseen_apps(self):
        # A spec built from today's dictionary keeps working when a new
        # version of a known family shows up tomorrow.
        spec = FamilySpec({"ft-1.0": "ft"})
        assert spec.family_of_app("ft-9.9") == "ft"
        assert spec.version_of_app("ft-9.9") == "9.9"

    def test_family_of_label_strips_the_input_suffix(self):
        spec = FamilySpec.from_apps(["ft-1.0"])
        assert spec.family_of_label("ft-1.0_X") == "ft"

    def test_rejects_empty_entries(self):
        with pytest.raises(ValueError, match="non-empty"):
            FamilySpec({"": "ft"})
        with pytest.raises(ValueError, match="non-empty"):
            FamilySpec({"ft": ""})

    def test_spec_round_trips_through_json(self, tmp_path):
        spec = FamilySpec.from_apps(["ft-1.0", "ft-2.0", "mg-1.0"])
        path = tmp_path / "spec.json"
        save_family_spec(str(path), spec, coarse_depth=2, fine_depth=3)
        loaded, coarse_depth, fine_depth = load_family_spec(str(path))
        assert (coarse_depth, fine_depth) == (2, 3)
        assert loaded.as_dict() == spec.as_dict()

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not_a_spec.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a family spec"):
            load_family_spec(str(path))


def _fp(value, node=0, metric="nr_mapped_vmstat"):
    return Fingerprint(metric=metric, node=node, interval=(35.0, 40.0),
                       value=value)


def _build_cascade(stats=None):
    """Two families, one variant each: alpha-1.0 at 1230, beta-1.0 at 4560.

    Values are depth-3 fixed points, so training fingerprints ARE fine
    keys; coarse (depth 1) projections are 1000 and 5000.
    """
    fine = ExecutionFingerprintDictionary()
    for node in range(2):
        fine.add(_fp(1230.0, node), "alpha-1.0_X")
        fine.add(_fp(4560.0, node), "beta-1.0_X")
    return FamilyCascade(fine, coarse_depth=1, fine_depth=3, stats=stats)


class TestFamilyCascadeOutcomes:
    def test_match_carries_family_variant_and_version(self):
        cascade = _build_cascade()
        [verdict] = cascade.cascade_match([[_fp(1230.0, 0), _fp(1230.0, 1)]])
        assert verdict.outcome == "match"
        assert verdict.family == "alpha"
        assert verdict.variant == "alpha-1.0"
        assert verdict.version == "1.0"
        assert not verdict.is_unknown and not verdict.is_near_family
        assert "variant=alpha-1.0" in verdict.describe()

    def test_near_family_is_coarse_hit_fine_miss(self):
        # 1240 is a different depth-3 key but projects onto alpha's 1000.
        cascade = _build_cascade()
        [verdict] = cascade.cascade_match([[_fp(1240.0, 0), _fp(1240.0, 1)]])
        assert verdict.outcome == "near-family"
        assert verdict.family == "alpha"
        assert verdict.variant is None
        assert verdict.is_near_family and not verdict.is_unknown
        assert verdict.prediction is None  # fine tier genuinely missed
        assert "same app, new version" in verdict.describe()

    def test_unknown_when_no_family_matches(self):
        cascade = _build_cascade()
        [verdict] = cascade.cascade_match([[_fp(7890.0, 0)]])
        assert verdict.outcome == "unknown"
        assert verdict.family is None and verdict.variant is None
        assert verdict.is_unknown and not verdict.is_near_family
        assert verdict.family_ranked == () and verdict.family_votes == {}

    def test_fine_result_equals_flat_recognition(self):
        # verdict.match must be what match_fingerprints would have said,
        # for all three outcomes — coarse pruning only skips guaranteed
        # misses.
        cascade = _build_cascade()
        probes = [
            [_fp(1230.0, 0), _fp(1230.0, 1)],          # match
            [_fp(1240.0, 0)],                          # near-family
            [_fp(7890.0, 0)],                          # unknown
            [_fp(1230.0, 0), None, _fp(4560.0, 1)],   # tie + missing node
        ]
        verdicts = cascade.cascade_match(probes)
        for fps, verdict in zip(probes, verdicts):
            flat = match_fingerprints(cascade.fine, fps)
            assert verdict.match.ranked == flat.ranked
            assert verdict.match.votes == flat.votes
            assert verdict.match.matched_labels == flat.matched_labels
            assert verdict.match.n_fingerprints == flat.n_fingerprints
            assert verdict.match.n_missing == flat.n_missing

    def test_verdict_duck_types_as_match_result(self):
        cascade = _build_cascade()
        [verdict] = cascade.cascade_match([[_fp(1230.0, 0), _fp(1230.0, 1)]])
        flat = match_fingerprints(cascade.fine, [_fp(1230.0, 0), _fp(1230.0, 1)])
        assert isinstance(verdict, FamilyVerdict)
        assert verdict.prediction == flat.prediction
        assert verdict.ranked == flat.ranked
        assert verdict.confidence() == flat.confidence()
        assert verdict.is_tie == flat.is_tie
        assert verdict.n_fingerprints == flat.n_fingerprints


class TestFamilyCascadeLearning:
    def test_write_through_learn_updates_both_tiers(self):
        cascade = _build_cascade()
        before = cascade.coarse_stats()
        n = cascade.learn([_fp(8880.0, 0), None, _fp(8880.0, 1)], "gamma-2.0_Y")
        assert n == 2
        [verdict] = cascade.cascade_match([[_fp(8880.0, 0)]])
        assert verdict.outcome == "match" and verdict.family == "gamma"
        after = cascade.coarse_stats()
        assert after["families"] == before["families"] + 1
        assert after["variants"] == before["variants"] + 1

    def test_out_of_band_learn_triggers_resync(self):
        cascade = _build_cascade()
        # Bypass the cascade: write to the fine tier directly.
        cascade.fine.add(_fp(8880.0, 0), "gamma-2.0_Y")
        assert cascade.fine.version != cascade._synced_version
        [verdict] = cascade.cascade_match([[_fp(8880.0, 0)]])
        assert verdict.outcome == "match" and verdict.family == "gamma"
        assert cascade.fine.version == cascade._synced_version

    def test_new_version_of_known_family_becomes_near_family(self):
        # The scenario the hierarchy exists for, end to end: alpha-2.0
        # is unseen, its fingerprints are near alpha-1.0's.
        cascade = _build_cascade()
        [verdict] = cascade.cascade_match([[_fp(1220.0, 0), _fp(1220.0, 1)]])
        assert verdict.outcome == "near-family"
        assert verdict.family == "alpha"
        # After learning the new version, the same probe is a match.
        cascade.learn([_fp(1220.0, 0), _fp(1220.0, 1)], "alpha-2.0_X")
        [verdict] = cascade.cascade_match([[_fp(1220.0, 0), _fp(1220.0, 1)]])
        assert verdict.outcome == "match"
        assert verdict.variant == "alpha-2.0" and verdict.version == "2.0"


class TestCascadeStats:
    def test_counters_record_hits_shortcircuits_and_near(self):
        stats = EngineStats()
        cascade = _build_cascade(stats=stats)
        cascade.cascade_match([
            [_fp(1230.0, 0), _fp(1230.0, 1)],  # 2 coarse hits, refined
            [_fp(1240.0, 0)],                  # coarse hit, near-family
            [_fp(7890.0, 0)],                  # short-circuit
        ])
        assert stats.family_coarse_hits == 3
        assert stats.family_shortcircuits == 1
        assert stats.family_near == 1
        # Unique fine keys that needed refinement: 1230 on each of two
        # nodes, plus 1240 (a fingerprint's node is part of its key).
        assert stats.family_refinements == 3
        assert stats.cascading
        assert 0.0 < stats.coarse_absorption < 1.0

    def test_absorption_is_zero_safe_and_round_trips(self):
        stats = EngineStats()
        assert not stats.cascading
        assert stats.coarse_absorption == 0.0
        stats.record_cascade(coarse_hits=6, short_circuits=4, refinements=2,
                             near_family=1)
        assert stats.coarse_absorption == pytest.approx(1 - 2 / 10)
        clone = EngineStats.from_dict(stats.as_dict())
        assert clone.family_coarse_hits == 6
        assert clone.family_shortcircuits == 4
        assert clone.family_refinements == 2
        assert clone.family_near == 1
        assert "cascade" in stats.render()

    def test_idle_stats_render_without_cascade_block(self):
        assert "cascade" not in EngineStats().render()
