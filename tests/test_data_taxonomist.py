import numpy as np
import pytest

from repro.data.taxonomist import (
    DatasetConfig,
    PUBLIC_REPETITIONS,
    TaxonomistDatasetGenerator,
    generate_dataset,
)


class TestDatasetConfig:
    def test_defaults_match_public_subset(self):
        cfg = DatasetConfig()
        assert cfg.repetitions == PUBLIC_REPETITIONS == 10
        assert cfg.n_nodes == 4
        assert cfg.metrics == ("nr_mapped_vmstat",)

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetConfig(repetitions=0)
        with pytest.raises(ValueError):
            DatasetConfig(metrics=())
        with pytest.raises(ValueError):
            DatasetConfig(duration_cap=-5.0)


class TestGenerator:
    def test_shape_matches_table2(self, small_dataset):
        summary = small_dataset.summary()
        assert len(summary["applications"]) == 11
        assert summary["pairs"] == 37           # 11*3 + 4 starred with L
        assert summary["node_count"] == 4
        assert summary["executions"] == 37 * 3  # 3 reps in the fixture

    def test_deterministic_in_seed(self):
        cfg = DatasetConfig(repetitions=1, duration_cap=130.0,
                            apps=("ft",), seed=3)
        a = TaxonomistDatasetGenerator(cfg).generate()
        b = TaxonomistDatasetGenerator(cfg).generate()
        assert a.records[0].series("nr_mapped_vmstat", 0) == \
            b.records[0].series("nr_mapped_vmstat", 0)

    def test_different_seeds_differ(self):
        a = generate_dataset(repetitions=1, seed=1, duration_cap=130.0,
                             apps=("ft",))
        b = generate_dataset(repetitions=1, seed=2, duration_cap=130.0,
                             apps=("ft",))
        assert not np.array_equal(
            a.records[0].series("nr_mapped_vmstat", 0).values,
            b.records[0].series("nr_mapped_vmstat", 0).values,
        )

    def test_adding_metrics_keeps_existing_series(self):
        # Determinism contract: telemetry derives from (seed, app, input,
        # rep, metric), so widening the metric set must not change the
        # already-present metric's series.
        one = generate_dataset(repetitions=1, seed=5, duration_cap=130.0,
                               apps=("mg",))
        two = generate_dataset(
            metrics=("nr_mapped_vmstat", "Active_meminfo"),
            repetitions=1, seed=5, duration_cap=130.0, apps=("mg",),
        )
        assert one.records[0].series("nr_mapped_vmstat", 2) == \
            two.records[0].series("nr_mapped_vmstat", 2)

    def test_apps_filter(self, tiny_dataset):
        assert tiny_dataset.app_names() == ["ft", "mg", "lu", "CoMD"]

    def test_inputs_filter(self):
        ds = generate_dataset(repetitions=1, duration_cap=130.0,
                              apps=("miniAMR",), inputs=("X", "L"))
        assert {r.input_size for r in ds} == {"X", "L"}

    def test_inputs_filter_respects_availability(self):
        # ft has no L input; asking for L must simply produce none for ft.
        ds = generate_dataset(repetitions=1, duration_cap=130.0,
                              apps=("ft",), inputs=("X", "L"))
        assert {r.input_size for r in ds} == {"X"}

    def test_duration_cap_respected(self, small_dataset):
        assert all(r.duration <= 160.0 for r in small_dataset)

    def test_invalid_metric_rejected_early(self):
        with pytest.raises(KeyError):
            TaxonomistDatasetGenerator(DatasetConfig(metrics=("bogus",)))

    def test_rep_indices_recorded(self, tiny_dataset):
        reps = {r.rep_index for r in tiny_dataset}
        assert reps == {0, 1, 2}

    def test_interval_means_cluster_per_app(self, tiny_dataset):
        # All repetitions of one (app, input, node) land within a tight
        # relative band — the property the EFD depends on.
        by_key = {}
        for record in tiny_dataset:
            mean = record.interval_mean("nr_mapped_vmstat", 0, 60, 120)
            by_key.setdefault((record.app_name, record.input_size), []).append(mean)
        for key, means in by_key.items():
            spread = (max(means) - min(means)) / np.mean(means)
            assert spread < 0.05, (key, means)
