"""Protocol v2: the binary probe codec, negotiation, and filter mirrors.

Three layers of coverage for the v2 wire path in
:mod:`repro.engine.remote` / :mod:`repro._util.framing`:

- **codec**: encode/decode round trips for every v2 frame type, and
  hostile payloads (truncated columns, bad version bytes, trailing
  garbage) raising :class:`~repro._util.framing.FramingError` by name;
- **client**: a live v2 client against rogue servers that answer the
  handshake correctly and then reply with corrupted binary frames —
  every bucket must come back *degraded with a named reason*, never a
  traceback, and the host stays breaker-healthy (it answered);
- **interop**: a v2 client against a v1-only server downgrades
  transparently via the hello handshake and still answers exactly,
  and ``protocol="json"`` pins v1 against a v2 server.

The healthy-path equivalence matrix lives in
``tests/test_engine_properties.py``; fault sweeps over the transport
live in ``tests/test_faultinject.py``.
"""

from __future__ import annotations

import json
import random
import socket
import threading

import numpy as np
import pytest

from repro._util import framing
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.engine import ShardedDictionary
from repro.engine.remote import (
    CircuitBreaker,
    RemoteOpError,
    RemoteShardBackend,
    ShardServer,
    ShardServerThread,
)
from repro.engine.sharded import shard_index
from repro.engine.stats import EngineStats


def _fp(i: int) -> Fingerprint:
    return Fingerprint(
        metric=f"m{i % 2}",
        node=i % 4,
        interval=(0.0, 60.0) if i % 3 else (60.0, 120.0),
        value=float(i) * 50.0,
    )


def _seed_stores(n_hosts: int, n_shards: int = 3, n_keys: int = 60):
    flat = ExecutionFingerprintDictionary()
    stores = [ShardedDictionary(n_shards) for _ in range(n_hosts)]
    for i in range(n_keys):
        label = f"app{i % 5}_X"
        flat.add(_fp(i), label)
        for store in stores:
            store.add(_fp(i), label)
    return flat, stores


def _client(specs, **kwargs) -> RemoteShardBackend:
    kwargs.setdefault("n_shards", 3)
    kwargs.setdefault("rng", random.Random(0))
    kwargs.setdefault("stats", EngineStats())
    return RemoteShardBackend(specs, **kwargs)


# ---------------------------------------------------------------------------
# Codec round trips and hostile payloads (no sockets)
# ---------------------------------------------------------------------------

class TestV2Codec:
    def _request(self, n=5, counts=False, ext=None):
        return framing.encode_probe_request(
            request_id=7,
            shard=2,
            metric_id=np.arange(n, dtype="<i4"),
            interval_id=np.zeros(n, dtype="<i4"),
            node=np.arange(n, dtype="<i8") * 3,
            value=np.linspace(0.0, 1.0, n).astype("<f8"),
            table_ext=ext,
            counts=counts,
        )

    def test_probe_request_round_trip(self):
        ext = {"metrics": ["m9"], "intervals": [[0.0, 30.0]]}
        req = framing.decode_probe_request(self._request(ext=ext, counts=True))
        assert req["request_id"] == 7
        assert req["shard"] == 2
        assert req["counts"] is True
        assert req["ext"] == ext
        assert req["metric_id"].tolist() == [0, 1, 2, 3, 4]
        assert req["node"].tolist() == [0, 3, 6, 9, 12]
        assert req["value"][-1] == 1.0

    def test_probe_reply_round_trip_with_counts(self):
        raw = framing.encode_probe_reply(
            request_id=11,
            store_version=42,
            match_counts=np.array([2, 0, 1], dtype="<u4"),
            label_ids=np.array([0, 1, 1], dtype="<i4"),
            new_labels=["app0_X", "app1_X"],
            label_counts=np.array([3, 1, 5], dtype="<u8"),
        )
        assert framing.is_v2_frame(raw)
        rep = framing.decode_probe_reply(raw)
        assert rep["request_id"] == 11
        assert rep["store_version"] == 42
        assert rep["match_counts"].tolist() == [2, 0, 1]
        assert rep["label_ids"].tolist() == [0, 1, 1]
        assert rep["label_counts"].tolist() == [3, 1, 5]
        assert rep["new_labels"] == ["app0_X", "app1_X"]

    def test_filters_round_trip(self):
        req_id, shards = framing.decode_filters_request(
            framing.encode_filters_request(3, [2, 0])
        )
        assert req_id == 3
        assert shards == [0, 2]  # canonicalized order
        raw = framing.encode_filters_reply(
            4, 9, [(0, b"\x01\x02"), (2, b"")],
            {"metrics": ["m0"], "intervals": [[0.0, 60.0]]},
        )
        rep = framing.decode_filters_reply(raw)
        assert rep["request_id"] == 4
        assert rep["store_version"] == 9
        assert rep["filters"] == [(0, b"\x01\x02"), (2, b"")]
        assert rep["tables"]["metrics"] == ["m0"]

    def test_json_frames_are_never_v2(self):
        assert not framing.is_v2_frame(json.dumps({"op": "ping"}).encode())

    @pytest.mark.parametrize("cut,what", [
        (4, "value column"),       # tail of the last column
        (200, "metric id column"),  # most of every column
    ])
    def test_truncated_request_columns_raise_by_name(self, cut, what):
        raw = self._request(n=8)
        with pytest.raises(framing.FramingError, match="truncated"):
            framing.decode_probe_request(raw[:-cut])

    def test_wrong_version_byte_raises_by_name(self):
        raw = bytearray(self._request())
        raw[4] = 9  # version byte follows the 4-byte magic
        with pytest.raises(framing.FramingError, match="version byte 9"):
            framing.decode_probe_request(bytes(raw))

    def test_trailing_garbage_is_a_length_mismatch(self):
        raw = self._request() + b"xx"
        with pytest.raises(framing.FramingError, match="length mismatch"):
            framing.decode_probe_request(raw)

    def test_reply_label_column_shorter_than_counts(self):
        # match_counts promise 3 label ids; only 1 shipped.
        raw = framing.encode_probe_reply(
            0, 1, np.array([3], dtype="<u4"), np.array([0], dtype="<i4")
        )
        with pytest.raises(framing.FramingError, match="label-id column"):
            framing.decode_probe_reply(raw)

    def test_wrong_op_raises_by_name(self):
        raw = self._request()
        with pytest.raises(framing.FramingError, match="probe reply"):
            framing.decode_probe_reply(raw)

    def test_header_shorter_than_fixed_size(self):
        with pytest.raises(framing.FramingError, match="shorter than"):
            framing.v2_header(framing.V2_MAGIC + b"\x02")


# ---------------------------------------------------------------------------
# Hostile v2 replies through a live client: degrade by name, no traceback
# ---------------------------------------------------------------------------

def _valid_reply(request_id: int, n: int) -> bytes:
    """A structurally perfect all-miss reply for an ``n``-key probe."""
    return framing.encode_probe_reply(
        request_id, 1, np.zeros(n, dtype="<u4"), np.empty(0, dtype="<i4")
    )


def _mut_version_byte(valid: bytes, n: int) -> bytes:
    raw = bytearray(valid)
    raw[4] = 9
    return bytes(raw)


def _mut_truncate_columns(valid: bytes, n: int) -> bytes:
    # Promise n matched labels, ship an empty label-id column.
    return framing.encode_probe_reply(
        framing.decode_probe_reply(valid)["request_id"],
        1, np.ones(n, dtype="<u4"), np.empty(0, dtype="<i4"),
    )


def _mut_count_mismatch(valid: bytes, n: int) -> bytes:
    return framing.encode_probe_reply(
        framing.decode_probe_reply(valid)["request_id"],
        1, np.zeros(n - 1, dtype="<u4"), np.empty(0, dtype="<i4"),
    )


def _mut_label_id_out_of_range(valid: bytes, n: int) -> bytes:
    # One match per key, every label id far beyond the table.
    return framing.encode_probe_reply(
        framing.decode_probe_reply(valid)["request_id"],
        1, np.ones(n, dtype="<u4"), np.full(n, 99, dtype="<i4"),
    )


def _mut_trailing_garbage(valid: bytes, n: int) -> bytes:
    return valid + b"\x00\x00"


class _RogueV2Server:
    """A server that negotiates v2 flawlessly, then answers every probe
    with ``mutate(valid_reply)`` — the client must degrade the bucket
    with a named reason, never traceback, and never blame the host."""

    def __init__(self, mutate):
        self.mutate = mutate
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.listener.settimeout(0.1)
        self.port = self.listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(5.0)
            threading.Thread(
                target=self._answer, args=(conn,), daemon=True
            ).start()

    def _answer(self, conn):
        with conn:
            try:
                while True:
                    raw = framing.recv_frame_sock(conn)
                    if raw is None:
                        return
                    if not framing.is_v2_frame(raw):
                        msg = framing.parse_json(raw)
                        assert msg.get("op") == "hello"
                        framing.send_frame_sock(conn, json.dumps({
                            "ok": True, "proto": 2, "labels": ["app0_X"],
                            "version": 1, "n_shards": 1, "shards": [0],
                        }).encode("utf-8"))
                        continue
                    req = framing.decode_probe_request(raw)
                    n = len(req["node"])
                    framing.send_frame_sock(
                        conn, self.mutate(_valid_reply(req["request_id"], n), n)
                    )
            except (OSError, framing.FramingError):
                pass

    def close(self):
        self.listener.close()
        self._thread.join(timeout=5.0)


class TestHostileV2Replies:
    @pytest.mark.parametrize("mutate,named_reason", [
        (_mut_version_byte, "version byte"),
        (_mut_truncate_columns, "truncated"),
        (_mut_count_mismatch, "match counts"),
        (_mut_label_id_out_of_range, "label id out of table range"),
        (_mut_trailing_garbage, "length mismatch"),
    ])
    def test_corrupt_reply_degrades_with_named_reason(
        self, mutate, named_reason
    ):
        server = _RogueV2Server(mutate)
        try:
            remote = _client(
                [f"all@127.0.0.1:{server.port}"], n_shards=1,
                deadline=2.0, try_timeout=0.5, retries=0,
                sync_tables=False, filter_mirrors=False,
            )
            probes = [_fp(i) for i in range(5)]
            verdicts = remote.probe_many(probes)
            assert all(v.degraded for v in verdicts)
            assert all("malformed" in v.reason for v in verdicts)
            assert all(named_reason in v.reason for v in verdicts)
            assert set(remote.last_degraded) == set(probes)
            stats = remote.engine_stats
            assert stats.remote_degraded == len(probes)
            # The host *answered* — garbage is a protocol bug, not an
            # outage, so the breaker must not move toward open.
            assert remote.hosts[0].breaker.state == CircuitBreaker.CLOSED
            remote.close()
        finally:
            server.close()

    def test_sane_second_connection_recovers(self):
        """Degrading evicts the poisoned connection; the next batch
        redials and a now-sane server answers normally."""
        state = {"corrupt": True}

        def sometimes(valid, n):
            return _mut_trailing_garbage(valid, n) if state["corrupt"] \
                else valid

        server = _RogueV2Server(sometimes)
        try:
            remote = _client(
                [f"all@127.0.0.1:{server.port}"], n_shards=1,
                deadline=2.0, try_timeout=0.5, retries=0,
                sync_tables=False, filter_mirrors=False,
            )
            probes = [_fp(i) for i in range(5)]
            assert all(v.degraded for v in remote.probe_many(probes))
            state["corrupt"] = False
            verdicts = remote.probe_many(probes)
            assert all(not v.degraded for v in verdicts)
            assert all(v.labels == [] for v in verdicts)
            assert remote.engine_stats.remote_pool_redials >= 2
            remote.close()
        finally:
            server.close()


# ---------------------------------------------------------------------------
# v1 <-> v2 interop: the hello downgrade and the json pin
# ---------------------------------------------------------------------------

class TestProtocolInterop:
    def test_v1_only_server_downgrades_transparently(self, monkeypatch):
        """A pre-v2 server answers the hello with its stock unknown-op
        error reply; the client pins the endpoint to v1 on the same
        socket and keeps answering exactly over JSON."""
        def legacy_hello(self, msg, state=None):
            raise RemoteOpError("unknown op 'hello'")

        monkeypatch.setattr(ShardServer, "_op_hello", legacy_hello)
        flat, stores = _seed_stores(1)
        thread = ShardServerThread(stores[0], n_shards=3).start()
        try:
            remote = _client(
                [f"all@{thread.endpoint}"], deadline=3.0, try_timeout=1.0,
            )
            probes = [_fp(i) for i in range(0, 80, 2)]
            verdicts = remote.probe_many(probes, counts=True)
            assert not any(v.degraded for v in verdicts)
            for probe, verdict in zip(probes, verdicts):
                assert verdict.labels == flat.lookup(probe)
                assert verdict.counts == flat.lookup_counts(probe)
            assert remote._host_proto[thread.endpoint] == 1
            # No filter sidecars on v1: warming reports not-warm, and
            # the probe path keeps working without mirrors.
            assert remote.warm_filter_mirrors(timeout=1.0) is False
            assert remote.lookup_many(probes) == [
                flat.lookup(p) for p in probes
            ]
            assert remote.engine_stats.remote_degraded == 0
            remote.close()
        finally:
            thread.stop()

    def test_json_pin_skips_the_handshake(self):
        flat, stores = _seed_stores(1)
        thread = ShardServerThread(stores[0], n_shards=3).start()
        try:
            remote = _client(
                [f"all@{thread.endpoint}"], deadline=3.0, try_timeout=1.0,
                protocol="json",
            )
            probes = [_fp(i) for i in range(40)]
            assert remote.lookup_many(probes) == [
                flat.lookup(p) for p in probes
            ]
            assert remote.engine_stats.remote_degraded == 0
            remote.close()
        finally:
            thread.stop()

    def test_v2_negotiation_and_pipelining_stay_exact(self):
        """Tiny pipeline chunks force many in-flight frames per bucket;
        answers must stay element-wise exact and the pool must reuse
        sockets across batches."""
        flat, stores = _seed_stores(1)
        thread = ShardServerThread(stores[0], n_shards=3).start()
        try:
            remote = _client(
                [f"all@{thread.endpoint}"], deadline=5.0, try_timeout=2.0,
                pipeline_chunk=4,
            )
            probes = [_fp(i) for i in range(100)]  # 60 hits, 40 misses
            for _ in range(3):
                verdicts = remote.probe_many(probes, counts=True)
                assert [v.labels for v in verdicts] == [
                    flat.lookup(p) for p in probes
                ]
                assert [v.counts for v in verdicts] == [
                    flat.lookup_counts(p) for p in probes
                ]
            assert remote._host_proto[thread.endpoint] == 2
            stats = remote.engine_stats
            assert stats.remote_bytes_sent > 0
            assert stats.remote_bytes_received > 0
            assert stats.remote_encode_s >= 0.0
            assert stats.remote_decode_s >= 0.0
            assert stats.remote_pool_reuses >= 2  # batches 2 and 3
            assert stats.remote_pool_checkouts == (
                stats.remote_pool_reuses + stats.remote_pool_redials
            )
            remote.close()
        finally:
            thread.stop()

    def test_unseen_strings_extend_tables_in_band(self):
        """Metrics/intervals the hello never mentioned ride the probe
        frame's table extension; labels born after the handshake come
        back via the reply's new-label table.  (Mirrors off: the write
        below bypasses the client, and a warm mirror would correctly
        short-circuit the key before it exercised the wire path.)"""
        flat, stores = _seed_stores(1)
        thread = ShardServerThread(stores[0], n_shards=3).start()
        try:
            remote = _client(
                [f"all@{thread.endpoint}"], deadline=3.0, try_timeout=1.0,
                filter_mirrors=False,
            )
            remote.probe_many([_fp(0)])  # connection negotiated
            novel = Fingerprint("m_brand_new", 0, (5.0, 95.0), 123.0)
            stores[0].add(novel, "late_label_X")
            flat.add(novel, "late_label_X")
            verdicts = remote.probe_many([novel, _fp(1), _fp(999)])
            assert [v.labels for v in verdicts] == [
                ["late_label_X"], flat.lookup(_fp(1)), []
            ]
            remote.close()
        finally:
            thread.stop()


# ---------------------------------------------------------------------------
# Filter mirrors: lifecycle, write-through, staleness
# ---------------------------------------------------------------------------

class TestFilterMirrors:
    def _fleet(self, stores):
        return [
            ShardServerThread(stores[k], n_shards=3, shards=[k]).start()
            for k in range(3)
        ]

    def test_warm_mirrors_resolve_misses_without_the_wire(self):
        flat, stores = _seed_stores(3)
        threads = self._fleet(stores)
        try:
            remote = _client(
                [f"{k}@{threads[k].endpoint}" for k in range(3)],
                deadline=3.0, try_timeout=1.0,
            )
            assert remote.warm_filter_mirrors()
            stats = remote.engine_stats
            keys_before = stats.remote_keys
            misses = [_fp(1000 + i) for i in range(30)]
            verdicts = remote.probe_many(misses)
            assert all(v.labels == [] and not v.degraded for v in verdicts)
            # Every key is either resolved from the mirrors or (a Bloom
            # false positive) billed to the wire — and the wire share is
            # the small tail, not the rule.
            wired = stats.remote_keys - keys_before
            assert stats.filter_mirror_hits + wired == len(misses)
            assert stats.filter_mirror_hits >= 0.8 * len(misses)
            remote.close()
        finally:
            for thread in threads:
                thread.stop()

    def test_write_through_keeps_new_keys_probeable(self):
        """A key added through this client must not short-circuit as
        absent on the next probe: the write-through inserts it into the
        owning shard's mirror."""
        flat, stores = _seed_stores(3)
        threads = self._fleet(stores)
        try:
            remote = _client(
                [f"{k}@{threads[k].endpoint}" for k in range(3)],
                deadline=3.0, try_timeout=1.0,
            )
            assert remote.warm_filter_mirrors()
            fresh = Fingerprint("m_fresh", 7, (60.0, 120.0), 777.0)
            assert remote.lookup(fresh) == []  # a mirror-resolved miss
            remote.add(fresh, "fresh_app_X")
            assert remote.lookup(fresh) == ["fresh_app_X"]
            # Mirrors stayed fresh: the client's own write advanced the
            # versions it already knows about.
            with remote._mirror_lock:
                assert all(m.fresh for m in remote._mirrors.values())
            remote.close()
        finally:
            for thread in threads:
                thread.stop()

    def test_out_of_band_write_stales_then_refetches(self):
        """A writer bypassing this client advances the store version;
        the next probe reply's version marks that host's mirrors stale,
        disabling the local fast path until a refetch lands."""
        flat, stores = _seed_stores(3)
        threads = self._fleet(stores)
        try:
            remote = _client(
                [f"{k}@{threads[k].endpoint}" for k in range(3)],
                deadline=3.0, try_timeout=1.0,
            )
            assert remote.warm_filter_mirrors()
            sneaky = Fingerprint("m_sneaky", 3, (60.0, 120.0), 31337.0)
            shard = shard_index(sneaky, 3)
            stores[shard].add(sneaky, "sneaky_app_X")  # behind our back
            # A probe that crosses the wire to that shard reports the
            # new store version and stales its mirror.
            hit = next(p for p in (_fp(i) for i in range(60))
                       if shard_index(p, 3) == shard)
            assert remote.lookup(hit)
            with remote._mirror_lock:
                assert not remote._mirrors[shard].fresh
            # Stale mirrors mean no local short-circuit: the sneaky key
            # goes over the wire and is found.
            assert remote.lookup(sneaky) == ["sneaky_app_X"]
            # Refetch restores the fast path with the key present.
            assert remote.warm_filter_mirrors()
            with remote._mirror_lock:
                assert all(m.fresh for m in remote._mirrors.values())
            assert remote.lookup(sneaky) == ["sneaky_app_X"]
            remote.close()
        finally:
            for thread in threads:
                thread.stop()


# ---------------------------------------------------------------------------
# EngineStats: the v2 counters survive the round trip and render
# ---------------------------------------------------------------------------

class TestV2StatsRoundTrip:
    def test_wire_pool_and_mirror_counters_round_trip(self):
        stats = EngineStats()
        stats.record_remote_wire(1200, 3400)
        stats.record_remote_wire(100, 0)
        stats.record_remote_codec(0.25, 0.5)
        stats.record_pool_checkout(False)
        stats.record_pool_checkout(True)
        stats.record_pool_checkout(True)
        stats.record_filter_mirror_hits(17)
        clone = EngineStats.from_dict(stats.as_dict())
        assert clone.remote_bytes_sent == 1300
        assert clone.remote_bytes_received == 3400
        assert clone.remote_encode_s == 0.25
        assert clone.remote_decode_s == 0.5
        assert clone.remote_pool_checkouts == 3
        assert clone.remote_pool_reuses == 2
        assert clone.remote_pool_redials == 1
        assert clone.filter_mirror_hits == 17
        assert clone.as_dict() == stats.as_dict()

    def test_wire_counters_render_in_the_remote_block(self):
        stats = EngineStats()
        stats.record_remote_wire(10, 20)
        stats.record_pool_checkout(False)
        stats.record_filter_mirror_hits(2)
        rendered = stats.render()
        assert "remote wire" in rendered
        assert "remote pool" in rendered
        assert "mirror_hits=2" in rendered

    def test_empty_stats_omit_the_remote_block(self):
        assert "remote wire" not in EngineStats().render()
