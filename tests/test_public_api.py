"""Public API surface tests: what a downstream user imports must exist,
be documented, and behave consistently."""

import inspect

import pytest

import repro
from repro import core, data, experiments, ml, telemetry, workloads


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_key_classes_exported(self):
        for name in (
            "EFDRecognizer",
            "ExecutionFingerprintDictionary",
            "Fingerprint",
            "TaxonomistClassifier",
            "StreamingRecognizer",
            "DeviationDetector",
            "UsagePredictor",
        ):
            assert name in repro.__all__, name

    def test_subpackage_all_resolve(self):
        for module in (core, data, experiments, ml, telemetry, workloads):
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), (module.__name__, name)


class TestDocstrings:
    def test_every_public_export_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_public_methods_documented(self):
        from repro.core.recognizer import EFDRecognizer

        for name, member in inspect.getmembers(EFDRecognizer):
            if name.startswith("_") or not callable(member):
                continue
            assert member.__doc__, f"EFDRecognizer.{name} lacks a docstring"

    def test_subpackages_documented(self):
        for module in (core, data, experiments, ml, telemetry, workloads):
            assert module.__doc__ and len(module.__doc__) > 50, module.__name__


class TestApiConsistency:
    def test_recognizers_share_predict_contract(self, tiny_dataset):
        """Every recognizer accepts a dataset and returns aligned labels."""
        from repro.baselines.nearest import NearestCentroidRecognizer
        from repro.core.multimetric import MultiMetricRecognizer
        from repro.core.recognizer import EFDRecognizer
        from repro.core.temporal import MultiIntervalRecognizer

        recognizers = [
            EFDRecognizer(depth=2),
            MultiMetricRecognizer(["nr_mapped_vmstat"], depth=2),
            MultiIntervalRecognizer(intervals=[(60.0, 120.0)], depth=2),
            NearestCentroidRecognizer(),
        ]
        for recognizer in recognizers:
            recognizer.fit(tiny_dataset)
            out = recognizer.predict(tiny_dataset)
            assert isinstance(out, list)
            assert len(out) == len(tiny_dataset)
            single = recognizer.predict(tiny_dataset[0])
            assert isinstance(single, str)

    def test_unknown_label_configurable_everywhere(self, tiny_dataset):
        from repro.core.recognizer import EFDRecognizer

        recognizer = EFDRecognizer(depth=2, unknown_label="???").fit(tiny_dataset)
        # An interval beyond the data forces an unknown verdict.
        recognizer.interval = (900.0, 960.0)
        assert recognizer.predict_one(tiny_dataset[0]) == "???"
