import numpy as np
import pytest

from repro._util.rng import derive_rng
from repro.telemetry.noise import (
    CompositeNoise,
    DriftNoise,
    InitPhasePerturbation,
    SpikeNoise,
    WhiteNoise,
    default_noise,
    make_noise,
)


def _times(n=600):
    return np.arange(n, dtype=float)


class TestWhiteNoise:
    def test_shape_and_scale(self):
        noise = WhiteNoise(rel_std=1.0).sample(_times(), 10.0, derive_rng(0))
        assert noise.shape == (600,)
        assert 8.0 < noise.std() < 12.0

    def test_zero_scale_is_silent(self):
        noise = WhiteNoise(rel_std=0.0).sample(_times(), 10.0, derive_rng(0))
        assert np.all(noise == 0.0)

    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            WhiteNoise(rel_std=-1.0)


class TestDriftNoise:
    def test_survives_averaging(self):
        # The drift's *window mean* should have std comparable to scale,
        # unlike white noise whose mean shrinks with 1/sqrt(n).
        means = []
        for i in range(200):
            drift = DriftNoise(rel_std=1.0).sample(_times(60), 5.0, derive_rng(i))
            means.append(drift.mean())
        assert np.std(means) > 1.0  # white noise would give ~5/sqrt(60)=0.6

    def test_empty_input(self):
        assert len(DriftNoise().sample(np.empty(0), 1.0, derive_rng(0))) == 0


class TestSpikeNoise:
    def test_mostly_zero(self):
        noise = SpikeNoise(rate=2.0).sample(_times(), 1.0, derive_rng(0))
        assert (noise == 0).mean() > 0.8

    def test_zero_rate_silent(self):
        noise = SpikeNoise(rate=0.0).sample(_times(), 1.0, derive_rng(0))
        assert np.all(noise == 0)

    def test_rejects_bad_mean_len(self):
        with pytest.raises(ValueError):
            SpikeNoise(mean_len=0)


class TestInitPhasePerturbation:
    def test_confined_to_init_window(self):
        model = InitPhasePerturbation(duration=45.0, rel_amp=20.0)
        noise = model.sample(_times(), 1.0, derive_rng(0))
        assert np.abs(noise[:30]).max() > 0.0
        assert np.all(noise[46:] == 0.0)

    def test_early_variance_exceeds_late(self):
        # The paper picks [60:120] precisely because [0:45] is perturbed.
        model = InitPhasePerturbation(duration=45.0, rel_amp=20.0)
        samples = [model.sample(_times(120), 1.0, derive_rng(i)) for i in range(50)]
        stacked = np.vstack(samples)
        assert stacked[:, :30].std() > 10 * stacked[:, 60:].std() + 1e-12


class TestComposite:
    def test_sum_of_components(self):
        composite = CompositeNoise([WhiteNoise(0.0), WhiteNoise(0.0)])
        out = composite.sample(_times(10), 1.0, derive_rng(0))
        assert np.all(out == 0)

    def test_flattens_nested(self):
        inner = CompositeNoise([WhiteNoise(), DriftNoise()])
        outer = CompositeNoise([inner, SpikeNoise()])
        assert len(outer.components) == 3

    def test_add_operator(self):
        combo = WhiteNoise() + DriftNoise()
        assert isinstance(combo, CompositeNoise)
        assert len(combo.components) == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CompositeNoise([])


class TestMakeNoise:
    def test_named_stacks(self):
        for kind in ("none", "white", "default", "harsh"):
            model = make_noise(kind)
            out = model.sample(_times(50), 1.0, derive_rng(0))
            assert out.shape == (50,)

    def test_none_is_silent(self):
        out = make_noise("none").sample(_times(50), 5.0, derive_rng(0))
        assert np.all(out == 0)

    def test_harsh_louder_than_default(self):
        d = make_noise("default").sample(_times(500), 1.0, derive_rng(1))
        h = make_noise("harsh").sample(_times(500), 1.0, derive_rng(1))
        assert np.abs(h).mean() > np.abs(d).mean()

    def test_scale_multiplier(self):
        base = make_noise("white").sample(_times(500), 1.0, derive_rng(2))
        loud = make_noise("white", scale_multiplier=3.0).sample(
            _times(500), 1.0, derive_rng(2)
        )
        assert np.allclose(loud, 3.0 * base)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown noise kind"):
            make_noise("pink")

    def test_default_noise_includes_init_phase(self):
        stack = default_noise(init_duration=30.0)
        kinds = {type(c).__name__ for c in stack.components}
        assert "InitPhasePerturbation" in kinds
