import numpy as np
import pytest

from repro.core.recognizer import EFDRecognizer
from repro.core.streaming import StreamingRecognizer, StreamSession


@pytest.fixture()
def streaming(tiny_dataset):
    recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
    return StreamingRecognizer.from_recognizer(recognizer)


def _feed_record(session, record, until=None):
    """Feed a record's telemetry sample by sample, as LDMS would."""
    for node in range(record.n_nodes):
        series = record.series("nr_mapped_vmstat", node)
        times = series.times
        values = series.values
        if until is not None:
            mask = times < until
            times, values = times[mask], values[mask]
        session.ingest_many(node, times, values)


class TestStreamSession:
    def test_not_ready_before_interval_elapses(self, streaming, tiny_dataset):
        session = streaming.open_session(n_nodes=4)
        _feed_record(session, tiny_dataset[0], until=100.0)
        assert not session.ready
        with pytest.raises(RuntimeError, match="not yet complete"):
            session.verdict()

    def test_ready_and_correct_after_interval(self, streaming, tiny_dataset):
        record = tiny_dataset[0]
        session = streaming.open_session(n_nodes=4)
        _feed_record(session, record, until=121.0)
        assert session.ready
        assert session.prediction() == record.app_name

    def test_streaming_matches_offline(self, streaming, tiny_dataset):
        offline = EFDRecognizer(depth=2).fit(tiny_dataset)
        for record in list(tiny_dataset)[:12]:
            session = streaming.open_session(n_nodes=record.n_nodes)
            _feed_record(session, record)
            assert session.prediction() == offline.predict_one(record)

    def test_sample_by_sample_ingest(self, streaming, tiny_dataset):
        record = tiny_dataset[0]
        session = streaming.open_session(n_nodes=4)
        for node in range(4):
            series = record.series("nr_mapped_vmstat", node)
            for t, v in zip(series.times, series.values):
                session.ingest(node, float(t), float(v))
        assert session.prediction() == record.app_name

    def test_progress_counts_nodes(self, streaming, tiny_dataset):
        session = streaming.open_session(n_nodes=4)
        record = tiny_dataset[0]
        series = record.series("nr_mapped_vmstat", 0)
        session.ingest_many(0, series.times, series.values)
        assert session.progress() == pytest.approx(0.25)

    def test_nan_samples_skipped(self, streaming):
        session = streaming.open_session(n_nodes=1)
        session.ingest(0, 60.0, float("nan"))
        session.ingest(0, 61.0, 6000.0)
        session.ingest(0, 120.5, 6000.0)
        fps = session.fingerprints()
        assert fps[0] is not None
        assert fps[0].value == 6000.0  # NaN did not poison the mean

    def test_all_dropout_node_is_none(self, streaming):
        session = streaming.open_session(n_nodes=2)
        session.ingest(0, 121.0, 6000.0)  # outside interval -> clock only
        session.ingest(1, 90.0, 6000.0)
        session.ingest(1, 121.0, 6000.0)
        fps = session.fingerprints()
        assert fps[0] is None
        assert fps[1] is not None

    def test_force_early_verdict(self, streaming, tiny_dataset):
        session = streaming.open_session(n_nodes=4)
        _feed_record(session, tiny_dataset[0], until=100.0)
        # Job died early: force a decision on partial data [60:100).
        result = session.verdict(force=True)
        assert result is session.verdict()  # concluded, cached

    def test_concluded_session_rejects_ingest(self, streaming, tiny_dataset):
        session = streaming.open_session(n_nodes=4)
        _feed_record(session, tiny_dataset[0])
        session.verdict()
        with pytest.raises(RuntimeError, match="concluded"):
            session.ingest(0, 500.0, 1.0)

    def test_node_bounds_checked(self, streaming):
        session = streaming.open_session(n_nodes=2)
        with pytest.raises(ValueError):
            session.ingest(5, 60.0, 1.0)
        with pytest.raises(ValueError):
            session.ingest_many(5, [60.0], [1.0])

    def test_mismatched_batch_rejected(self, streaming):
        session = streaming.open_session(n_nodes=1)
        with pytest.raises(ValueError):
            session.ingest_many(0, [1.0, 2.0], [1.0])

    def test_unknown_stream(self, streaming):
        session = streaming.open_session(n_nodes=2)
        for node in range(2):
            session.ingest_many(
                node, np.arange(60.0, 125.0), np.full(65, 123456.0)
            )
        assert session.prediction() == "unknown"


class TestStreamingAtScale:
    """Many concurrent sessions fed interleaved must equal sequential.

    This is the production shape: one recognizer, hundreds of jobs in
    flight, telemetry arriving round-robin in arbitrary time slices.
    Session state must be fully isolated — any cross-talk shows up as a
    verdict diverging from the one-session-at-a-time reference.
    """

    N_SESSIONS = 100

    def test_interleaved_feeding_matches_sequential(self, streaming, tiny_dataset):
        records = [
            tiny_dataset[i % len(tiny_dataset)] for i in range(self.N_SESSIONS)
        ]
        sequential = []
        for record in records:
            session = streaming.open_session(n_nodes=record.n_nodes)
            _feed_record(session, record)
            sequential.append(session.prediction())

        sessions = [
            streaming.open_session(n_nodes=r.n_nodes) for r in records
        ]
        # Interleave: every session gets one time slice before any
        # session gets the next, mimicking round-robin collector flushes.
        boundaries = [0.0, 31.0, 59.5, 90.0, 117.0, 1e9]
        for lo, hi in zip(boundaries, boundaries[1:]):
            for session, record in zip(sessions, records):
                for node in range(record.n_nodes):
                    series = record.series("nr_mapped_vmstat", node)
                    mask = (series.times >= lo) & (series.times < hi)
                    session.ingest_many(
                        node, series.times[mask], series.values[mask]
                    )
        assert all(s.ready for s in sessions)
        interleaved = [s.prediction() for s in sessions]
        assert interleaved == sequential

    def test_batch_engine_agrees_with_interleaved_sessions(
        self, streaming, tiny_dataset
    ):
        from repro.engine import BatchRecognizer, ShardedDictionary

        records = [
            tiny_dataset[i % len(tiny_dataset)] for i in range(self.N_SESSIONS)
        ]
        sessions = [
            streaming.open_session(n_nodes=r.n_nodes) for r in records
        ]
        for session, record in zip(sessions, records):
            _feed_record(session, record)
        engine = BatchRecognizer(
            ShardedDictionary.from_flat(streaming.dictionary, 4),
            metric=streaming.metric,
            depth=streaming.depth,
            interval=streaming.interval,
        )
        batch = engine.recognize_sessions(sessions)
        assert batch == [s.verdict() for s in sessions]


class TestStreamingRecognizer:
    def test_from_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StreamingRecognizer.from_recognizer(EFDRecognizer())

    def test_empty_dictionary_rejected(self):
        from repro.core.dictionary import ExecutionFingerprintDictionary

        with pytest.raises(ValueError):
            StreamingRecognizer(ExecutionFingerprintDictionary())

    def test_session_validation(self, streaming):
        with pytest.raises(ValueError):
            streaming.open_session(n_nodes=0)
