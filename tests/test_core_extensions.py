"""Tests for the paper's future-work extensions: multi-metric and
multi-interval fingerprints, temporal alignment, and reverse lookup."""

import numpy as np
import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import build_fingerprints
from repro.core.inverse import UsagePredictor
from repro.core.multimetric import MultiMetricRecognizer
from repro.core.temporal import (
    MultiIntervalRecognizer,
    align_and_match,
    default_intervals,
)

METRICS = ["nr_mapped_vmstat", "Committed_AS_meminfo", "AMO_PKTS_metric_set_nic"]


class TestMultiMetricVote:
    def test_fit_predict(self, multimetric_dataset):
        recognizer = MultiMetricRecognizer(METRICS, depth=2).fit(multimetric_dataset)
        predictions = recognizer.predict(multimetric_dataset)
        accuracy = np.mean(
            [p == r.app_name for p, r in zip(predictions, multimetric_dataset)]
        )
        assert accuracy >= 0.9

    def test_resolves_sp_bt_better_than_single_metric(self, multimetric_dataset):
        # nr_mapped alone collides sp/bt at depth 2; adding the other
        # metrics' votes must recover bt on at least some executions.
        from repro.core.recognizer import EFDRecognizer

        single = EFDRecognizer(depth=2).fit(multimetric_dataset)
        multi = MultiMetricRecognizer(METRICS, depth=2).fit(multimetric_dataset)
        bt_records = [r for r in multimetric_dataset if r.app_name == "bt"]
        single_hits = sum(single.predict_one(r) == "bt" for r in bt_records)
        multi_hits = sum(multi.predict_one(r) == "bt" for r in bt_records)
        assert multi_hits > single_hits

    def test_per_metric_depths_tuned(self, multimetric_dataset):
        recognizer = MultiMetricRecognizer(METRICS).fit(multimetric_dataset)
        assert set(recognizer.depths_) == set(METRICS)
        assert all(d >= 1 for d in recognizer.depths_.values())

    def test_single_record_predict(self, multimetric_dataset):
        recognizer = MultiMetricRecognizer(METRICS, depth=2).fit(multimetric_dataset)
        assert isinstance(recognizer.predict(multimetric_dataset[0]), str)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiMetricRecognizer([])
        with pytest.raises(ValueError):
            MultiMetricRecognizer(["m", "m"])
        with pytest.raises(ValueError):
            MultiMetricRecognizer(["m"], mode="stack")
        with pytest.raises(RuntimeError):
            MultiMetricRecognizer(["m"]).predict_detail(None)


class TestMultiMetricCombine:
    def test_combinatorial_keys_recognize(self, multimetric_dataset):
        recognizer = MultiMetricRecognizer(
            METRICS, depth=2, mode="combine"
        ).fit(multimetric_dataset)
        predictions = recognizer.predict(multimetric_dataset)
        accuracy = np.mean(
            [p == r.app_name for p, r in zip(predictions, multimetric_dataset)]
        )
        assert accuracy >= 0.8

    def test_combined_more_exclusive_on_unknowns(self, multimetric_dataset):
        # Train without miniAMR; the combined key should (almost) never
        # fire for it, while single-metric voting may cross-match.
        train = multimetric_dataset.filter(exclude_apps=["miniAMR"])
        test = multimetric_dataset.filter(apps=["miniAMR"])
        combined = MultiMetricRecognizer(METRICS, depth=1, mode="combine").fit(train)
        voting = MultiMetricRecognizer(METRICS, depth=1, mode="vote").fit(train)
        combined_unknown = sum(
            combined.predict_one(r) == "unknown" for r in test
        )
        voting_unknown = sum(voting.predict_one(r) == "unknown" for r in test)
        assert combined_unknown >= voting_unknown


class TestMultiInterval:
    def test_default_intervals(self):
        assert default_intervals(3, 60.0, 60.0) == [
            (60.0, 120.0), (120.0, 180.0), (180.0, 240.0)
        ]
        with pytest.raises(ValueError):
            default_intervals(0)

    def test_fit_predict_with_capped_duration(self, multimetric_dataset):
        # Fixture caps durations at 150 s: only the first interval has
        # data; later windows produce missing fingerprints gracefully.
        recognizer = MultiIntervalRecognizer(
            intervals=[(60.0, 120.0), (120.0, 150.0)], depth=3
        ).fit(multimetric_dataset)
        predictions = recognizer.predict(multimetric_dataset)
        accuracy = np.mean(
            [p == r.app_name for p, r in zip(predictions, multimetric_dataset)]
        )
        assert accuracy >= 0.9

    def test_intervals_coexist_in_one_dictionary(self, multimetric_dataset):
        recognizer = MultiIntervalRecognizer(
            intervals=[(60.0, 120.0), (120.0, 150.0)], depth=2
        ).fit(multimetric_dataset)
        assert len(recognizer.dictionary_.intervals()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiIntervalRecognizer(intervals=[(120.0, 60.0)])
        with pytest.raises(ValueError):
            MultiIntervalRecognizer(intervals=[(0.0, 60.0), (0.0, 60.0)])


class TestAlignAndMatch:
    def test_recovers_offset_execution(self, tiny_dataset):
        efd = ExecutionFingerprintDictionary()
        for record in tiny_dataset:
            efd.add_many(
                build_fingerprints(record, "nr_mapped_vmstat", 3, (60.0, 120.0)),
                record.label,
            )
        # Simulate a job whose start was delayed by 40 s relative to the
        # monitoring clock: 40 s of idle readings precede the execution.
        from repro.data.dataset import ExecutionRecord
        from repro.telemetry.timeseries import TimeSeries

        original = tiny_dataset[0]
        delayed_telemetry = {
            key: TimeSeries(
                np.concatenate([np.full(40, 5.0), series.values]),
                period=series.period,
            )
            for key, series in original.telemetry.items()
        }
        delayed = ExecutionRecord(
            999, original.app_name, original.input_size, original.n_nodes,
            original.duration + 40.0, delayed_telemetry,
        )
        # Without alignment (offset forced to 0) the window catches idle +
        # init samples and cannot match.
        baseline, _ = align_and_match(
            efd, delayed, "nr_mapped_vmstat", depth=3,
            interval=(60.0, 120.0), max_offset=0.0, step=10.0,
        )
        assert baseline.prediction != delayed.app_name
        result, offset = align_and_match(
            efd, delayed, "nr_mapped_vmstat", depth=3,
            interval=(60.0, 120.0), max_offset=90.0, step=10.0,
        )
        assert result.prediction == delayed.app_name
        # Plateau signals are time-invariant once settled, so recovery is
        # only sharp up to the plateau edge: any offset whose window
        # clears the 40 s idle prefix plus the ~38 s init ramp is valid
        # (window start 60 + offset >= 78 -> offset >= 18: first step 20).
        assert 20.0 <= offset <= 60.0

    def test_validation(self, tiny_dataset):
        efd = ExecutionFingerprintDictionary()
        efd.add_many(
            build_fingerprints(tiny_dataset[0], "nr_mapped_vmstat", 2),
            "ft_X",
        )
        with pytest.raises(ValueError):
            align_and_match(efd, tiny_dataset[0], "nr_mapped_vmstat", 2,
                            (60.0, 120.0), max_offset=-1.0)
        with pytest.raises(ValueError):
            align_and_match(efd, tiny_dataset[0], "nr_mapped_vmstat", 2,
                            (60.0, 120.0), step=0.0)


class TestUsagePredictor:
    def _predictor(self, dataset):
        efd = ExecutionFingerprintDictionary()
        for record in dataset:
            for interval in [(60.0, 120.0), (120.0, 150.0)]:
                efd.add_many(
                    build_fingerprints(record, "nr_mapped_vmstat", 2, interval),
                    record.label,
                )
        return UsagePredictor(efd)

    def test_forecast_matches_calibrated_level(self, tiny_dataset):
        predictor = self._predictor(tiny_dataset)
        forecasts = predictor.forecast("ft", metric="nr_mapped_vmstat")
        assert forecasts, "expected at least one forecast"
        for forecast in forecasts:
            assert abs(forecast.expected - 6000.0) / 6000.0 < 0.05
            assert forecast.low <= forecast.expected <= forecast.high
            assert forecast.observations >= 1

    def test_profile_is_chronological(self, tiny_dataset):
        predictor = self._predictor(tiny_dataset)
        profile = predictor.forecast_profile("ft", "nr_mapped_vmstat", node=0)
        starts = [interval[0] for interval, _ in profile]
        assert starts == sorted(starts)
        assert len(profile) == 2  # both intervals represented

    def test_input_size_filter(self, tiny_dataset):
        predictor = self._predictor(tiny_dataset)
        all_inputs = predictor.forecast("CoMD", metric="nr_mapped_vmstat")
        only_x = predictor.forecast("CoMD", metric="nr_mapped_vmstat",
                                    input_size="X")
        assert sum(f.observations for f in only_x) < \
            sum(f.observations for f in all_inputs)

    def test_unknown_app_rejected(self, tiny_dataset):
        predictor = self._predictor(tiny_dataset)
        with pytest.raises(KeyError):
            predictor.forecast("hpl")

    def test_empty_dictionary_rejected(self):
        with pytest.raises(ValueError):
            UsagePredictor(ExecutionFingerprintDictionary())

    def test_known_applications(self, tiny_dataset):
        predictor = self._predictor(tiny_dataset)
        assert set(predictor.known_applications()) == {"ft", "mg", "lu", "CoMD"}
