"""Distributed shard fan-out: protocol, resilience primitives, client.

Unit coverage for the pieces :mod:`repro.engine.remote` composes —
the shared full-jitter :class:`~repro._util.backoff.BackoffPolicy`,
the per-host :class:`~repro.engine.remote.CircuitBreaker` state
machine (driven by an injected clock, no sleeping), host-spec parsing
— plus live-socket coverage of the framed probe protocol, hedged
probes racing a black-hole primary, degraded-verdict semantics, and
the ``efd shardserve`` / ``efd serve --remote`` subprocess round trip.

The fault sweeps over a live multi-host topology (dropped / torn /
duplicated / stalled frames, refused connections, a host killed under
traffic) live in ``tests/test_faultinject.py``; the healthy-path
equivalence matrix against the single-process stores lives in
``tests/test_engine_properties.py``.
"""

from __future__ import annotations

import os
import random
import re
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro._util import framing
from repro._util.backoff import BackoffPolicy
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.engine import ShardedDictionary
from repro.engine.remote import (
    CircuitBreaker,
    RemoteDegradedError,
    RemoteError,
    RemoteHost,
    RemoteShardBackend,
    ShardServerThread,
    parse_remote_spec,
)
from repro.engine.sharded import shard_index
from repro.engine.stats import EngineStats


def _fp(i: int) -> Fingerprint:
    return Fingerprint(
        metric=f"m{i % 2}",
        node=i % 4,
        interval=(0.0, 60.0) if i % 3 else (60.0, 120.0),
        value=float(i) * 50.0,
    )


def _seed_stores(n_hosts: int, n_shards: int = 3, n_keys: int = 60):
    """A flat reference plus one full-replica store per host."""
    flat = ExecutionFingerprintDictionary()
    stores = [ShardedDictionary(n_shards) for _ in range(n_hosts)]
    for i in range(n_keys):
        label = f"app{i % 5}_X"
        flat.add(_fp(i), label)
        for store in stores:
            store.add(_fp(i), label)
    return flat, stores


class _MaxRng:
    """Degenerate rng: ``uniform(0, b) == b`` — exposes the backoff
    envelope itself as the delay sequence."""

    def uniform(self, a: float, b: float) -> float:
        return b


# ---------------------------------------------------------------------------
# Backoff policy (shared by remote retries and the replication redial)
# ---------------------------------------------------------------------------

class TestBackoffPolicy:
    def test_envelope_doubles_from_base_and_caps(self):
        policy = BackoffPolicy(base=0.01, cap=0.1, rng=_MaxRng())
        delays = [policy.delay(a) for a in range(8)]
        assert delays[:4] == pytest.approx([0.01, 0.02, 0.04, 0.08])
        assert delays[4:] == pytest.approx([0.1] * 4)  # clamped at cap

    def test_full_jitter_spans_zero_to_envelope(self):
        policy = BackoffPolicy(base=0.5, cap=64.0, rng=random.Random(7))
        for attempt in range(10):
            samples = [policy.delay(attempt) for _ in range(50)]
            bound = min(64.0, 0.5 * 2 ** attempt)
            assert all(0.0 <= d <= bound for d in samples)
            # Full jitter, not equal jitter: the low half is reachable.
            assert min(samples) < bound / 2

    def test_deterministic_under_seeded_rng(self):
        a = BackoffPolicy(base=0.02, cap=1.0, rng=random.Random(3))
        b = BackoffPolicy(base=0.02, cap=1.0, rng=random.Random(3))
        assert [a.delay(i) for i in range(6)] == [b.delay(i) for i in range(6)]

    def test_default_cap_is_32x_base(self):
        policy = BackoffPolicy(base=0.25, rng=_MaxRng())
        assert policy.delay(20) == pytest.approx(8.0)

    @pytest.mark.parametrize("kwargs", (
        {"base": 0.0}, {"base": -1.0}, {"base": 1.0, "cap": 0.5},
    ))
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)


# ---------------------------------------------------------------------------
# Circuit breaker state machine (injected clock: no sleeping)
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        opens = []
        breaker = CircuitBreaker(
            failures=kwargs.pop("failures", 3),
            reset_timeout=kwargs.pop("reset_timeout", 10.0),
            clock=lambda: clock["now"],
            on_open=lambda: opens.append(clock["now"]),
        )
        return breaker, clock, opens

    def test_trips_open_after_consecutive_failures(self):
        breaker, _, opens = self._breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert opens == [0.0]  # fired exactly once

    def test_success_resets_the_consecutive_count(self):
        breaker, _, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock, _ = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # claims the probe slot
        assert not breaker.allow()   # second caller refused
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_and_restarts_the_window(self):
        breaker, clock, opens = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()
        breaker.record_failure()     # probe failed: instant re-open
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert opens == [0.0, 10.0]
        clock["now"] = 19.9
        assert not breaker.allow()   # window restarted at the re-open
        clock["now"] = 20.0
        assert breaker.allow()

    def test_would_allow_peeks_without_claiming(self):
        breaker, clock, _ = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 10.0
        # Peeking any number of times never consumes the probe slot.
        for _ in range(5):
            assert breaker.would_allow()
        assert breaker.allow()        # the dial claims it
        assert not breaker.would_allow()
        assert not breaker.allow()
        breaker.release()             # never dialed: hand it back
        assert breaker.would_allow()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_unresolved_probe_slot_expires_after_reset_timeout(self):
        # A claimant that dies without reporting an outcome must not
        # lock the host out of rotation forever.
        breaker, clock, _ = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()        # claimed, outcome never reported
        assert not breaker.would_allow()
        clock["now"] = 20.0           # one reset window later
        assert breaker.would_allow()
        assert breaker.allow()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failures=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)


# ---------------------------------------------------------------------------
# Host specs
# ---------------------------------------------------------------------------

class TestParseRemoteSpec:
    def test_shard_list_and_endpoint(self):
        host = parse_remote_spec("0,2@10.0.0.1:4000")
        assert host.endpoint == "10.0.0.1:4000"
        assert host.shards == (0, 2)
        assert host.serves(0) and not host.serves(1)

    def test_all_and_bare_endpoint_are_full_replicas(self):
        for spec in ("all@h:9", "ALL@h:9", "h:9", ":9"):
            host = parse_remote_spec(spec)
            assert host.shards is None
            assert host.serves(7)

    def test_unix_endpoints(self):
        assert parse_remote_spec("unix:/tmp/s.sock").endpoint == "unix:/tmp/s.sock"
        host = parse_remote_spec("1@unix:/tmp/s.sock")
        assert host.endpoint == "unix:/tmp/s.sock"
        assert host.shards == (1,)

    @pytest.mark.parametrize("spec", (
        "", "@h:9", "x@h:9", "-1@h:9", "1@", "1@nohost", ",@h:9",
    ))
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            parse_remote_spec(spec)

    def test_str_round_trips_the_shape(self):
        assert str(parse_remote_spec("0,2@h:9")) == "0,2@h:9"
        assert str(parse_remote_spec("h:9")) == "all@h:9"


# ---------------------------------------------------------------------------
# Wire protocol against a live server
# ---------------------------------------------------------------------------

class TestShardServerProtocol:
    def _request(self, endpoint: str, msg: dict) -> dict:
        host = RemoteHost(endpoint=endpoint)
        sock = host.connect(5.0)
        try:
            sock.settimeout(5.0)
            return framing.request_json_sock(sock, msg, error=RemoteError)
        finally:
            sock.close()

    def test_ping_status_probe_entries(self):
        flat, stores = _seed_stores(1)
        with ShardServerThread(stores[0], n_shards=3, shards=[0, 1]) as thread:
            assert self._request(thread.endpoint, {"op": "ping"}) == {"ok": True}
            status = self._request(thread.endpoint, {"op": "status"})
            assert status["n_shards"] == 3 and status["shards"] == [0, 1]
            assert status["labels"] == stores[0].labels()
            served = sum(int(n) for n in status["keys_by_shard"].values())
            assert served == sum(
                1 for fp, _ in flat.entries() if shard_index(fp, 3) in (0, 1)
            )
            owned = [fp for fp, _ in flat.entries()
                     if shard_index(fp, 3) == 0][:5]
            from repro.core.serialization import fingerprint_to_record
            reply = self._request(thread.endpoint, {
                "op": "probe",
                "keys": [fingerprint_to_record(fp) for fp in owned],
                "counts": True,
            })
            assert reply["labels"] == [flat.lookup(fp) for fp in owned]
            assert reply["counts"] == [flat.lookup_counts(fp) for fp in owned]
            dump = self._request(thread.endpoint, {"op": "entries", "shard": 1})
            assert len(dump["entries"]) == status["keys_by_shard"]["1"]

    def test_refusals_are_error_replies_not_disconnects(self):
        _, stores = _seed_stores(1)
        with ShardServerThread(stores[0], n_shards=3, shards=[0]) as thread:
            from repro.core.serialization import fingerprint_to_record
            foreign = next(
                fp for fp, _ in stores[0].entries() if shard_index(fp, 3) == 2
            )
            reply = self._request(thread.endpoint, {
                "op": "probe", "keys": [fingerprint_to_record(foreign)],
            })
            assert "shard 2 not served here" in reply["error"]
            assert "unknown op" in self._request(
                thread.endpoint, {"op": "nope"})["error"]
            assert "error" in self._request(
                thread.endpoint, {"op": "probe", "keys": "zzz"})
            assert "error" in self._request(
                thread.endpoint,
                {"op": "learn", "records": [{"op": "add", "metric": 3}]},
            )
            # The server survived every refusal on one live socket path.
            assert self._request(thread.endpoint, {"op": "ping"}) == {"ok": True}


# ---------------------------------------------------------------------------
# Client behavior: degradation contract, hedging, strictness
# ---------------------------------------------------------------------------

def _client(specs, **kwargs) -> RemoteShardBackend:
    kwargs.setdefault("n_shards", 3)
    kwargs.setdefault("rng", random.Random(0))
    kwargs.setdefault("stats", EngineStats())
    return RemoteShardBackend(specs, **kwargs)


class TestDegradedVerdicts:
    def test_dead_shard_marks_exactly_its_keys(self):
        flat, stores = _seed_stores(3)
        threads = [
            ShardServerThread(stores[k], n_shards=3, shards=[k]).start()
            for k in range(3)
        ]
        try:
            specs = [f"{k}@{threads[k].endpoint}" for k in range(3)]
            threads[1].stop()
            remote = _client(
                specs, deadline=1.5, try_timeout=0.3, retries=1,
                backoff_base=0.01, backoff_cap=0.02, sync_tables=False,
            )
            probes = [_fp(i) for i in range(40)]
            verdicts = remote.probe_many(probes)
            dead = {p for p in probes if shard_index(p, 3) == 1}
            marked = {p for p, v in zip(probes, verdicts) if v.degraded}
            assert marked == dead
            assert set(remote.last_degraded) == dead
            assert all(v.reason for v in verdicts if v.degraded)
            # Live shards still answer exactly.
            for probe, verdict in zip(probes, verdicts):
                if not verdict.degraded:
                    assert verdict.labels == flat.lookup(probe)
                else:
                    assert verdict.labels == []
            # lookup_many resolves degraded keys as unknown, not wrong.
            assert remote.lookup_many(probes) == [
                [] if p in dead else flat.lookup(p) for p in probes
            ]
            stats = remote.engine_stats
            assert stats.remote_degraded == 2 * len(dead)  # both batches
            assert stats.remote_errors >= 1
            assert stats.remote

            # Strict single-key ops refuse to guess.
            victim = next(iter(dead))
            with pytest.raises(RemoteDegradedError) as exc_info:
                remote.lookup(victim)
            assert victim in exc_info.value.reasons
            with pytest.raises(RemoteDegradedError):
                victim in remote  # noqa: B015 — membership is the call
            with pytest.raises(RemoteDegradedError):
                remote.add(victim, "new_X")
            remote.close()
        finally:
            for thread in threads:
                thread.stop()

    def test_uncovered_shard_is_a_constructor_error(self):
        with pytest.raises(ValueError, match=r"shard\(s\) \[1, 2\]"):
            _client(["0@127.0.0.1:1"], sync_tables=False)


class TestBreakerAdmission:
    def test_half_open_replica_is_not_consumed_by_admission(self):
        """Regression: building the candidate list must not claim a
        half-open host's probe slot.  A recovered replica that batches
        merely *list* (while a healthy primary answers) has to stay
        dialable, so it can take over the moment the primary dies."""
        flat, stores = _seed_stores(2)
        threads = [
            ShardServerThread(stores[k], n_shards=3).start() for k in range(2)
        ]
        try:
            remote = _client(
                [f"all@{threads[k].endpoint}" for k in range(2)],
                deadline=5.0, try_timeout=0.5, retries=3,
                backoff_base=0.01, backoff_cap=0.02,
                breaker_reset=0.05, sync_tables=False,
            )
            # One bucket only (shard 0): the walk is strictly sequential.
            probes = [fp for fp, _ in flat.entries()
                      if shard_index(fp, 3) == 0][:10]
            assert probes
            # Trip the *second* host's breaker, then let it go half-open.
            for _ in range(3):
                remote.hosts[1].breaker.record_failure()
            time.sleep(0.06)
            assert remote.hosts[1].breaker.state == CircuitBreaker.HALF_OPEN
            # Healthy batches ride the primary; listing the half-open
            # replica as a candidate must not eat its probe slot.
            for _ in range(3):
                assert not any(v.degraded for v in remote.probe_many(probes))
            assert remote.hosts[1].breaker.would_allow()
            # Primary dies: the half-open replica must still be dialed.
            threads[0].stop()
            verdicts = remote.probe_many(probes)
            assert not any(v.degraded for v in verdicts)
            assert [v.labels for v in verdicts] == [
                flat.lookup(p) for p in probes
            ]
            assert remote.hosts[1].breaker.state == CircuitBreaker.CLOSED
            remote.close()
        finally:
            for thread in threads:
                thread.stop()


class TestMalformedReplies:
    def test_short_labels_list_degrades_the_bucket(self):
        """A host answering with fewer labels than keys probed is a
        protocol bug: the bucket degrades with an explicit reason — it
        must not crash the batch merge (regression: KeyError)."""
        import json
        import threading

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        listener.settimeout(0.1)  # so closing the listener ends serve()
        port = listener.getsockname()[1]
        rogue = json.dumps({"labels": [["app0_X"]]}).encode("utf-8")

        def answer(conn):
            with conn:
                try:
                    framing.recv_frame_sock(conn)
                    framing.send_frame_sock(conn, rogue)
                except (OSError, framing.FramingError):
                    pass

        def serve():
            # One thread per connection: the pooled client dials
            # concurrently (probe path + background mirror fetch), and
            # a serial accept loop would starve one exchange into a
            # timeout instead of the malformed reply under test.
            while True:
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue  # re-check: listener may have closed
                except OSError:
                    return  # listener closed: test over
                conn.settimeout(5.0)
                threading.Thread(target=answer, args=(conn,),
                                 daemon=True).start()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            remote = _client(
                [f"all@127.0.0.1:{port}"], n_shards=1,
                deadline=2.0, try_timeout=0.5, retries=0, sync_tables=False,
            )
            probes = [_fp(i) for i in range(6)]
            verdicts = remote.probe_many(probes)  # 6 keys, 1 label back
            assert all(v.degraded for v in verdicts)
            assert all("malformed" in v.reason for v in verdicts)
            assert set(remote.last_degraded) == set(probes)
            stats = remote.engine_stats
            assert stats.remote_errors >= 1
            assert stats.remote_degraded == len(probes)
            remote.close()
        finally:
            listener.close()
            thread.join(timeout=5.0)


class TestShardSizesUnreachable:
    def test_unreachable_shard_is_surfaced_not_silent(self):
        _, stores = _seed_stores(3)
        threads = [
            ShardServerThread(stores[k], n_shards=3, shards=[k]).start()
            for k in range(3)
        ]
        try:
            specs = [f"{k}@{threads[k].endpoint}" for k in range(3)]
            threads[1].stop()
            remote = _client(
                specs, deadline=1.5, try_timeout=0.3, retries=0,
                backoff_base=0.01, backoff_cap=0.02, sync_tables=False,
            )
            sizes = remote.shard_sizes()
            # The undercount is explicit, not silent.
            assert remote.last_sizes_unreachable == [1]
            assert sizes[1] == 0 and sizes[0] > 0 and sizes[2] > 0
            assert remote.engine_stats.remote_degraded >= 1
            assert len(remote) == sizes[0] + sizes[2]
            # Degraded snapshots are not cached: a healthy poll would
            # re-count.  (Live shards answer again on the next call.)
            assert remote.shard_sizes() == sizes
            assert remote.last_sizes_unreachable == [1]
            remote.close()
        finally:
            for thread in threads:
                thread.stop()


class TestHedgedProbes:
    def test_black_hole_primary_loses_to_hedged_replica(self):
        flat, stores = _seed_stores(1)
        hole = socket.socket()
        hole.bind(("127.0.0.1", 0))
        hole.listen(1)  # accepts nothing: connects park in the backlog
        thread = ShardServerThread(stores[0], n_shards=3).start()
        try:
            hole_ep = f"127.0.0.1:{hole.getsockname()[1]}"
            remote = _client(
                [f"all@{hole_ep}", f"all@{thread.endpoint}"],
                deadline=10.0, try_timeout=8.0, retries=0,
                hedge_delay=0.05, sync_tables=False,
            )
            probes = [fp for fp, _ in flat.entries()][:10]
            start = time.monotonic()
            verdicts = remote.probe_many(probes)
            elapsed = time.monotonic() - start
            assert [v.labels for v in verdicts] == [
                flat.lookup(p) for p in probes
            ]
            assert not any(v.degraded for v in verdicts)
            stats = remote.engine_stats
            assert stats.remote_hedges >= 1
            assert stats.remote_hedges_won >= 1
            assert stats.remote_hedges == (
                stats.remote_hedges_won + stats.remote_hedges_lost
            )
            # The hedge answered; nobody waited out the 8s primary.
            assert elapsed < 5.0
            remote.close()
        finally:
            thread.stop()
            hole.close()


class TestClientTables:
    def test_sync_tables_and_write_through(self):
        flat, stores = _seed_stores(2)
        threads = [
            ShardServerThread(stores[k], n_shards=3).start() for k in range(2)
        ]
        try:
            remote = _client([f"all@{t.endpoint}" for t in threads])
            assert remote.labels() == flat.labels()
            assert remote.app_names() == flat.app_names()
            assert remote.metrics() == flat.metrics()
            assert remote.intervals() == flat.intervals()
            assert len(remote) == len(flat)

            new = Fingerprint(metric="m9", node=9, interval=(0.0, 60.0),
                              value=1.0)
            remote.add(new, "fresh_Z")
            flat.add(new, "fresh_Z")
            assert remote.lookup(new) == ["fresh_Z"]
            assert remote.labels() == flat.labels()
            # The write reached every replica of the owning shard.
            for store in stores:
                assert store.lookup(new) == ["fresh_Z"]
            assert len(remote) == len(flat)
            stats = remote.stats()
            ref = flat.stats()
            assert (stats.n_keys, stats.n_insertions, stats.n_labels) == (
                ref.n_keys, ref.n_insertions, ref.n_labels
            )
            remote.close()
        finally:
            for thread in threads:
                thread.stop()


# ---------------------------------------------------------------------------
# CLI round trip: efd shardserve + efd serve --remote
# ---------------------------------------------------------------------------

class TestShardserveCLI:
    @staticmethod
    def _env():
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), os.pardir, "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        return env

    def test_subprocess_round_trip(self, tmp_path):
        from repro.engine import save_columnar

        flat, stores = _seed_stores(1)
        directory = str(tmp_path / "store")
        save_columnar(stores[0], directory, storage="npz")
        env = self._env()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "shardserve",
             "--dir", directory, "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            m = re.search(r"listening on tcp://([0-9.]+):(\d+)", line)
            assert m, line
            endpoint = f"{m.group(1)}:{m.group(2)}"
            assert "serving shard(s) 0,1,2 of 3" in proc.stdout.readline()
            remote = _client([f"all@{endpoint}"])
            probes = [fp for fp, _ in flat.entries()]
            assert remote.lookup_many(probes) == [
                flat.lookup(p) for p in probes
            ]
            assert remote.last_degraded == {}
            remote.close()
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0, out
        assert "connections" in out  # the exit stats render

    def test_serve_remote_flag_builds_the_fanout_engine(self, tmp_path):
        from repro.engine import save_columnar

        _, stores = _seed_stores(1)
        directory = str(tmp_path / "store")
        save_columnar(stores[0], directory, storage="npz")
        env = self._env()
        backend = subprocess.Popen(
            [sys.executable, "-m", "repro", "shardserve",
             "--dir", directory, "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        front = None
        try:
            m = re.search(r"tcp://([0-9.]+):(\d+)",
                          backend.stdout.readline())
            assert m
            endpoint = f"{m.group(1)}:{m.group(2)}"
            front = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--remote", f"all@{endpoint}", "--remote-shards", "3",
                 "--depth", "2", "--listen", "127.0.0.1:0", "--quiet"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=env,
            )
            assert "listening on tcp://" in front.stdout.readline()
            front.send_signal(signal.SIGTERM)
            out, _ = front.communicate(timeout=30)
            assert front.returncode == 0, out
        finally:
            if front is not None and front.poll() is None:
                front.kill()
                front.communicate(timeout=30)
            backend.send_signal(signal.SIGTERM)
            backend.communicate(timeout=30)

    def test_serve_remote_requires_shard_count(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--remote-shards"):
            main(["serve", "--remote", "all@127.0.0.1:1", "--depth", "2",
                  "--listen", "127.0.0.1:0"])
