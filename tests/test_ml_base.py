import numpy as np
import pytest

from repro.ml.base import BaseClassifier, check_X, check_X_y


class TestCheckXy:
    def test_coerces_lists(self):
        X, y = check_X_y([[1, 2], [3, 4]], ["a", "b"])
        assert X.dtype == float
        assert X.shape == (2, 2)

    def test_rejects_1d_X(self):
        with pytest.raises(ValueError, match="2-D"):
            check_X_y([1, 2, 3], [1, 2, 3])

    def test_rejects_2d_y(self):
        with pytest.raises(ValueError, match="1-D"):
            check_X_y(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            check_X_y(np.zeros((3, 2)), np.zeros(2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_X_y(np.zeros((0, 2)), np.zeros(0))

    def test_rejects_nan(self):
        X = np.array([[1.0, np.nan]])
        with pytest.raises(ValueError, match="NaN"):
            check_X_y(X, np.array([1]))


class TestCheckX:
    def test_feature_count_enforced(self):
        with pytest.raises(ValueError, match="features"):
            check_X(np.zeros((2, 3)), n_features=4)

    def test_passthrough(self):
        X = check_X(np.zeros((2, 3)), n_features=3)
        assert X.shape == (2, 3)


class TestBaseClassifier:
    def test_score_requires_predictions(self):
        class Stub(BaseClassifier):
            def fit(self, X, y):
                self.classes_ = np.unique(y)
                return self

            def predict(self, X):
                return np.array(["a"] * len(X))

        stub = Stub().fit(np.zeros((2, 1)), ["a", "b"])
        assert stub.score(np.zeros((2, 1)), ["a", "a"]) == 1.0
        assert stub.score(np.zeros((2, 1)), ["b", "b"]) == 0.0
        with pytest.raises(ValueError):
            stub.score(np.zeros((0, 1)), [])

    def test_predict_proba_default_raises(self):
        class Stub(BaseClassifier):
            pass

        with pytest.raises(NotImplementedError):
            Stub().predict_proba(np.zeros((1, 1)))

    def test_get_params_excludes_fitted_state(self):
        class Stub(BaseClassifier):
            def __init__(self):
                self.alpha = 3
                self.fitted_ = True
                self._private = 1

        params = Stub().get_params()
        assert params == {"alpha": 3}
