import numpy as np
import pytest

from repro._util.validation import (
    check_array_1d,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type(3, int, "x") == 3

    def test_accepts_tuple_of_types(self):
        assert check_type(3.5, (int, float), "x") == 3.5

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("3", int, "x")

    def test_error_names_all_expected_types(self):
        with pytest.raises(TypeError, match="int or float"):
            check_type("3", (int, float), "x")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5, "p") == 0.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_rejects_non_positive_and_non_finite(self, bad):
        with pytest.raises(ValueError, match="p must be"):
            check_positive(bad, "p")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "n") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.001, "n")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, "r", low=1.0, high=2.0) == 1.0
        assert check_in_range(2.0, "r", low=1.0, high=2.0) == 2.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "r", low=1.0, high=2.0, inclusive=False)

    def test_one_sided(self):
        assert check_in_range(100.0, "r", low=0.0) == 100.0
        with pytest.raises(ValueError):
            check_in_range(-1.0, "r", low=0.0)


class TestCheckArray1d:
    def test_coerces_list(self):
        out = check_array_1d([1, 2, 3], "a")
        assert isinstance(out, np.ndarray)
        assert out.dtype == float

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_array_1d([[1, 2], [3, 4]], "a")

    def test_enforces_min_length(self):
        with pytest.raises(ValueError, match="at least 3"):
            check_array_1d([1, 2], "a", min_len=3)
