"""Deeper experiment-suite coverage: the full five-experiment matrix on a
reduced dataset, cross-recognizer comparisons, and result bookkeeping."""

import numpy as np
import pytest

from repro.baselines.nearest import NearestCentroidRecognizer
from repro.experiments.protocol import (
    EXPERIMENT_NAMES,
    make_efd_factory,
    run_experiment,
)
from repro.experiments.runner import ExperimentSuite


@pytest.fixture(scope="module")
def suite_results(small_dataset):
    suite = ExperimentSuite(small_dataset, k=3, seed=0)
    return suite.run(make_efd_factory(), "EFD")


class TestFullMatrix:
    def test_all_five_experiments_ran(self, suite_results):
        assert set(suite_results.results) == set(EXPERIMENT_NAMES)

    def test_paper_ordering_of_difficulty(self, suite_results):
        """The qualitative Figure 2 ordering must hold even at 3 reps:
        normal/soft near the top, hard input at the bottom."""
        f = {name: suite_results.fscore(name) for name in EXPERIMENT_NAMES}
        assert f["normal_fold"] >= f["hard_unknown"] > f["hard_input"]
        assert f["soft_unknown"] > f["hard_unknown"]

    def test_split_counts_match_protocol(self, suite_results, small_dataset):
        results = suite_results.results
        n_inputs = len(small_dataset.input_sizes())
        n_apps = len(small_dataset.app_names())
        assert len(results["normal_fold"].split_scores) == 3
        assert len(results["soft_input"].split_scores) == n_inputs * 3
        assert len(results["soft_unknown"].split_scores) == n_apps * 3
        assert len(results["hard_input"].split_scores) == n_inputs
        assert len(results["hard_unknown"].split_scores) == n_apps

    def test_fscore_std_defined(self, suite_results):
        result = suite_results.results["normal_fold"]
        assert result.fscore_std >= 0.0
        assert "normal_fold" in str(result)


class TestAlternativeRecognizersThroughProtocol:
    def test_nearest_centroid_runs_protocol(self, tiny_dataset):
        result = run_experiment(
            "normal_fold",
            tiny_dataset,
            lambda: NearestCentroidRecognizer(rel_threshold=0.05),
            k=3,
        )
        assert result.fscore > 0.9

    def test_hard_unknown_rewards_refusing(self, tiny_dataset):
        # A recognizer that refuses everything is perfect on hard_unknown
        # (every test execution IS unknown) — sanity of the ground truth.
        class AlwaysUnknown:
            def fit(self, ds):
                return self

            def predict(self, ds):
                return ["unknown"] * len(ds)

        result = run_experiment("hard_unknown", tiny_dataset, AlwaysUnknown)
        assert result.fscore == 1.0

    def test_hard_unknown_punishes_guessing(self, tiny_dataset):
        class AlwaysFt:
            def fit(self, ds):
                return self

            def predict(self, ds):
                return ["ft"] * len(ds)

        result = run_experiment("hard_unknown", tiny_dataset, AlwaysFt)
        assert result.fscore == 0.0
