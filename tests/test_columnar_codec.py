"""Columnar codec: lossless round-trips and hostile-input edges.

Mirrors the JSON shard-manifest tests: every corruption mode —
truncated or tampered ``.npz`` bytes, a deleted member, a missing or
swapped shard file, inconsistent manifests — must be reported by shard
file name, and every value/label edge the JSON codec survives (-0.0,
subnormals, unicode/underscore-heavy labels, empty shards, repetition
counts beyond 2**31) must round-trip exactly.
"""

from __future__ import annotations

import json
import os
import struct

import numpy as np
import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.core.serialization import (
    dictionary_from_columns,
    dictionary_to_columns,
)
from repro.engine import (
    ColumnarDictionary,
    ShardedDictionary,
    compact_shards,
    expand_shards,
    is_columnar,
    load_columnar,
    load_sharded,
    save_columnar,
    save_sharded,
    shard_index,
)


def _fp(value: float, node: int = 0, metric: str = "m",
        interval=(60.0, 120.0)) -> Fingerprint:
    return Fingerprint(metric=metric, node=node, interval=interval, value=value)


def _sample_sharded(n_shards: int = 4, n_keys: int = 24) -> ShardedDictionary:
    sharded = ShardedDictionary(n_shards)
    for i in range(n_keys):
        sharded.add(_fp(100.0 * (i + 1), i % 4), f"ft_{'XYZ'[i % 3]}")
        if i % 5 == 0:
            sharded.add(_fp(100.0 * (i + 1), i % 4), "mg_Y")
    return sharded


def _assert_equal_stores(a, b) -> None:
    assert len(a) == len(b)
    assert a.labels() == b.labels()
    assert a.app_names() == b.app_names()
    assert list(a.entries()) == list(b.entries())
    for fp, _ in a.entries():
        assert b.lookup_counts(fp) == a.lookup_counts(fp)
    assert a.stats() == b.stats()


def _round_trip_columns(efd: ExecutionFingerprintDictionary):
    label_index, metric_index, interval_index = {}, {}, {}
    columns = dictionary_to_columns(
        efd, label_index, metric_index, interval_index
    )
    return dictionary_from_columns(
        columns,
        list(label_index),
        list(metric_index),
        list(interval_index),
    )


class TestColumnCodec:
    def test_round_trip_identity(self):
        efd = ExecutionFingerprintDictionary()
        efd.register_label("zz_Q")  # registered before any key references it
        for i in range(30):
            efd.add(_fp(10.0 * (i + 1), i % 3, metric=("m1", "m2")[i % 2]),
                    f"sp_{'XY'[i % 2]}")
        efd.add(_fp(10.0), "bt_X")  # second app on an existing key
        back = _round_trip_columns(efd)
        _assert_equal_stores(efd, back)
        assert back.labels() == efd.labels()  # incl. the key-less zz_Q

    def test_repetition_counts_beyond_int32(self):
        efd = ExecutionFingerprintDictionary()
        big = (1 << 31) + 17
        efd.add_repeated(_fp(6000.0), "ft_X", big)
        efd.add(_fp(6000.0), "ft_X")
        back = _round_trip_columns(efd)
        assert back.lookup_counts(_fp(6000.0)) == {"ft_X": big + 1}
        assert back.stats().n_insertions == big + 1

    def test_negative_zero_value_round_trips(self):
        efd = ExecutionFingerprintDictionary()
        efd.add(_fp(-0.0), "ft_X")
        back = _round_trip_columns(efd)
        (fp, _), = back.entries()
        # The stored bit pattern survives (still -0.0) ...
        assert struct.pack("<d", fp.value) == struct.pack("<d", -0.0)
        # ... and equality semantics hold: a +0.0 probe hits it.
        assert back.lookup(_fp(0.0)) == ["ft_X"]

    def test_subnormal_values_round_trip_exactly(self):
        smallest = 5e-324          # minimal positive subnormal
        subnormal = 2.2250738585072014e-308 / 4.0
        efd = ExecutionFingerprintDictionary()
        efd.add(_fp(smallest), "ft_X")
        efd.add(_fp(subnormal, node=1), "mg_Y")
        back = _round_trip_columns(efd)
        values = [fp.value for fp, _ in back.entries()]
        assert [struct.pack("<d", v) for v in values] == [
            struct.pack("<d", smallest), struct.pack("<d", subnormal)
        ]
        assert back.lookup(_fp(smallest)) == ["ft_X"]

    def test_unicode_and_underscore_heavy_labels(self):
        labels = ["naïve_模型_X", "_leading", "a__b__c", "noseparator",
                  "emoji_🚀_Z", "trailing_"]
        efd = ExecutionFingerprintDictionary()
        for i, label in enumerate(labels):
            efd.add(_fp(100.0 * (i + 1)), label)
        back = _round_trip_columns(efd)
        _assert_equal_stores(efd, back)
        assert back.labels() == labels

    def test_validation_rejects_structural_damage(self):
        efd = ExecutionFingerprintDictionary()
        efd.add(_fp(100.0), "ft_X")
        label_index, metric_index, interval_index = {}, {}, {}
        columns = dictionary_to_columns(
            efd, label_index, metric_index, interval_index
        )
        tables = (list(label_index), list(metric_index), list(interval_index))

        def broken(**overrides):
            damaged = dict(columns)
            damaged.update(overrides)
            return damaged

        with pytest.raises(ValueError, match="missing column"):
            damaged = dict(columns)
            del damaged["label_ids"]
            dictionary_from_columns(damaged, *tables)
        with pytest.raises(ValueError, match="no labels"):
            dictionary_from_columns(
                broken(label_offsets=np.array([0, 0], dtype=np.int64),
                       label_ids=np.empty(0, dtype=np.int64),
                       label_counts=np.empty(0, dtype=np.int64)),
                *tables,
            )
        with pytest.raises(ValueError, match="repetition count"):
            dictionary_from_columns(
                broken(label_counts=np.array([0], dtype=np.int64)), *tables
            )
        with pytest.raises(ValueError, match="label table"):
            dictionary_from_columns(
                broken(label_ids=np.array([7], dtype=np.int64)), *tables
            )
        with pytest.raises(ValueError, match="metric"):
            dictionary_from_columns(
                broken(metric_id=np.array([3], dtype=np.int64)), *tables
            )
        with pytest.raises(ValueError, match="lengths"):
            dictionary_from_columns(
                broken(node=np.array([0, 1], dtype=np.int64)), *tables
            )

    def test_count_overflowing_int64_rejected_at_encode(self):
        efd = ExecutionFingerprintDictionary()
        efd.add(_fp(100.0), "ft_X")
        efd._store[_fp(100.0)]["ft_X"] = 1 << 63  # force the overflow
        with pytest.raises(ValueError, match="int64"):
            dictionary_to_columns(efd, {}, {}, {})


class TestColumnarDirectory:
    def test_directory_round_trip(self, tmp_path):
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        assert is_columnar(directory)
        loaded = load_columnar(directory)
        _assert_equal_stores(sharded, loaded)

    def test_load_sharded_dispatches_on_layout(self, tmp_path):
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        loaded = load_sharded(directory)
        assert isinstance(loaded, ColumnarDictionary)
        _assert_equal_stores(sharded, loaded)

    def test_empty_shards_and_empty_store(self, tmp_path):
        # One key across many shards: most shard files hold zero keys.
        sparse = ShardedDictionary(4)
        sparse.add(_fp(6000.0), "ft_X")
        directory = str(tmp_path / "sparse")
        save_columnar(sparse, directory)
        loaded = load_columnar(directory)
        _assert_equal_stores(sparse, loaded)
        assert sorted(loaded.shard_sizes()) == [0, 0, 0, 1]
        # A fully empty store round-trips too (registered label kept).
        empty = ShardedDictionary(2)
        empty.register_label("ft_X")
        directory = str(tmp_path / "empty")
        save_columnar(empty, directory)
        loaded = load_columnar(directory)
        assert len(loaded) == 0
        assert loaded.labels() == ["ft_X"]
        assert list(loaded.entries()) == []

    def test_big_counts_unicode_and_negative_zero_through_files(self, tmp_path):
        sharded = ShardedDictionary(2)
        big = (1 << 31) + 5
        fp = _fp(-0.0)
        sharded.add(fp, "naïve_模型_X")
        sharded.shard_of(fp).add_repeated(fp, "naïve_模型_X", big - 1)
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        loaded = load_columnar(directory)
        assert loaded.lookup_counts(_fp(0.0)) == {"naïve_模型_X": big}

    def test_missing_shard_file_named_lazily(self, tmp_path):
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        loaded = load_columnar(directory)  # reads only the manifest
        victim_index = next(
            i for i, size in enumerate(sharded.shard_sizes()) if size > 0
        )
        victim = f"shard-{victim_index:02d}.npz"
        os.remove(os.path.join(directory, victim))
        # Keys of *other* shards still resolve — shards load lazily ...
        other = next(
            fp for fp, _ in sharded.entries()
            if shard_index(fp, sharded.n_shards) != victim_index
        )
        assert loaded.lookup(other) == sharded.lookup(other)
        # ... and touching the gone shard names the missing file.
        with pytest.raises(FileNotFoundError, match=victim):
            list(loaded.entries())

    def test_tampered_npz_fails_checksum_by_name(self, tmp_path):
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        occupied = next(
            i for i, size in enumerate(sharded.shard_sizes()) if size > 0
        )
        name = f"shard-{occupied:02d}.npz"
        path = os.path.join(directory, name)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(path, "wb").write(bytes(data))
        loaded = load_columnar(directory)
        with pytest.raises(ValueError, match=name):
            list(loaded.entries())

    def test_truncated_npz_named_even_with_matching_checksum(self, tmp_path):
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        occupied = next(
            i for i, size in enumerate(sharded.shard_sizes()) if size > 0
        )
        name = f"shard-{occupied:02d}.npz"
        path = os.path.join(directory, name)
        data = open(path, "rb").read()[:40]  # not a zip anymore
        open(path, "wb").write(data)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        import hashlib

        for meta in manifest["shards"]:
            if meta["file"] == name:
                meta["checksum"] = hashlib.blake2b(
                    data, digest_size=16
                ).hexdigest()
        open(manifest_path, "w").write(json.dumps(manifest))
        loaded = load_columnar(directory)
        with pytest.raises(ValueError, match=name):
            list(loaded.entries())

    def test_missing_npz_member_named(self, tmp_path):
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        occupied = next(
            i for i, size in enumerate(sharded.shard_sizes()) if size > 0
        )
        name = f"shard-{occupied:02d}.npz"
        path = os.path.join(directory, name)
        with np.load(path) as payload:
            partial = {
                key: payload[key] for key in payload.files
                if key != "label_counts"
            }
        import io as _io

        buffer = _io.BytesIO()
        np.savez(buffer, **partial)
        data = buffer.getvalue()
        open(path, "wb").write(data)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        import hashlib

        for meta in manifest["shards"]:
            if meta["file"] == name:
                meta["checksum"] = hashlib.blake2b(
                    data, digest_size=16
                ).hexdigest()
        open(manifest_path, "w").write(json.dumps(manifest))
        loaded = load_columnar(directory)
        with pytest.raises(ValueError, match=name):
            list(loaded.entries())

    def test_swapped_npz_files_detected_on_hydration(self, tmp_path):
        # Grow until two distinct shards hold the same number of keys, so
        # swapping their files defeats every structural check (sizes,
        # checksums, key_order ranges) and only routing validation is
        # left to catch it — the strongest tamper case.
        sharded = ShardedDictionary(4)
        pair = None
        for i in range(1, 200):
            sharded.add(_fp(100.0 * i, i % 4), "ft_X")
            sizes = sharded.shard_sizes()
            occupied = [
                (size, j) for j, size in enumerate(sizes) if size > 0
            ]
            counts: dict = {}
            for size, j in occupied:
                counts.setdefault(size, []).append(j)
            equal = [js for js in counts.values() if len(js) >= 2]
            if equal:
                pair = equal[0][:2]
                break
        assert pair is not None
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        a = os.path.join(directory, f"shard-{pair[0]:02d}.npz")
        b = os.path.join(directory, f"shard-{pair[1]:02d}.npz")
        data_a, data_b = open(a, "rb").read(), open(b, "rb").read()
        open(a, "wb").write(data_b)
        open(b, "wb").write(data_a)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.loads(open(manifest_path).read())
        import hashlib

        by_name = {m["file"]: m for m in manifest["shards"]}
        for path in (a, b):
            by_name[os.path.basename(path)]["checksum"] = hashlib.blake2b(
                open(path, "rb").read(), digest_size=16
            ).hexdigest()
        open(manifest_path, "w").write(json.dumps(manifest))
        loaded = load_columnar(directory)
        with pytest.raises(ValueError, match="renamed or swapped"):
            list(loaded.entries())

    def test_key_order_damage_rejected_eagerly(self, tmp_path):
        import hashlib
        import io as _io

        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        manifest_path = os.path.join(directory, "manifest.json")
        pristine_manifest = open(manifest_path).read()
        key_order_path = os.path.join(directory, "key-order.npz")
        pristine_key_order = open(key_order_path, "rb").read()

        def with_key_order(mutate):
            open(manifest_path, "w").write(pristine_manifest)
            with np.load(_io.BytesIO(pristine_key_order)) as payload:
                shard = payload["shard"].astype(np.int64)
                pos = payload["pos"].astype(np.int64)
            shard, pos = mutate(shard, pos)
            buffer = _io.BytesIO()
            np.savez(buffer, shard=shard, pos=pos)
            data = buffer.getvalue()
            open(key_order_path, "wb").write(data)
            manifest = json.loads(pristine_manifest)
            manifest["key_order_file"]["checksum"] = hashlib.blake2b(
                data, digest_size=16
            ).hexdigest()
            open(manifest_path, "w").write(json.dumps(manifest))

        with_key_order(lambda s, p: (s[:-1], p[:-1]))  # one entry dropped
        with pytest.raises(ValueError, match="key_order lists"):
            load_columnar(directory)
        def duplicate(s, p):
            s[1], p[1] = s[0], p[0]
            return s, p
        with_key_order(duplicate)
        with pytest.raises(ValueError, match="twice"):
            load_columnar(directory)
        def out_of_range(s, p):
            s[0] = 99
            return s, p
        with_key_order(out_of_range)
        with pytest.raises(ValueError, match="out of range"):
            load_columnar(directory)
        # Stale checksum (file not matching the manifest) is caught too.
        open(manifest_path, "w").write(pristine_manifest)
        open(key_order_path, "wb").write(pristine_key_order[:-7])
        with pytest.raises(ValueError, match="key-order.npz"):
            load_columnar(directory)
        os.remove(key_order_path)
        with pytest.raises(FileNotFoundError, match="key-order.npz"):
            load_columnar(directory)

    def test_manifest_damage_rejected_eagerly(self, tmp_path):
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        manifest_path = os.path.join(directory, "manifest.json")
        pristine = open(manifest_path).read()

        def with_manifest(change):
            manifest = json.loads(pristine)
            change(manifest)
            open(manifest_path, "w").write(json.dumps(manifest))

        with_manifest(lambda m: m.__setitem__("app_order", ["zz"]))
        with pytest.raises(ValueError, match="app_order"):
            load_columnar(directory)
        with_manifest(lambda m: m.__setitem__("format_version", 99))
        with pytest.raises(ValueError, match="format version"):
            load_columnar(directory)
        with_manifest(lambda m: m["shards"].pop())
        with pytest.raises(ValueError, match="shard files"):
            load_columnar(directory)


class TestLazyHydration:
    def test_load_reads_no_shard_files(self, tmp_path):
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        loaded = load_columnar(directory)
        assert not any(shard.hydrated for shard in loaded.shards)
        # Cheap observables answer from the manifest alone.
        assert len(loaded) == len(sharded)
        assert loaded.shard_sizes() == sharded.shard_sizes()
        assert loaded.labels() == sharded.labels()
        assert not any(shard.hydrated for shard in loaded.shards)

    def test_point_lookup_hydrates_only_owning_shard(self, tmp_path):
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        loaded = load_columnar(directory)
        fp = next(fp for fp, _ in sharded.entries())
        assert loaded.lookup(fp) == sharded.lookup(fp)
        assert sum(1 for shard in loaded.shards if shard.hydrated) == 1

    def test_lookup_many_hydrates_nothing(self, tmp_path):
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        loaded = load_columnar(directory)
        keys = [fp for fp, _ in sharded.entries()]
        misses = [_fp(123456.0, 3), _fp(100.0, 0, metric="nope"),
                  _fp(100.0, 0, interval=(0.0, 60.0))]
        assert loaded.lookup_many(keys + misses) == [
            sharded.lookup(fp) for fp in keys + misses
        ]
        assert not any(shard.hydrated for shard in loaded.shards)

    def test_routed_writes_keep_column_caches_live(self, tmp_path):
        # The delta-log contract: a public write lands in the overlay,
        # never touches the base columns, and every vectorized path
        # keeps answering — merged with the new observation.
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        loaded = load_columnar(directory)
        assert loaded.pristine
        new_key = _fp(987654.0, 2)
        loaded.add(new_key, "zz_Q")
        assert loaded.pristine          # base columns untouched
        assert loaded.delta_pending == 1
        assert loaded.batch_index("m", (60.0, 120.0)) is not None
        assert loaded.lookup_many([new_key]) == [["zz_Q"]]
        assert loaded.lookup(new_key) == ["zz_Q"]
        assert "zz_Q" in loaded.labels()
        assert not any(shard.hydrated for shard in loaded.shards)

    def test_direct_shard_mutation_disables_column_caches(self, tmp_path):
        # Mutating a shard object directly bypasses the delta-log: the
        # base caches are stale, so the vectorized paths must stand
        # down (the engine then falls back and counts a demotion).
        sharded = _sample_sharded()
        directory = str(tmp_path / "col")
        save_columnar(sharded, directory)
        loaded = load_columnar(directory)
        victim = next(fp for fp, _ in sharded.entries())
        loaded.shards[shard_index(victim, 4)].add(victim, "zz_Q")
        assert not loaded.pristine
        assert loaded.batch_index("m", (60.0, 120.0)) is None
        assert loaded.lookup_many([victim]) is None
        assert "zz_Q" in loaded.lookup(victim)


class TestConversion:
    def test_compact_then_expand_restores_identical_files(self, tmp_path):
        sharded = _sample_sharded()
        directory = str(tmp_path / "efd")
        save_sharded(sharded, directory)
        originals = {
            name: open(os.path.join(directory, name), "rb").read()
            for name in sorted(os.listdir(directory))
        }
        summary = compact_shards(directory)
        assert is_columnar(directory)
        assert not any(
            name.startswith("shard-") and name.endswith(".json")
            for name in os.listdir(directory)
        )
        assert summary["n_keys"] == len(sharded)
        expand_shards(directory)
        assert not is_columnar(directory)
        restored = {
            name: open(os.path.join(directory, name), "rb").read()
            for name in sorted(os.listdir(directory))
        }
        assert restored == originals  # byte-identical, not just equal

    def test_conversion_to_separate_out_leaves_source_untouched(self, tmp_path):
        sharded = _sample_sharded()
        src = str(tmp_path / "src")
        dst = str(tmp_path / "dst")
        save_sharded(sharded, src)
        before = sorted(os.listdir(src))
        compact_shards(src, out=dst)
        assert sorted(os.listdir(src)) == before
        assert is_columnar(dst)
        _assert_equal_stores(load_columnar(dst), sharded)
        back = str(tmp_path / "back")
        expand_shards(dst, out=back)
        _assert_equal_stores(load_sharded(back), sharded)

    def test_wrong_direction_conversions_rejected(self, tmp_path):
        sharded = _sample_sharded()
        json_dir = str(tmp_path / "json")
        col_dir = str(tmp_path / "col")
        save_sharded(sharded, json_dir)
        save_columnar(sharded, col_dir)
        with pytest.raises(ValueError, match="already columnar"):
            compact_shards(col_dir)
        with pytest.raises(ValueError, match="not columnar"):
            expand_shards(json_dir)
