"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.core.matcher import vote
from repro.core.rounding import bucket_width, round_depth, round_depth_array
from repro.core.serialization import dictionary_from_json, dictionary_to_json
from repro.ml.metrics import accuracy_score, f1_score, precision_recall_fscore
from repro.ml.model_selection import KFold, StratifiedKFold
from repro.parallel.partition import chunk_evenly, split_indices
from repro.telemetry.timeseries import interval_mean

finite_values = st.floats(
    min_value=1e-6, max_value=1e12, allow_nan=False, allow_infinity=False
)
depths = st.integers(min_value=1, max_value=8)


class TestRoundingProperties:
    @given(finite_values, depths)
    def test_idempotent(self, value, depth):
        once = round_depth(value, depth)
        assert round_depth(once, depth) == once

    @given(finite_values, depths)
    def test_relative_error_bounded(self, value, depth):
        # Rounding to the d-th significant digit moves the value at most
        # half a bucket.
        rounded = round_depth(value, depth)
        assert abs(rounded - value) <= 0.5 * bucket_width(value, depth) * (1 + 1e-9)

    @given(finite_values, depths)
    def test_sign_symmetric(self, value, depth):
        assert round_depth(-value, depth) == -round_depth(value, depth)

    @given(finite_values, depths)
    def test_monotone_non_decreasing(self, value, depth):
        # For a slightly larger input, rounding never decreases.
        bigger = value * (1 + 1e-6) + 1e-9
        assert round_depth(bigger, depth) >= round_depth(value, depth)

    @given(finite_values, depths, st.integers(min_value=-6, max_value=6))
    def test_power_of_ten_equivariance(self, value, depth, exponent):
        # Rounding depth is defined on significant digits, so scaling by
        # 10^k scales the result by 10^k (within float precision).
        scale = 10.0 ** exponent
        lhs = round_depth(value * scale, depth)
        rhs = round_depth(value, depth) * scale
        assert lhs == pytest.approx(rhs, rel=1e-9)

    @given(st.lists(finite_values, min_size=1, max_size=50), depths)
    def test_vectorized_matches_scalar(self, values, depth):
        arr = np.array(values)
        vec = round_depth_array(arr, depth)
        scal = np.array([round_depth(v, depth) for v in values])
        assert np.allclose(vec, scal, rtol=1e-12)

    @given(finite_values, depths)
    def test_deeper_is_finer(self, value, depth):
        # Increasing depth never increases the distance to the original.
        coarse = abs(round_depth(value, depth) - value)
        fine = abs(round_depth(value, depth + 1) - value)
        assert fine <= coarse + 1e-12


class TestIntervalMeanProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200,
        ),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=100),
    )
    def test_mean_within_value_range(self, values, start, width):
        arr = np.array(values)
        mean = interval_mean(arr, float(start), float(start + width))
        if not math.isnan(mean):
            assert arr.min() - 1e-9 <= mean <= arr.max() + 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                    min_size=10, max_size=100))
    def test_full_window_equals_numpy_mean(self, values):
        arr = np.array(values)
        assert interval_mean(arr, 0, len(arr)) == pytest.approx(arr.mean())


class TestDictionaryProperties:
    labels = st.lists(
        st.sampled_from(["ft_X", "ft_Y", "mg_X", "sp_X", "bt_X", "kripke_L"]),
        min_size=1, max_size=40,
    )
    values = st.lists(
        st.sampled_from([6000.0, 6100.0, 7500.0, 8300.0]),
        min_size=1, max_size=40,
    )

    @given(labels, values)
    def test_json_round_trip_exact(self, labels, values):
        efd = ExecutionFingerprintDictionary()
        for i, (label, value) in enumerate(zip(labels, values)):
            efd.add(
                Fingerprint("m", i % 4, (60.0, 120.0), value), label
            )
        restored = dictionary_from_json(dictionary_to_json(efd))
        assert len(restored) == len(efd)
        assert restored.labels() == efd.labels()
        for fp, stored_labels in efd.entries():
            assert restored.lookup(fp) == stored_labels
            assert restored.lookup_counts(fp) == efd.lookup_counts(fp)

    @given(labels)
    def test_insertions_conserved(self, labels):
        efd = ExecutionFingerprintDictionary()
        fp = Fingerprint("m", 0, (60.0, 120.0), 1.0)
        for label in labels:
            efd.add(fp, label)
        stats = efd.stats()
        assert stats.n_insertions == len(labels)
        assert sum(efd.lookup_counts(fp).values()) == len(labels)

    @given(st.lists(st.lists(
        st.sampled_from(["ft_X", "mg_X", "sp_X"]), max_size=3), max_size=6))
    def test_vote_total_bounded_by_nodes(self, lookups):
        _, votes = vote(lookups)
        for count in votes.values():
            assert count <= len(lookups)


class TestMetricsProperties:
    y_pairs = st.lists(
        st.tuples(st.sampled_from("abcd"), st.sampled_from("abcd")),
        min_size=1, max_size=80,
    )

    @given(y_pairs)
    def test_f1_bounded(self, pairs):
        y_true = [t for t, _ in pairs]
        y_pred = [p for _, p in pairs]
        f = f1_score(y_true, y_pred, average="macro")
        assert 0.0 <= f <= 1.0

    @given(y_pairs)
    def test_perfect_prediction_is_one(self, pairs):
        y_true = [t for t, _ in pairs]
        assert f1_score(y_true, y_true, average="macro") == 1.0

    @given(y_pairs)
    def test_micro_f_equals_accuracy(self, pairs):
        y_true = [t for t, _ in pairs]
        y_pred = [p for _, p in pairs]
        _, _, micro, _ = precision_recall_fscore(y_true, y_pred, average="micro")
        assert micro == pytest.approx(accuracy_score(y_true, y_pred))

    @given(y_pairs)
    def test_symmetry_of_support(self, pairs):
        y_true = [t for t, _ in pairs]
        y_pred = [p for _, p in pairs]
        _, _, _, support = precision_recall_fscore(
            y_true, y_pred, average="macro"
        )
        assert support == len(pairs)


class TestSplitProperties:
    @given(st.integers(min_value=4, max_value=60),
           st.integers(min_value=2, max_value=4))
    def test_kfold_partitions(self, n, k):
        assume(n >= k)
        X = np.zeros((n, 1))
        seen = []
        for train, test in KFold(k, shuffle=True, random_state=0).split(X):
            assert len(set(train) & set(test)) == 0
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(n))

    @given(st.integers(min_value=2, max_value=5),
           st.integers(min_value=6, max_value=40))
    def test_stratified_kfold_partitions(self, k, n):
        y = np.array([i % 3 for i in range(n)])
        assume(min(np.bincount(y)) >= 1 and n >= k)
        X = np.zeros((n, 1))
        seen = []
        for train, test in StratifiedKFold(k, random_state=0).split(X, y):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(n))


class TestPartitionProperties:
    @given(st.lists(st.integers(), max_size=100),
           st.integers(min_value=1, max_value=10))
    def test_chunks_concatenate_to_input(self, items, n):
        chunks = chunk_evenly(items, n)
        assert sum(chunks, []) == list(items)
        if items:
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1

    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=16))
    def test_split_indices_cover(self, n, k):
        ranges = split_indices(n, k)
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(n))
