"""The DictionaryBackend protocol: conformance and cross-backend merge.

Every storage backend — flat, sharded-JSON, columnar — must satisfy
:class:`repro.engine.backend.DictionaryBackend`, and ``merge`` must work
across *any* ordered pair of backend types, preserving the string-table
(label/app first-seen) orders that drive tie-breaking.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.engine import (
    DictionaryBackend,
    ShardedDictionary,
    load_columnar,
    merge_into,
    save_columnar,
)

_APPS = ("ft", "mg", "sp", "bt")
_INPUTS = ("X", "Y", "Z")


def _fp(value: float, node: int = 0, metric: str = "m") -> Fingerprint:
    return Fingerprint(
        metric=metric, node=node, interval=(60.0, 120.0), value=value
    )


def _random_flat(seed: int, n: int = 120) -> ExecutionFingerprintDictionary:
    rng = random.Random(seed)
    efd = ExecutionFingerprintDictionary()
    # A key-less label registered first: pure string-table state that a
    # cross-backend merge must carry over in position 0.
    efd.register_label(f"zz{seed}_Q")
    for _ in range(n):
        efd.add(
            _fp(100.0 * rng.randrange(1, 40), rng.randrange(4)),
            f"{rng.choice(_APPS)}_{rng.choice(_INPUTS)}",
        )
    return efd


def _backends(flat: ExecutionFingerprintDictionary, tmp_path, tag: str):
    sharded = ShardedDictionary.from_flat(flat, 4)
    col_dir = str(tmp_path / f"col-{tag}")
    save_columnar(sharded, col_dir)
    return {
        "flat": flat,
        "sharded": sharded,
        "columnar": load_columnar(col_dir),
    }


def _assert_equal_stores(a, b) -> None:
    assert len(a) == len(b)
    assert a.labels() == b.labels()
    assert a.app_names() == b.app_names()
    assert list(a.entries()) == list(b.entries())
    for fp, _ in a.entries():
        assert a.lookup_counts(fp) == b.lookup_counts(fp)
    assert a.stats() == b.stats()


class TestConformance:
    def test_all_backends_satisfy_the_protocol(self, tmp_path):
        for name, store in _backends(_random_flat(1), tmp_path, "conf").items():
            assert isinstance(store, DictionaryBackend), name

    def test_protocol_is_not_vacuous(self):
        class Half:
            def lookup(self, fp):
                return []

        assert not isinstance(Half(), DictionaryBackend)

    def test_lookup_many_on_every_backend(self, tmp_path):
        flat = _random_flat(2)
        keys = [fp for fp, _ in flat.entries()][:20] + [_fp(1e9)]
        expected = [flat.lookup(fp) for fp in keys]
        for name, store in _backends(flat, tmp_path, "lm").items():
            assert store.lookup_many(keys) == expected, name


class TestCrossBackendMerge:
    """merge works for every ordered (target, source) backend pair."""

    @pytest.mark.parametrize("target_kind", ["flat", "sharded", "columnar"])
    @pytest.mark.parametrize("source_kind", ["flat", "sharded", "columnar"])
    def test_merge_pairwise_equals_flat_reference(
        self, target_kind, source_kind, tmp_path
    ):
        targets = _backends(_random_flat(10), tmp_path, "t")
        sources = _backends(_random_flat(11), tmp_path, "s")
        reference = ExecutionFingerprintDictionary()
        reference.merge(_random_flat(10))
        reference.merge(_random_flat(11))
        target, source = targets[target_kind], sources[source_kind]
        target.merge(source)
        _assert_equal_stores(target, reference)

    def test_merge_preserves_string_table_order(self, tmp_path):
        # Regression: the source's label *registration* order — including
        # labels no key references — must survive a cross-backend merge,
        # because tie-breaking evaluates "the first application of the
        # array" in exactly that order.
        source = ExecutionFingerprintDictionary()
        source.register_label("aa_X")      # key-less, registered first
        source.add(_fp(100.0), "bb_Y")
        source.add(_fp(200.0), "cc_Z")
        source.register_label("dd_W")      # key-less, registered last
        sharded_src = ShardedDictionary.from_flat(source, 3)
        col_dir = str(tmp_path / "src-col")
        save_columnar(sharded_src, col_dir)
        for src in (source, sharded_src, load_columnar(col_dir)):
            assert src.labels() == ["aa_X", "bb_Y", "cc_Z", "dd_W"]
            target = ExecutionFingerprintDictionary()
            target.add(_fp(999.0), "ee_V")
            target.merge(src)
            assert target.labels() == [
                "ee_V", "aa_X", "bb_Y", "cc_Z", "dd_W"
            ], type(src).__name__
            assert target.app_names() == ["ee", "aa", "bb", "cc", "dd"]

    def test_merge_into_returns_entry_count(self):
        a, b = _random_flat(20, n=50), _random_flat(21, n=50)
        expected = sum(len(b.lookup_counts(fp)) for fp, _ in b.entries())
        assert merge_into(a, b) == expected

    def test_merge_into_columnar_lands_in_delta_log(self, tmp_path):
        # Folding a flat store into a columnar one must go through the
        # write-ahead log: vectorized paths stay live and the merge
        # survives a reload.
        base = _random_flat(30, n=60)
        sharded = ShardedDictionary.from_flat(base, 4)
        col_dir = str(tmp_path / "col")
        save_columnar(sharded, col_dir)
        col = load_columnar(col_dir)
        extra = _random_flat(31, n=40)
        col.merge(extra)
        reference = ExecutionFingerprintDictionary()
        reference.merge(base)
        reference.merge(extra)
        assert col.pristine          # base columns untouched
        assert col.delta_pending > 0
        _assert_equal_stores(col, reference)
        reopened = load_columnar(col_dir)  # replays the log
        _assert_equal_stores(reopened, reference)

    def test_sharded_to_flat_and_back_round_trip(self):
        flat = _random_flat(40)
        sharded = ShardedDictionary.from_flat(flat, 8)
        back = ExecutionFingerprintDictionary()
        back.merge(sharded)
        _assert_equal_stores(back, flat)
