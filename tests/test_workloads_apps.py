import numpy as np
import pytest

from repro.core.rounding import round_depth
from repro.telemetry.metrics import default_registry
from repro.workloads.cryptominer import make_cryptominer
from repro.workloads.inputs import (
    BASE_INPUTS,
    EXTENDED_INPUTS,
    INPUT_SIZES,
    get_input,
    input_scale,
)
from repro.workloads.nas import NAS_APPS, make_nas_app
from repro.workloads.proxies import PROXY_APPS, make_proxy_app
from repro.workloads.registry import (
    APP_NAMES,
    STARRED_APPS,
    WorkloadRegistry,
    default_workloads,
)
from repro.workloads.unknown import make_unknown_app

NR_MAPPED = default_registry().get("nr_mapped_vmstat")


class TestInputs:
    def test_four_sizes(self):
        assert set(INPUT_SIZES) == {"X", "Y", "Z", "L"}

    def test_scales_increase(self):
        scales = [input_scale(n) for n in ("X", "Y", "Z", "L")]
        assert scales == sorted(scales)
        assert scales[0] == 1.0

    def test_unknown_input_raises(self):
        with pytest.raises(KeyError):
            get_input("W")

    def test_base_vs_extended(self):
        assert BASE_INPUTS == ["X", "Y", "Z"]
        assert EXTENDED_INPUTS == ["X", "Y", "Z", "L"]


class TestTable4Calibration:
    """The nr_mapped levels must reproduce the paper's example EFD."""

    def test_ft_rounds_to_6000(self):
        app = make_nas_app("ft")
        for node in range(4):
            assert round_depth(app.base_level(NR_MAPPED, "X", node, 4), 2) == 6000.0

    def test_mg_rounds_to_6100(self):
        app = make_nas_app("mg")
        assert round_depth(app.base_level(NR_MAPPED, "Y", 0, 4), 2) == 6100.0

    def test_sp_bt_collide_at_depth_2(self):
        sp, bt = make_nas_app("sp"), make_nas_app("bt")
        for node in range(4):
            assert round_depth(sp.base_level(NR_MAPPED, "X", node, 4), 2) == \
                round_depth(bt.base_level(NR_MAPPED, "X", node, 4), 2)

    def test_sp_bt_node_pattern_matches_table4(self):
        # Table 4: node 0 -> 7600, nodes 1-2 -> 7500, node 3 -> 7100.
        sp = make_nas_app("sp")
        rounded = [
            round_depth(sp.base_level(NR_MAPPED, "X", n, 4), 2) for n in range(4)
        ]
        assert rounded == [7600.0, 7500.0, 7500.0, 7100.0]

    def test_sp_bt_separate_at_depth_3(self):
        # "Rounding depth 3 avoids this collision and also recognizes BT."
        sp, bt = make_nas_app("sp"), make_nas_app("bt")
        for node in range(4):
            assert round_depth(sp.base_level(NR_MAPPED, "X", node, 4), 3) != \
                round_depth(bt.base_level(NR_MAPPED, "X", node, 4), 3)

    def test_lu_node0_asymmetry(self):
        # Table 4: lu node 0 -> 8400, others -> 8300.
        lu = make_nas_app("lu")
        rounded = [
            round_depth(lu.base_level(NR_MAPPED, "Z", n, 4), 2) for n in range(4)
        ]
        assert rounded == [8400.0, 8300.0, 8300.0, 8300.0]

    def test_miniamr_input_dependent(self):
        # Table 4: miniAMR X -> 7800, Y -> 8000, Z -> 10000/11000 range.
        amr = make_proxy_app("miniAMR")
        assert round_depth(amr.base_level(NR_MAPPED, "X", 0, 4), 2) == 7800.0
        assert round_depth(amr.base_level(NR_MAPPED, "Y", 0, 4), 2) == 8000.0
        z = round_depth(amr.base_level(NR_MAPPED, "Z", 0, 4), 2)
        assert z in (10000.0, 11000.0)

    def test_minighost_rounds_to_7900(self):
        mg = make_proxy_app("miniGhost")
        assert round_depth(mg.base_level(NR_MAPPED, "L", 1, 4), 2) == 7900.0

    def test_all_depth2_buckets_distinct_across_apps(self):
        # Except the intended SP/BT collision, every app-input pair owns
        # distinct depth-2 buckets — the basis of the normal-fold F=1.0.
        workloads = default_workloads()
        buckets = {}
        for app_name in APP_NAMES:
            app = workloads.get(app_name)
            for inp in workloads.inputs_for(app_name):
                key = tuple(
                    round_depth(app.base_level(NR_MAPPED, inp, n, 4), 2)
                    for n in range(4)
                )
                group = "sp/bt" if app_name in ("sp", "bt") else app_name
                if key in buckets:
                    assert buckets[key] == group, (key, buckets[key], app_name)
                buckets[key] = group


class TestRegistries:
    def test_eleven_apps(self):
        assert len(APP_NAMES) == 11
        assert len(default_workloads()) == 11

    def test_starred_apps_have_L(self):
        workloads = default_workloads()
        for name in STARRED_APPS:
            assert "L" in workloads.inputs_for(name)

    def test_unstarred_apps_lack_L(self):
        workloads = default_workloads()
        assert workloads.inputs_for("ft") == ["X", "Y", "Z"]

    def test_pair_count_matches_table2(self):
        # 11 apps x 3 inputs + 4 starred apps x input L = 37 pairs.
        assert len(default_workloads().app_input_pairs()) == 37

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            default_workloads().get("hpl")

    def test_with_apps_subsets(self):
        sub = default_workloads().with_apps(["ft", "mg"])
        assert sub.names() == ["ft", "mg"]

    def test_extended_adds_model(self):
        registry = default_workloads()
        bigger = registry.extended(make_unknown_app("mystery"))
        assert "mystery" in bigger
        assert len(bigger) == 12

    def test_extended_rejects_duplicates(self):
        registry = default_workloads()
        with pytest.raises(ValueError):
            registry.extended(make_nas_app("ft"))

    def test_registry_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WorkloadRegistry({"wrong": make_nas_app("ft")})

    def test_nas_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_nas_app("ep")

    def test_proxy_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_proxy_app("lulesh")


class TestUnknownApps:
    def test_deterministic(self):
        a = make_unknown_app("novel", seed_salt=1)
        b = make_unknown_app("novel", seed_salt=1)
        assert a.base_level(NR_MAPPED, "X", 0, 4) == b.base_level(NR_MAPPED, "X", 0, 4)

    def test_distinct_salts_differ(self):
        a = make_unknown_app("novel", seed_salt=1)
        b = make_unknown_app("novel", seed_salt=2)
        assert a.base_level(NR_MAPPED, "X", 0, 4) != b.base_level(NR_MAPPED, "X", 0, 4)

    def test_adversarial_pinning(self):
        app = make_unknown_app("imposter", near_app_level=6000.0)
        assert app.base_level(NR_MAPPED, "X", 0, 4) == 6000.0

    def test_rejects_bad_level(self):
        with pytest.raises(ValueError):
            make_unknown_app("x", near_app_level=-5.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            make_unknown_app("")


class TestCryptominer:
    def test_footprint_far_from_known_apps(self):
        miner = make_cryptominer()
        level = miner.base_level(NR_MAPPED, "X", 0, 4)
        workloads = default_workloads()
        for name in APP_NAMES:
            app_level = workloads.get(name).base_level(NR_MAPPED, "X", 0, 4)
            assert abs(level - app_level) / app_level > 0.3

    def test_ignores_problem_size(self):
        miner = make_cryptominer()
        assert miner.base_level(NR_MAPPED, "X", 0, 4) == \
            miner.base_level(NR_MAPPED, "Z", 0, 4)

    def test_short_init_phase(self):
        assert make_cryptominer().init_duration < 20.0
