import math

import numpy as np
import pytest

from repro.core.rounding import (
    bucket_width,
    round_depth,
    round_depth_array,
    significant_digits,
)


class TestTable1:
    """round_depth must reproduce the paper's Table 1 exactly."""

    @pytest.mark.parametrize(
        "value,depth,expected",
        [
            (1358.0, 4, 1358.0),
            (1358.0, 3, 1360.0),
            (1358.0, 2, 1400.0),
            (1358.0, 1, 1000.0),
            (5.28, 3, 5.28),
            (5.28, 2, 5.3),
            (5.28, 1, 5.0),
            (0.038, 2, 0.038),
            (0.038, 1, 0.04),
        ],
    )
    def test_table1_cell(self, value, depth, expected):
        assert round_depth(value, depth) == pytest.approx(expected)

    def test_depth_beyond_precision_is_identity(self):
        # Table 1 marks these cells "-": rounding past the value's
        # precision leaves it unchanged.
        assert round_depth(1358.0, 5) == 1358.0
        assert round_depth(5.28, 4) == 5.28
        assert round_depth(0.038, 3) == 0.038


class TestRoundDepthEdges:
    def test_zero(self):
        assert round_depth(0.0, 1) == 0.0
        assert round_depth(0.0, 5) == 0.0

    def test_nan_propagates(self):
        assert math.isnan(round_depth(float("nan"), 2))

    def test_negative_values_mirror_positive(self):
        assert round_depth(-1358.0, 2) == -round_depth(1358.0, 2)

    def test_depth_zero_rejected(self):
        with pytest.raises(ValueError):
            round_depth(1.0, 0)

    def test_idempotent(self):
        for value in (1358.0, 5.28, 0.038, 77.7, 6543.0):
            for depth in (1, 2, 3):
                once = round_depth(value, depth)
                assert round_depth(once, depth) == once

    def test_boundary_near_power_of_ten(self):
        assert round_depth(999.9, 1) == 1000.0
        assert round_depth(1000.0, 1) == 1000.0
        assert round_depth(0.1, 1) == 0.1

    def test_same_bucket_same_fingerprint(self):
        # Two nearby measurements must collapse — the pruning property.
        assert round_depth(6032.0, 2) == round_depth(5972.0, 2) == 6000.0


class TestRoundDepthArray:
    def test_matches_scalar(self):
        values = np.array([1358.0, 5.28, 0.038, -42.0, 0.0])
        for depth in (1, 2, 3, 4):
            vectorized = round_depth_array(values, depth)
            scalars = [round_depth(v, depth) for v in values]
            assert np.allclose(vectorized, scalars)

    def test_handles_nan_and_inf(self):
        out = round_depth_array(np.array([np.nan, np.inf, 1.0]), 2)
        assert math.isnan(out[0])
        assert math.isinf(out[1])
        assert out[2] == 1.0

    def test_does_not_mutate_input(self):
        values = np.array([1358.0])
        round_depth_array(values, 1)
        assert values[0] == 1358.0

    def test_empty(self):
        assert len(round_depth_array(np.empty(0), 2)) == 0

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            round_depth_array(np.ones(3), 0)


class TestBucketWidth:
    def test_examples(self):
        assert bucket_width(7543.0, 2) == pytest.approx(100.0)
        assert bucket_width(7543.0, 3) == pytest.approx(10.0)
        assert bucket_width(5.28, 2) == pytest.approx(0.1)

    def test_zero_and_nan(self):
        assert bucket_width(0.0, 2) == 0.0
        assert bucket_width(float("nan"), 2) == 0.0

    def test_values_in_same_bucket_within_width(self):
        # From a bucket center, perturbations under half a width stay put.
        center = 6500.0
        width = bucket_width(center, 2)
        assert round_depth(center + 0.4 * width, 2) == center
        assert round_depth(center - 0.4 * width, 2) == center


class TestSignificantDigits:
    @pytest.mark.parametrize(
        "value,expected",
        [(1358.0, 4), (5.28, 3), (0.038, 2), (1000.0, 1), (0.0, 1), (7.0, 1)],
    )
    def test_examples(self, value, expected):
        assert significant_digits(value) == expected

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            significant_digits(float("inf"))
