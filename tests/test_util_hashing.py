import numpy as np
import pytest

from repro._util.hashing import (
    stable_choice,
    stable_hash,
    stable_seed_sequence,
    stable_uniform,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_distinct_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_type_sensitive(self):
        # "1" (str) and 1 (int) must hash differently: metric levels
        # derived from these must not alias.
        assert stable_hash("1") != stable_hash(1)

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_no_concatenation_ambiguity(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_64_bit_range(self):
        h = stable_hash("x")
        assert 0 <= h < 2 ** 64


class TestStableUniform:
    def test_in_default_range(self):
        for i in range(50):
            u = stable_uniform("k", i)
            assert 0.0 <= u < 1.0

    def test_custom_range(self):
        u = stable_uniform("k", low=5.0, high=6.0)
        assert 5.0 <= u < 6.0

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            stable_uniform("k", low=2.0, high=2.0)

    def test_roughly_uniform(self):
        values = [stable_uniform("salt", i) for i in range(2000)]
        assert abs(np.mean(values) - 0.5) < 0.03


class TestStableChoice:
    def test_picks_from_options(self):
        assert stable_choice(["a", "b", "c"], "seed") in {"a", "b", "c"}

    def test_deterministic(self):
        assert stable_choice([1, 2, 3], "x") == stable_choice([1, 2, 3], "x")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            stable_choice([], "x")


class TestStableSeedSequence:
    def test_produces_reproducible_generator(self):
        a = np.random.default_rng(stable_seed_sequence("s")).random(4)
        b = np.random.default_rng(stable_seed_sequence("s")).random(4)
        assert np.array_equal(a, b)
