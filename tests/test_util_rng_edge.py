import numpy as np
import pytest

from repro._util.rng import derive_rng


class TestDeriveRngEdgeCases:
    def test_seed_sequence_with_list_entropy(self):
        # SeedSequence entropy may be a list (e.g. from spawning); salting
        # must not crash on non-int entropy.
        g = derive_rng(np.random.SeedSequence([1, 2, 3]), "salt")
        assert 0.0 <= g.random() < 1.0

    def test_generator_with_salt_deterministic(self):
        a = derive_rng(np.random.default_rng(5), "x").random()
        b = derive_rng(np.random.default_rng(5), "x").random()
        assert a == b

    def test_generator_with_salt_does_not_mutate_parent(self):
        parent = np.random.default_rng(5)
        before = parent.bit_generator.state
        derive_rng(parent, "x")
        assert parent.bit_generator.state == before

    def test_generator_salt_differs_from_parent_stream(self):
        parent = np.random.default_rng(5)
        child = derive_rng(parent, "x")
        assert child.random() != np.random.default_rng(5).random()
