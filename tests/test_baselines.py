import numpy as np
import pytest

from repro.baselines.nearest import NearestCentroidRecognizer, OneNNRecognizer
from repro.baselines.taxonomist import TaxonomistClassifier, _majority


class TestMajorityVote:
    def test_simple_majority(self):
        assert _majority(["ft", "ft", "mg"], "unknown") == "ft"

    def test_known_beats_unknown_on_tie(self):
        assert _majority(["ft", "ft", "unknown", "unknown"], "unknown") == "ft"

    def test_empty_is_unknown(self):
        assert _majority([], "unknown") == "unknown"


class TestTaxonomistClassifier:
    def test_fit_predict_on_training_data(self, multimetric_dataset):
        clf = TaxonomistClassifier(n_estimators=15, random_state=0).fit(
            multimetric_dataset
        )
        predictions = clf.predict(multimetric_dataset)
        accuracy = np.mean(
            [p == r.app_name for p, r in zip(predictions, multimetric_dataset)]
        )
        assert accuracy > 0.9

    def test_predict_nodes_granularity(self, multimetric_dataset):
        clf = TaxonomistClassifier(n_estimators=10, random_state=0).fit(
            multimetric_dataset
        )
        node_labels = clf.predict_nodes(multimetric_dataset)
        assert len(node_labels) == len(multimetric_dataset) * 4

    def test_unknown_app_flagged_by_confidence(self, multimetric_dataset):
        train = multimetric_dataset.filter(exclude_apps=["miniAMR"])
        test = multimetric_dataset.filter(apps=["miniAMR"])
        clf = TaxonomistClassifier(
            n_estimators=20, confidence_threshold=0.8, random_state=0
        ).fit(train)
        predictions = clf.predict(test)
        assert predictions.count("unknown") >= len(test) // 2

    def test_threshold_zero_never_unknown(self, multimetric_dataset):
        clf = TaxonomistClassifier(
            n_estimators=10, confidence_threshold=0.0, random_state=0
        ).fit(multimetric_dataset)
        assert "unknown" not in clf.predict(multimetric_dataset)

    def test_single_record_predict(self, multimetric_dataset):
        clf = TaxonomistClassifier(n_estimators=10, random_state=0).fit(
            multimetric_dataset
        )
        assert isinstance(clf.predict(multimetric_dataset[0]), str)

    def test_metric_subset(self, multimetric_dataset):
        clf = TaxonomistClassifier(
            metrics=["nr_mapped_vmstat"], n_estimators=10, random_state=0
        ).fit(multimetric_dataset)
        assert clf.predict_one(multimetric_dataset[0]) in (
            multimetric_dataset[0].app_name, "unknown"
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TaxonomistClassifier(confidence_threshold=1.5)
        with pytest.raises(RuntimeError):
            TaxonomistClassifier().predict_nodes([])


class TestNearestBaselines:
    @pytest.mark.parametrize("cls", [NearestCentroidRecognizer, OneNNRecognizer])
    def test_recognizes_training_apps(self, cls, tiny_dataset):
        recognizer = cls().fit(tiny_dataset)
        predictions = recognizer.predict(tiny_dataset)
        accuracy = np.mean(
            [p == r.app_name for p, r in zip(predictions, tiny_dataset)]
        )
        assert accuracy == 1.0

    @pytest.mark.parametrize("cls", [NearestCentroidRecognizer, OneNNRecognizer])
    def test_flags_far_unknowns(self, cls, tiny_dataset, small_dataset):
        recognizer = cls(rel_threshold=0.02).fit(tiny_dataset)
        kripke = [r for r in small_dataset if r.label == "kripke_X"][0]
        assert recognizer.predict_one(kripke) == "unknown"

    @pytest.mark.parametrize("cls", [NearestCentroidRecognizer, OneNNRecognizer])
    def test_single_record_api(self, cls, tiny_dataset):
        recognizer = cls().fit(tiny_dataset)
        assert isinstance(recognizer.predict(tiny_dataset[0]), str)

    @pytest.mark.parametrize("cls", [NearestCentroidRecognizer, OneNNRecognizer])
    def test_validation(self, cls):
        with pytest.raises(ValueError):
            cls(rel_threshold=0.0)
        with pytest.raises((RuntimeError, ValueError)):
            cls().fit([])
