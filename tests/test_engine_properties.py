"""Property tests: the engine is *exactly* the flat EFD, only faster.

Sharding and batching are pure reorganizations — every observable
(lookups, tie arrays, vote counts, stats) must be byte-identical to the
single-dictionary, one-execution-at-a-time reference path.  These tests
drive both layers with randomized dictionaries (seeded — reproducible)
and with the synthetic datasets, across shard counts {1, 2, 4, 8} and
all three pool backends.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint, build_fingerprints
from repro.core.matcher import match_fingerprints, vote
from repro.core.recognizer import EFDRecognizer
from repro.core.streaming import StreamingRecognizer
from repro.engine import (
    BatchRecognizer,
    ShardedDictionary,
    load_columnar,
    match_fingerprints_batch,
    save_columnar,
    shard_index,
)
from repro.engine.batch import build_fingerprints_batch

SHARD_COUNTS = (1, 2, 4, 8)
BACKENDS = ("serial", "thread", "process")

_METRICS = ("nr_mapped_vmstat", "Committed_AS_meminfo")
_INTERVALS = ((60.0, 120.0), (0.0, 60.0))
_APPS = ("ft", "mg", "sp", "bt", "miniAMR")
_INPUTS = ("X", "Y", "Z")


def _random_fingerprint(rng: random.Random) -> Fingerprint:
    return Fingerprint(
        metric=rng.choice(_METRICS),
        node=rng.randrange(4),
        interval=rng.choice(_INTERVALS),
        value=float(rng.randrange(1, 200) * 100),
    )


def _random_pairs(rng: random.Random, n: int):
    return [
        (
            _random_fingerprint(rng),
            f"{rng.choice(_APPS)}_{rng.choice(_INPUTS)}",
        )
        for _ in range(n)
    ]


def _build_both(seed: int, n_shards: int, n_pairs: int = 300):
    rng = random.Random(seed)
    pairs = _random_pairs(rng, n_pairs)
    flat = ExecutionFingerprintDictionary()
    sharded = ShardedDictionary(n_shards)
    for fp, label in pairs:
        flat.add(fp, label)
        sharded.add(fp, label)
    return flat, sharded, rng


class TestShardedEqualsFlat:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_read_contract_identical(self, n_shards):
        flat, sharded, _ = _build_both(seed=n_shards, n_shards=n_shards)
        assert len(sharded) == len(flat)
        assert sharded.labels() == flat.labels()
        assert sharded.app_names() == flat.app_names()
        assert sharded.metrics() == flat.metrics()
        assert sharded.intervals() == flat.intervals()
        assert list(sharded.entries()) == list(flat.entries())
        assert sharded.stats() == flat.stats()
        assert sharded.collisions() == flat.collisions()
        for app in _APPS:
            assert sharded.fingerprints_for(app) == flat.fingerprints_for(app)

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_lookups_identical(self, n_shards):
        flat, sharded, rng = _build_both(seed=10 + n_shards, n_shards=n_shards)
        queries = [fp for fp, _ in sharded.entries()]
        queries += [_random_fingerprint(rng) for _ in range(100)]  # misses too
        for fp in queries:
            assert sharded.lookup(fp) == flat.lookup(fp)
            assert sharded.lookup_counts(fp) == flat.lookup_counts(fp)
            assert (fp in sharded) == (fp in flat)
        assert sharded.lookup(None) == flat.lookup(None) == []

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_match_and_vote_identical(self, n_shards):
        flat, sharded, rng = _build_both(seed=20 + n_shards, n_shards=n_shards)
        known = [fp for fp, _ in flat.entries()]
        for _ in range(50):
            fps = []
            for _ in range(rng.randrange(1, 6)):
                roll = rng.random()
                if roll < 0.2:
                    fps.append(None)  # node without a fingerprint
                elif roll < 0.5:
                    fps.append(_random_fingerprint(rng))  # likely a miss
                else:
                    fps.append(rng.choice(known))
            assert match_fingerprints(sharded, fps) == match_fingerprints(flat, fps)

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_from_flat_and_to_flat_round_trip(self, n_shards):
        flat, _, _ = _build_both(seed=30 + n_shards, n_shards=n_shards)
        sharded = ShardedDictionary.from_flat(flat, n_shards)
        assert list(sharded.entries()) == list(flat.entries())
        back = sharded.to_flat()
        assert list(back.entries()) == list(flat.entries())
        assert back.labels() == flat.labels()
        assert back.stats() == flat.stats()

    def test_keys_land_on_their_hash_shard(self):
        _, sharded, _ = _build_both(seed=99, n_shards=8)
        for i, shard in enumerate(sharded.shards):
            for fp, _ in shard.entries():
                assert shard_index(fp, 8) == i

    def test_shard_routing_is_deterministic(self):
        rng = random.Random(4)
        for _ in range(50):
            fp = _random_fingerprint(rng)
            assert shard_index(fp, 8) == shard_index(
                Fingerprint(fp.metric, fp.node, fp.interval, fp.value), 8
            )

    def test_negative_zero_routes_like_positive_zero(self):
        # Fingerprint(-0.0) == Fingerprint(0.0) (float equality), so the
        # two must be one key in every shard layout.
        pos = Fingerprint("m", 0, (60.0, 120.0), 0.0)
        neg = Fingerprint("m", 0, (60.0, 120.0), -0.0)
        assert pos == neg
        for n_shards in SHARD_COUNTS:
            assert shard_index(pos, n_shards) == shard_index(neg, n_shards)
        sharded = ShardedDictionary(8)
        sharded.add(pos, "ft_X")
        sharded.add(neg, "ft_X")
        assert len(sharded) == 1
        assert sharded.lookup_counts(neg) == {"ft_X": 2}

    def test_numpy_typed_keys_route_like_python_typed(self):
        import numpy as np

        py = Fingerprint("m", 3, (60.0, 120.0), 6000.0)
        npy = Fingerprint(
            "m", int(np.int64(3)), (60.0, 120.0), np.float64(6000.0)
        )
        assert py == npy
        for n_shards in SHARD_COUNTS:
            assert shard_index(py, n_shards) == shard_index(npy, n_shards)
        sharded = ShardedDictionary(8)
        sharded.add(py, "ft_X")
        assert sharded.lookup(npy) == ["ft_X"]
        # And the raw-numpy-node variant (no int() coercion by caller):
        raw = Fingerprint("m", np.int64(3), (60.0, 120.0), np.float64(6000.0))
        assert shard_index(raw, 8) == shard_index(py, 8)

    def test_negative_zero_rounds_like_scalar(self):
        from repro.core.rounding import round_depth, round_depth_array

        arr = round_depth_array([-0.0, 0.0, 5.28], 2)
        assert str(arr[0]) == str(round_depth(-0.0, 2)) == "0.0"
        assert arr[2] == round_depth(5.28, 2)


class TestBulkAddAndMerge:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bulk_add_equals_sequential(self, backend):
        rng = random.Random(55)
        pairs = _random_pairs(rng, 200)
        sequential = ShardedDictionary(4)
        for fp, label in pairs:
            sequential.add(fp, label)
        bulk = ShardedDictionary(4)
        inserted = bulk.bulk_add(pairs, backend=backend, n_workers=2)
        assert inserted == len(pairs)
        assert list(bulk.entries()) == list(sequential.entries())
        assert bulk.labels() == sequential.labels()
        assert bulk.stats() == sequential.stats()

    def test_bulk_add_skips_none(self):
        rng = random.Random(56)
        pairs = _random_pairs(rng, 20)
        with_gaps = [(None, "ft_X")] + pairs + [(None, "mg_Y")]
        sharded = ShardedDictionary(2)
        assert sharded.bulk_add(with_gaps) == len(pairs)
        # None carries no fingerprint but its label still registers, as
        # in add_many + register_label semantics the engine documents.
        assert "mg_Y" in sharded.labels()

    def test_merge_matches_flat_merge(self):
        flat_a, sharded_a, _ = _build_both(seed=60, n_shards=4, n_pairs=150)
        flat_b, sharded_b, _ = _build_both(seed=61, n_shards=8, n_pairs=150)
        flat_a.merge(flat_b)
        sharded_a.merge(sharded_b)  # shard counts differ: keys re-route
        assert sorted(
            (str(fp), labels) for fp, labels in sharded_a.entries()
        ) == sorted((str(fp), labels) for fp, labels in flat_a.entries())
        for fp, _ in flat_a.entries():
            assert sharded_a.lookup_counts(fp) == flat_a.lookup_counts(fp)
        assert sharded_a.stats() == flat_a.stats()


class TestBatchEqualsSequential:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        records = list(tiny_dataset)
        sequential = [
            match_fingerprints(
                recognizer.dictionary_,
                build_fingerprints(r, "nr_mapped_vmstat", 2),
            )
            for r in records
        ]
        return recognizer, records, sequential

    def test_build_fingerprints_batch_identical(self, fitted):
        _, records, _ = fitted
        batched = build_fingerprints_batch(records, "nr_mapped_vmstat", 2)
        expected = [
            build_fingerprints(r, "nr_mapped_vmstat", 2) for r in records
        ]
        assert batched == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_recognize_records_equals_loop(self, fitted, backend, n_shards):
        recognizer, records, sequential = fitted
        sharded = ShardedDictionary.from_flat(recognizer.dictionary_, n_shards)
        engine = BatchRecognizer(
            sharded, depth=2, backend=backend, n_workers=2
        )
        assert engine.recognize_records(records) == sequential
        # Second pass exercises the cached lookup index.
        assert engine.recognize_records(records) == sequential

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_flat_dictionary_accepted_too(self, fitted, backend):
        recognizer, records, sequential = fitted
        engine = BatchRecognizer(
            recognizer.dictionary_, depth=2, backend=backend, n_workers=2
        )
        assert engine.recognize_records(records) == sequential

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_match_fingerprints_batch_equals_loop(self, fitted, backend):
        recognizer, records, sequential = fitted
        fingerprint_lists = [
            build_fingerprints(r, "nr_mapped_vmstat", 2) for r in records
        ]
        sharded = ShardedDictionary.from_flat(recognizer.dictionary_, 4)
        results, n_hits = match_fingerprints_batch(
            sharded, fingerprint_lists, backend=backend, n_workers=2
        )
        assert results == sequential
        assert n_hits == sum(
            1
            for fps in fingerprint_lists
            for fp in fps
            if fp is not None and sharded.lookup(fp)
        )

    def test_index_invalidated_on_dictionary_growth(self, fitted):
        recognizer, records, _ = fitted
        sharded = ShardedDictionary.from_flat(recognizer.dictionary_, 4)
        engine = BatchRecognizer(sharded, depth=2)
        before = engine.recognize_records(records[:4])
        assert not before[0].is_unknown
        # Teach the store a colliding label for every key the first
        # record matched; the next batch must see it.
        fps = build_fingerprints(records[0], "nr_mapped_vmstat", 2)
        for fp in fps:
            if fp is not None:
                sharded.add(fp, "zz_Q")
        after = engine.recognize_records(records[:1])
        assert "zz" in after[0].votes

    def test_repeated_patterns_return_independent_results(self, fitted):
        recognizer, records, _ = fitted
        engine = BatchRecognizer(recognizer.dictionary_, depth=2)
        # Same record twice: identical verdicts, but independent objects
        # (the sequential path never aliases), so in-place mutation of
        # one must not leak into the other.
        a, b = engine.recognize_records([records[0], records[0]])
        assert a == b
        assert a is not b
        assert a.votes is not b.votes
        assert a.matched_labels is not b.matched_labels
        a.votes["poisoned"] = 99
        assert "poisoned" not in b.votes

    def test_recognize_sessions_equals_individual_verdicts(self, fitted):
        recognizer, records, _ = fitted
        streaming = StreamingRecognizer.from_recognizer(recognizer)
        sessions = []
        for record in records[:10]:
            session = streaming.open_session(n_nodes=record.n_nodes)
            for node in range(record.n_nodes):
                series = record.series("nr_mapped_vmstat", node)
                session.ingest_many(node, series.times, series.values)
            sessions.append(session)
        engine = BatchRecognizer(
            ShardedDictionary.from_flat(recognizer.dictionary_, 4), depth=2
        )
        batch = engine.recognize_sessions(sessions)
        assert batch == [s.verdict() for s in sessions]

    def test_recognize_sessions_requires_ready(self, fitted):
        recognizer, records, _ = fitted
        streaming = StreamingRecognizer.from_recognizer(recognizer)
        session = streaming.open_session(n_nodes=records[0].n_nodes)
        engine = BatchRecognizer(recognizer.dictionary_, depth=2)
        with pytest.raises(RuntimeError, match="not yet complete"):
            engine.recognize_sessions([session])
        assert engine.recognize_sessions([session], force=True)[0].is_unknown

    def test_predict_uses_unknown_label(self, fitted):
        recognizer, records, _ = fitted
        engine = BatchRecognizer(
            recognizer.dictionary_,
            depth=2,
            interval=(900.0, 960.0),  # beyond the data: every node misses
            unknown_label="???",
        )
        assert engine.predict(records[:3]) == ["???"] * 3

    def test_stats_accumulate(self, fitted):
        recognizer, records, _ = fitted
        engine = BatchRecognizer(recognizer.dictionary_, depth=2)
        engine.recognize_records(records[:5])
        engine.recognize_records(records[5:8])
        assert engine.stats.n_batches == 2
        assert engine.stats.n_executions == 8
        assert engine.stats.n_lookups == sum(
            r.n_nodes for r in records[:8]
        )
        assert engine.stats.hit_rate > 0.9


class TestColumnarBackendEqualsFlat:
    """The storage-backend equivalence matrix.

    Every backend — flat, sharded-JSON round trip, columnar in both its
    npz and mmap storages — must produce byte-identical MatchResults,
    across shard counts, on both the record path (vectorized column
    index) and the session path (vectorized full-key lookup)."""

    @pytest.fixture(scope="class")
    def fitted(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        records = list(tiny_dataset)
        sequential = [
            match_fingerprints(
                recognizer.dictionary_,
                build_fingerprints(r, "nr_mapped_vmstat", 2),
            )
            for r in records
        ]
        return recognizer, records, sequential

    def _stores(self, recognizer, n_shards, tmp_path):
        from repro.engine import load_sharded, save_sharded

        flat = recognizer.dictionary_
        sharded = ShardedDictionary.from_flat(flat, n_shards)
        json_dir = str(tmp_path / "json")
        save_sharded(sharded, json_dir)
        col_dir = str(tmp_path / "col")
        save_columnar(sharded, col_dir)
        mmap_dir = str(tmp_path / "mmap")
        save_columnar(sharded, mmap_dir, storage="mmap")
        return {
            "flat": flat,
            "sharded-json": load_sharded(json_dir),
            "columnar": load_columnar(col_dir),
            "columnar-mmap": load_columnar(mmap_dir),
        }

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_recognize_records_identical_across_backends(
        self, fitted, n_shards, tmp_path
    ):
        recognizer, records, sequential = fitted
        for name, store in self._stores(recognizer, n_shards, tmp_path).items():
            engine = BatchRecognizer(store, depth=2)
            assert engine.recognize_records(records) == sequential, name
            # Second pass exercises the cached (vectorized) index.
            assert engine.recognize_records(records) == sequential, name

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_columnar_batch_path_never_hydrates(
        self, fitted, n_shards, tmp_path
    ):
        recognizer, records, sequential = fitted
        store = self._stores(recognizer, n_shards, tmp_path)["columnar"]
        engine = BatchRecognizer(store, depth=2)
        assert engine.recognize_records(records) == sequential
        fingerprint_lists = [
            build_fingerprints(r, "nr_mapped_vmstat", 2) for r in records
        ]
        results, _ = match_fingerprints_batch(store, fingerprint_lists)
        assert results == sequential
        assert not any(shard.hydrated for shard in store.shards)

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_match_fingerprints_batch_identical_across_backends(
        self, fitted, n_shards, tmp_path
    ):
        recognizer, records, sequential = fitted
        fingerprint_lists = [
            build_fingerprints(r, "nr_mapped_vmstat", 2) for r in records
        ]
        reference = None
        for name, store in self._stores(recognizer, n_shards, tmp_path).items():
            results, n_hits = match_fingerprints_batch(store, fingerprint_lists)
            assert results == sequential, name
            if reference is None:
                reference = n_hits
            assert n_hits == reference, name

    def test_columnar_sessions_equal_individual_verdicts(
        self, fitted, tmp_path
    ):
        recognizer, records, _ = fitted
        store = self._stores(recognizer, 4, tmp_path)["columnar"]
        streaming = StreamingRecognizer.from_recognizer(recognizer)
        sessions = []
        for record in records[:10]:
            session = streaming.open_session(n_nodes=record.n_nodes)
            for node in range(record.n_nodes):
                series = record.series("nr_mapped_vmstat", node)
                session.ingest_many(node, series.times, series.values)
            sessions.append(session)
        engine = BatchRecognizer(store, depth=2)
        assert engine.recognize_sessions(sessions) == [
            s.verdict() for s in sessions
        ]
        assert not any(shard.hydrated for shard in store.shards)

    def test_columnar_index_invalidated_on_growth(self, fitted, tmp_path):
        recognizer, records, _ = fitted
        store = self._stores(recognizer, 4, tmp_path)["columnar"]
        engine = BatchRecognizer(store, depth=2)
        before = engine.recognize_records(records[:4])
        assert not before[0].is_unknown
        fps = build_fingerprints(records[0], "nr_mapped_vmstat", 2)
        for fp in fps:
            if fp is not None:
                store.add(fp, "zz_Q")
        after = engine.recognize_records(records[:1])
        assert "zz" in after[0].votes
        # The mutated store keeps answering correctly via the fallback
        # dict index, and matches a flat dictionary grown the same way.
        flat = recognizer.dictionary_
        grown = ShardedDictionary.from_flat(flat, 1).to_flat()
        for fp in fps:
            if fp is not None:
                grown.add(fp, "zz_Q")
        expected = [
            match_fingerprints(
                grown, build_fingerprints(r, "nr_mapped_vmstat", 2)
            )
            for r in records[:4]
        ]
        assert engine.recognize_records(records[:4]) == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mutated_columnar_correct_on_every_backend(
        self, fitted, backend, tmp_path
    ):
        # After a write the columnar store answers through the generic
        # shard fan-out — including process workers, which must be able
        # to pickle the lazily-hydrating shard proxies.
        recognizer, records, _ = fitted
        store = self._stores(recognizer, 4, tmp_path)["columnar"]
        fps = build_fingerprints(records[0], "nr_mapped_vmstat", 2)
        for fp in fps:
            if fp is not None:
                store.add(fp, "zz_Q")
        engine = BatchRecognizer(store, depth=2, backend=backend, n_workers=2)
        results = engine.recognize_records(records[:6])
        assert "zz" in results[0].votes
        fingerprint_lists = [
            build_fingerprints(r, "nr_mapped_vmstat", 2) for r in records[:6]
        ]
        batch, _ = match_fingerprints_batch(
            store, fingerprint_lists, backend=backend, n_workers=2
        )
        assert batch == results

    def test_warm_prebuilds_and_keeps_results_identical(
        self, fitted, tmp_path
    ):
        recognizer, records, sequential = fitted
        store = self._stores(recognizer, 2, tmp_path)["columnar"]
        engine = BatchRecognizer(store, depth=2).warm()
        assert engine._index is not None
        assert engine.recognize_records(records) == sequential
        # Session-path warm builds the full-key index without hydration.
        engine.warm(for_sessions=True)
        assert store._full_index is not None
        assert not any(shard.hydrated for shard in store.shards)

    def test_lookup_many_returns_independent_lists(self, fitted, tmp_path):
        recognizer, records, _ = fitted
        store = self._stores(recognizer, 2, tmp_path)["columnar"]
        fp = next(
            fp for fp in build_fingerprints(records[0], "nr_mapped_vmstat", 2)
            if fp is not None
        )
        first = store.lookup_many([fp])[0]
        assert first == store.lookup(fp)
        first.append("poisoned")  # lookup()'s contract permits mutation
        assert store.lookup_many([fp])[0] == store.lookup(fp)

    def test_empty_batch_returns_empty_on_every_backend(
        self, fitted, tmp_path
    ):
        recognizer, _, _ = fitted
        for name, store in self._stores(recognizer, 2, tmp_path).items():
            engine = BatchRecognizer(store, depth=2)
            assert engine.recognize_records([]) == [], name
            results, n_hits = match_fingerprints_batch(store, [])
            assert results == [] and n_hits == 0, name


class TestStorageEquivalenceUnderInterleavings:
    """Element-wise verdict equality across {flat, sharded-JSON, npz,
    mmap} under random learn/compact/reshard interleavings.

    The flat dictionary is the oracle; the columnar directories go
    through real on-disk compactions and reshards between probes, so
    the delta-log overlay, the rebuilt filters, and the generation
    machinery are all exercised mid-stream, in both storages.
    """

    N_OPS = 10
    _COLUMNAR = ("columnar-npz", "columnar-mmap")

    def _assert_equal(self, flat, stores, probes):
        expected = [flat.lookup(fp) for fp in probes]
        for name, store in stores.items():
            got = store.lookup_many(probes)
            assert got is not None, name
            assert got == expected, name
            for fp in probes:
                assert (fp in store) == (fp in flat), (name, str(fp))
                assert store.lookup_counts(fp) == flat.lookup_counts(fp), name

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_random_interleavings(self, seed, tmp_path):
        from repro.engine import (
            compact_shards,
            load_sharded,
            reshard,
            reshard_store,
            save_sharded,
        )

        rng = random.Random(500 + seed)
        pairs = _random_pairs(rng, 150)
        flat = ExecutionFingerprintDictionary()
        sharded = ShardedDictionary(4)
        for fp, label in pairs:
            flat.add(fp, label)
            sharded.add(fp, label)
        dirs = {
            "columnar-npz": str(tmp_path / "npz"),
            "columnar-mmap": str(tmp_path / "mmap"),
        }
        json_dir = str(tmp_path / "json")
        save_sharded(sharded, json_dir)
        save_columnar(sharded, dirs["columnar-npz"], storage="npz")
        save_columnar(sharded, dirs["columnar-mmap"], storage="mmap")
        stores = {"sharded-json": load_sharded(json_dir)}
        for name, path in dirs.items():
            stores[name] = load_columnar(path)

        def probes():
            known = [fp for fp, _ in flat.entries()]
            mix = [rng.choice(known) for _ in range(15)]
            mix += [_random_fingerprint(rng) for _ in range(15)]  # misses
            return mix

        self._assert_equal(flat, stores, probes())
        for _ in range(self.N_OPS):
            op = rng.choice(("learn", "learn", "compact", "reshard"))
            if op == "learn":
                for fp, label in _random_pairs(rng, rng.randrange(1, 5)):
                    flat.add(fp, label)
                    for store in stores.values():
                        store.add(fp, label)
            elif op == "compact":
                for name in self._COLUMNAR:
                    try:
                        compact_shards(dirs[name])
                    except ValueError:
                        pass  # nothing pending — a no-op interleaving
                    stores[name] = load_columnar(dirs[name])
            else:
                n_new = rng.choice((1, 2, 3, 5, 8))
                # The JSON store mutated in memory only; reshard it in
                # memory too.  The columnar adds hit the on-disk
                # delta-log, so the directory reshard folds them.
                stores["sharded-json"] = reshard_store(
                    stores["sharded-json"], n_new
                )
                for name in self._COLUMNAR:
                    reshard(dirs[name], n_new)
                    stores[name] = load_columnar(dirs[name])
            self._assert_equal(flat, stores, probes())

    @pytest.mark.parametrize("seed", (0, 1))
    def test_storage_conversion_mid_stream(self, seed, tmp_path):
        from repro.engine import compact_shards

        rng = random.Random(900 + seed)
        flat, sharded, _ = _build_both(seed=900 + seed, n_shards=4)
        directory = str(tmp_path / "efd")
        save_columnar(sharded, directory, storage="npz")
        store = load_columnar(directory)
        for target in ("mmap", "npz", "mmap"):
            for fp, label in _random_pairs(rng, 3):
                flat.add(fp, label)
                store.add(fp, label)
            compact_shards(directory, layout=target)
            store = load_columnar(directory)
            assert store.storage == target
            known = [fp for fp, _ in flat.entries()]
            mix = [rng.choice(known) for _ in range(15)]
            mix += [_random_fingerprint(rng) for _ in range(15)]
            assert store.lookup_many(mix) == [flat.lookup(fp) for fp in mix]


class TestReplicaEqualsLeaderUnderInterleavings:
    """Element-wise verdict equality across a live replication link.

    The flat dictionary is the oracle; the leader mutates a real
    on-disk columnar store whose delta-log a
    :class:`~repro.engine.replicate.ReplicationPublisher` ships to an
    attached :class:`~repro.engine.replicate.ReplicationFollower`.
    Random learn / compact / ship interleavings exercise record
    streaming, catch-up, and base swaps mid-stream; at every ``ship``
    point the replica has converged to the leader's exact
    ``(generation, applied)`` position and its verdicts must be
    element-wise equal to the leader's — which must equal the flat
    oracle's — in both storages.
    """

    N_OPS = 12

    @pytest.mark.parametrize("storage", ("npz", "mmap"))
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_random_learn_compact_ship(self, storage, seed, tmp_path):
        import asyncio

        from repro.engine.replicate import (
            ReplicationFollower,
            ReplicationPublisher,
        )

        rng = random.Random(700 + seed)
        pairs = _random_pairs(rng, 120)
        flat = ExecutionFingerprintDictionary()
        sharded = ShardedDictionary(3)
        for fp, label in pairs:
            flat.add(fp, label)
            sharded.add(fp, label)
        leader_dir = str(tmp_path / "leader")
        replica_dir = str(tmp_path / "replica")
        save_columnar(sharded, leader_dir, storage=storage)

        def probes():
            known = [fp for fp, _ in flat.entries()]
            mix = [rng.choice(known) for _ in range(10)]
            mix += [_random_fingerprint(rng) for _ in range(10)]  # misses
            return mix

        def assert_verdicts_equal(replica, leader):
            fps = probes()
            oracle = match_fingerprints(flat, fps)
            assert match_fingerprints(leader, fps) == oracle
            assert match_fingerprints(replica, fps) == oracle
            assert replica.lookup_many(fps) == [flat.lookup(fp) for fp in fps]
            for fp in fps:
                assert replica.lookup_counts(fp) == flat.lookup_counts(fp)

        async def run():
            leader = load_columnar(leader_dir)
            async with ReplicationPublisher(
                leader_dir, port=0, poll_interval=0.005, heartbeat=0.02
            ) as publisher:
                host, port = publisher.tcp_address
                follower = ReplicationFollower(
                    replica_dir, host=host, port=port, reconnect_delay=0.01
                )
                await follower.start()
                assert await follower.wait_ready(timeout=30.0)
                follower.attach(load_columnar(replica_dir))
                try:
                    for _ in range(self.N_OPS):
                        op = rng.choice(
                            ("learn", "learn", "learn", "compact", "ship")
                        )
                        if op == "learn":
                            for fp, label in _random_pairs(
                                rng, rng.randrange(1, 5)
                            ):
                                count = rng.randrange(1, 3)
                                flat.add_repeated(fp, label, count)
                                leader.add_repeated(fp, label, count)
                        elif op == "compact":
                            # Compact *without* waiting for the replica:
                            # a behind follower must catch up through
                            # the base-swap snapshot, not the records.
                            leader.compact_delta()
                        else:
                            assert await follower.wait_position(
                                leader._delta.generation,
                                leader.delta_pending,
                                timeout=30.0,
                            ), f"replica stuck (lag={follower.lag})"
                            assert_verdicts_equal(follower.store, leader)
                    assert await follower.wait_position(
                        leader._delta.generation, leader.delta_pending,
                        timeout=30.0,
                    ), f"replica stuck (lag={follower.lag})"
                    assert_verdicts_equal(follower.store, leader)
                finally:
                    await follower.close()

        asyncio.run(run())


class TestRemoteEqualsFlatUnderInterleavings:
    """Element-wise equality of the distributed fan-out client.

    Each host loads a real columnar directory (npz or mmap) and serves
    a slice of the shard space over the framed probe protocol; the
    flat dictionary is the oracle.  Learns go through
    :class:`~repro.engine.remote.RemoteShardBackend` mid-stream — the
    write path propagates to the owning hosts — and every probe batch
    (plain, with counts, and through the batch matcher) must stay
    element-wise identical to the single-process path, across host
    counts {1, 2, 3} and both storage layouts.
    """

    N_SHARDS = 3

    def _spawn(self, tmp_path, storage, n_hosts, sharded):
        from repro.engine.remote import ShardServerThread

        threads, specs = [], []
        for k in range(n_hosts):
            directory = str(tmp_path / f"host{k}")
            save_columnar(sharded, directory, storage=storage)
            owned = [s for s in range(self.N_SHARDS) if s % n_hosts == k]
            thread = ShardServerThread(
                load_columnar(directory), n_shards=self.N_SHARDS,
                shards=owned,
            ).start()
            threads.append(thread)
            specs.append(
                f"{','.join(str(s) for s in owned)}@{thread.endpoint}"
            )
        return threads, specs

    @pytest.mark.parametrize("storage", ("npz", "mmap"))
    @pytest.mark.parametrize("n_hosts", (1, 2, 3))
    def test_random_learn_probe_interleavings(
        self, storage, n_hosts, tmp_path
    ):
        from repro.engine.remote import RemoteShardBackend

        rng = random.Random(1000 + 10 * n_hosts + (storage == "mmap"))
        pairs = _random_pairs(rng, 150)
        flat = ExecutionFingerprintDictionary()
        sharded = ShardedDictionary(self.N_SHARDS)
        for fp, label in pairs:
            flat.add(fp, label)
            sharded.add(fp, label)
        threads, specs = self._spawn(tmp_path, storage, n_hosts, sharded)
        try:
            remote = RemoteShardBackend(
                specs, n_shards=self.N_SHARDS, rng=random.Random(0)
            )

            def probe_mix(n_known=15, n_miss=15):
                known = [fp for fp, _ in flat.entries()]
                mix = [rng.choice(known) for _ in range(n_known)]
                mix += [_random_fingerprint(rng) for _ in range(n_miss)]
                return mix

            for _ in range(6):
                if rng.random() < 0.4:
                    for fp, label in _random_pairs(rng, rng.randrange(1, 4)):
                        flat.add(fp, label)
                        remote.add(fp, label)
                mix = probe_mix()
                assert remote.lookup_many(mix) == [
                    flat.lookup(fp) for fp in mix
                ]
                assert remote.last_degraded == {}
                verdicts = remote.probe_many(mix, counts=True)
                for fp, verdict in zip(mix, verdicts):
                    assert not verdict.degraded
                    assert (verdict.counts or {}) == flat.lookup_counts(fp)

            assert remote.labels() == flat.labels()
            assert remote.app_names() == flat.app_names()
            assert remote.metrics() == flat.metrics()
            assert remote.intervals() == flat.intervals()
            assert len(remote) == len(flat)

            # The engine's batch path over the remote store equals the
            # sequential matcher over the flat oracle (None entries are
            # nodes that produced no fingerprint).
            fingerprint_lists = []
            for _ in range(12):
                fps = probe_mix(n_known=2, n_miss=1)
                if rng.random() < 0.3:
                    fps.append(None)
                fingerprint_lists.append(fps)
            results, n_hits = match_fingerprints_batch(
                remote, fingerprint_lists
            )
            assert results == [
                match_fingerprints(flat, fps) for fps in fingerprint_lists
            ]
            assert n_hits == sum(
                1 for fps in fingerprint_lists for fp in fps
                if fp is not None and flat.lookup(fp)
            )
            remote.close()
        finally:
            for thread in threads:
                thread.stop()


class TestFilterSoundness:
    """The Bloom-filter properties the negative-lookup path rests on:
    no false negatives ever (through the store, including
    learn-while-serving overlay keys), and a false-positive rate under
    the configured bound at 1e-2 tolerance."""

    @pytest.mark.parametrize("storage", ("npz", "mmap"))
    def test_no_false_negatives_through_store(self, storage, tmp_path):
        flat, sharded, rng = _build_both(seed=77, n_shards=4)
        directory = str(tmp_path / storage)
        save_columnar(sharded, directory, storage=storage)
        store = load_columnar(directory)
        keys = [fp for fp, _ in flat.entries()]
        # Every stored key must resolve — cold (filters consulted) ...
        assert store.lookup_many(keys) == [flat.lookup(fp) for fp in keys]
        for fp in keys:
            assert fp in store
        # ... and keys learned after the base was built (delta-log
        # overlay) are checked before the filter, so they can never be
        # reported absent.
        fresh = []
        for _ in range(30):
            fp = _random_fingerprint(rng)
            flat.add(fp, "zz_Q")
            store.add(fp, "zz_Q")
            fresh.append(fp)
        for fp in fresh:
            assert fp in store
            assert store.lookup(fp) == flat.lookup(fp)
        assert store.lookup_many(fresh) == [flat.lookup(fp) for fp in fresh]

    def test_false_positive_rate_under_bound(self):
        import numpy as np

        from repro.engine.keyfilter import KeyFilter, key_hashes

        rng = np.random.default_rng(3)
        n = 20_000
        stored = key_hashes(
            rng.integers(0, 5, n),
            rng.integers(0, 3, n),
            rng.integers(0, 64, n),
            rng.integers(-(2 ** 62), 2 ** 62, n),
        )
        filt = KeyFilter.build(stored)
        assert bool(filt.might_contain(stored).all())  # zero false negatives
        # Absent keys by construction: a disjoint node range.
        absent = key_hashes(
            rng.integers(0, 5, n),
            rng.integers(0, 3, n),
            rng.integers(1_000, 2_000, n),
            rng.integers(-(2 ** 62), 2 ** 62, n),
        )
        rate = float(filt.might_contain(absent).mean())
        assert rate <= filt.fp_bound + 1e-2

    @pytest.mark.parametrize("bits_per_key", (6, 10, 14))
    def test_fp_rate_tracks_configured_bits(self, bits_per_key):
        import numpy as np

        from repro.engine.keyfilter import KeyFilter, key_hashes

        rng = np.random.default_rng(bits_per_key)
        n = 20_000
        stored = key_hashes(
            rng.integers(0, 8, n), rng.integers(0, 4, n),
            rng.integers(0, 128, n), rng.integers(0, 2 ** 62, n),
        )
        filt = KeyFilter.build(stored, bits_per_key=bits_per_key)
        assert bool(filt.might_contain(stored).all())
        absent = key_hashes(
            rng.integers(0, 8, n), rng.integers(0, 4, n),
            rng.integers(10_000, 20_000, n), rng.integers(0, 2 ** 62, n),
        )
        rate = float(filt.might_contain(absent).mean())
        assert rate <= filt.fp_bound + 1e-2


class TestVotePositionHook:
    def test_precomputed_position_equals_app_order(self):
        lookups = [["sp_X", "bt_X"], ["bt_X"], ["sp_X", "bt_X"], []]
        app_order = ["sp", "bt", "ft"]
        position = {app: i for i, app in enumerate(app_order)}
        assert vote(lookups, app_order=app_order) == vote(
            lookups, position=position
        )

    def test_tie_order_follows_position(self):
        lookups = [["sp_X", "bt_X"], ["sp_X", "bt_X"]]
        ranked, votes = vote(lookups, position={"bt": 0, "sp": 1})
        assert ranked == ("bt", "sp")
        assert votes == {"sp": 2, "bt": 2}


class TestValidation:
    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardedDictionary(0)
        with pytest.raises(ValueError):
            shard_index(
                Fingerprint("m", 0, (60.0, 120.0), 1.0), 0
            )

    def test_empty_dictionary_rejected(self):
        with pytest.raises(ValueError):
            BatchRecognizer(ShardedDictionary(4))

    def test_bad_depth_and_interval_rejected(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        with pytest.raises(ValueError):
            BatchRecognizer(recognizer.dictionary_, depth=0)
        with pytest.raises(ValueError):
            BatchRecognizer(
                recognizer.dictionary_, depth=2, interval=(120.0, 60.0)
            )

    def test_missing_metric_raises_keyerror(self, tiny_dataset):
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        engine = BatchRecognizer(
            recognizer.dictionary_, metric="no_such_metric", depth=2
        )
        with pytest.raises(KeyError, match="no telemetry"):
            engine.recognize_records(list(tiny_dataset)[:2])


class TestFamilyCascadeEquivalence:
    """The cascade equivalence matrix (hierarchical == flat, everywhere).

    Two disciplines, each replayed element-wise against every fine-tier
    backend — flat, sharded-JSON, columnar npz, columnar mmap, and the
    remote fan-out client — under interleaved learns *through the
    cascade*:

    - **degenerate**: singleton families plus ``coarse == fine`` depth
      collapse the hierarchy; every verdict must equal flat recognition
      outright (same MatchResult, same ranking, a ``match`` exactly when
      flat recognized, and ``near-family`` can never fire because the
      coarse tier holds exactly the fine keys);
    - **real families**: versioned labels (``ft-1.0_X``); the fine-tier
      result must *still* equal the flat oracle (coarse pruning only
      skips guaranteed misses), and a match verdict's family is always
      the spec's family of the winning variant, backed by coarse votes.
    """

    N_SHARDS = 3

    # -- script generation --------------------------------------------------
    def _label(self, rng, versioned):
        app = rng.choice(_APPS)
        if versioned:
            app = f"{app}-{rng.choice(('1.0', '2.0'))}"
        return f"{app}_{rng.choice(_INPUTS)}"

    def _script(self, seed, versioned, n_base=150, n_rounds=4):
        """Base pairs + per-round (learns, probes, expected-flat) replay.

        Expectations come from a private flat oracle advanced through
        the same learns, so every backend replays one deterministic
        script and is compared to identical flat results.
        """
        from repro.core.matcher import match_fingerprints

        rng = random.Random(seed)
        base = [
            (_random_fingerprint(rng), self._label(rng, versioned))
            for _ in range(n_base)
        ]
        oracle = ExecutionFingerprintDictionary()
        for fp, label in base:
            oracle.add(fp, label)
        known = [fp for fp, _ in base]
        rounds = []
        for _ in range(n_rounds):
            learns = []
            for _ in range(rng.randrange(0, 3)):
                label = self._label(rng, versioned)
                fps = [
                    None if rng.random() < 0.2 else _random_fingerprint(rng)
                    for _ in range(rng.randrange(1, 5))
                ]
                learns.append((label, fps))
                for fp in fps:
                    if fp is not None:
                        oracle.add(fp, label)
                        known.append(fp)
            probe_lists = []
            for _ in range(10):
                fps = []
                for _ in range(rng.randrange(1, 6)):
                    roll = rng.random()
                    if roll < 0.15:
                        fps.append(None)
                    elif roll < 0.45:
                        fps.append(_random_fingerprint(rng))
                    else:
                        fps.append(rng.choice(known))
                probe_lists.append(fps)
            expected = [match_fingerprints(oracle, fps) for fps in probe_lists]
            rounds.append((learns, probe_lists, expected))
        return base, rounds

    # -- the five fine-tier backends ----------------------------------------
    def _stores(self, base, tmp_path):
        """Every backend loaded from one snapshot of the base pairs.

        Returns ``(stores, closers)``; callers must run the closers
        (remote client + shard server threads) in a finally block.
        """
        from repro.engine import load_sharded, save_sharded
        from repro.engine.remote import RemoteShardBackend, ShardServerThread

        flat = ExecutionFingerprintDictionary()
        sharded = ShardedDictionary(self.N_SHARDS)
        for fp, label in base:
            flat.add(fp, label)
            sharded.add(fp, label)
        json_dir = str(tmp_path / "json")
        save_sharded(sharded, json_dir)
        col_dir = str(tmp_path / "col")
        save_columnar(sharded, col_dir)
        mmap_dir = str(tmp_path / "mmap")
        save_columnar(sharded, mmap_dir, storage="mmap")

        threads, specs = [], []
        for k in range(2):
            directory = str(tmp_path / f"host{k}")
            save_columnar(sharded, directory)
            owned = [s for s in range(self.N_SHARDS) if s % 2 == k]
            thread = ShardServerThread(
                load_columnar(directory), n_shards=self.N_SHARDS,
                shards=owned,
            ).start()
            threads.append(thread)
            specs.append(
                f"{','.join(str(s) for s in owned)}@{thread.endpoint}"
            )
        remote = RemoteShardBackend(
            specs, n_shards=self.N_SHARDS, rng=random.Random(0)
        )
        stores = {
            "flat": flat,
            "sharded-json": load_sharded(json_dir),
            "columnar": load_columnar(col_dir),
            "columnar-mmap": load_columnar(mmap_dir),
            "remote": remote,
        }
        closers = [remote.close] + [t.stop for t in threads]
        return stores, closers

    # -- replay -------------------------------------------------------------
    def _replay(self, cascade, rounds, check):
        for learns, probe_lists, expected in rounds:
            for label, fps in learns:
                cascade.learn(fps, label)
            verdicts = cascade.cascade_match(probe_lists)
            assert len(verdicts) == len(expected)
            for fps, verdict, flat_result in zip(
                probe_lists, verdicts, expected
            ):
                assert verdict.match == flat_result
                check(verdict, flat_result)

    def test_degenerate_config_equals_flat_recognition(self, tmp_path):
        from repro.family import FamilyCascade, FamilySpec

        base, rounds = self._script(seed=4321, versioned=False)
        stores, closers = self._stores(base, tmp_path)
        try:
            for name, store in stores.items():
                cascade = FamilyCascade(
                    store,
                    spec=FamilySpec.singleton(store.app_names()),
                    coarse_depth=3,
                    fine_depth=3,
                )

                def check(verdict, flat_result, name=name):
                    # Collapsed hierarchy: the verdict IS flat
                    # recognition, relabeled.
                    assert verdict.outcome != "near-family", name
                    if flat_result.prediction is not None:
                        assert verdict.outcome == "match", name
                        assert verdict.family == flat_result.prediction, name
                        assert verdict.variant == flat_result.prediction, name
                        assert verdict.family_ranked == flat_result.ranked, name
                        assert verdict.family_votes == flat_result.votes, name
                    else:
                        assert verdict.outcome == "unknown", name
                        assert verdict.family is None, name

                self._replay(cascade, rounds, check)
        finally:
            for close in closers:
                close()

    def test_real_families_fine_match_stays_inside_coarse_family(
        self, tmp_path
    ):
        from repro.family import FamilyCascade, FamilySpec

        base, rounds = self._script(seed=8765, versioned=True)
        stores, closers = self._stores(base, tmp_path)
        try:
            for name, store in stores.items():
                spec = FamilySpec.from_apps(store.app_names())
                cascade = FamilyCascade(
                    store, spec=spec, coarse_depth=1, fine_depth=3
                )

                def check(verdict, flat_result, name=name, spec=spec):
                    if verdict.outcome == "match":
                        assert verdict.variant == flat_result.prediction, name
                        family = spec.family_of_app(verdict.variant)
                        assert verdict.family == family, name
                        # The property the coarse tier's containment
                        # guarantees: a full-depth winner always sits in
                        # a family the coarse tier voted for.
                        assert family in verdict.family_votes, name
                        assert verdict.family_votes[family] > 0, name
                    else:
                        # Coarse pruning is sound: it never suppressed
                        # a fine-tier hit.
                        assert flat_result.prediction is None, name
                    if verdict.outcome == "unknown":
                        assert verdict.family_votes == {}, name

                self._replay(cascade, rounds, check)
        finally:
            for close in closers:
                close()
