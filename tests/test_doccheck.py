"""Doc health is part of tier-1: broken cross-links or examples that no
longer import cleanly fail the suite, not just `make docs-check`."""

from __future__ import annotations

import os
import textwrap

import pytest

from repro._util import doccheck

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestThisRepo:
    def test_repo_docs_and_examples_are_healthy(self, capsys):
        assert doccheck.main(["--root", REPO_ROOT]) == 0
        out = capsys.readouterr().out
        assert "doccheck: OK" in out

    def test_readme_and_docs_are_discovered(self):
        found = [os.path.basename(p) for p in doccheck.markdown_files(REPO_ROOT)]
        assert "README.md" in found
        assert "architecture.md" in found
        assert "cli.md" in found

    def test_examples_are_discovered(self):
        names = [os.path.basename(p) for p in doccheck.example_files(REPO_ROOT)]
        assert "quickstart.py" in names
        assert "live_serving.py" in names


class TestSlugs:
    @pytest.mark.parametrize("heading, slug", [
        ("Install", "install"),
        ("Package map", "package-map"),
        ("`efd serve` — async live-session recognition",
         "efd-serve--async-live-session-recognition"),
        ("Doc and example health: `python -m repro._util.doccheck`",
         "doc-and-example-health-python--m-repro_utildoccheck"),
    ])
    def test_github_slug(self, heading, slug):
        assert doccheck.github_slug(heading) == slug


class TestLinkChecking:
    def _write(self, root, rel, text):
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(textwrap.dedent(text))

    def test_clean_tree_passes(self, tmp_path):
        root = str(tmp_path)
        self._write(root, "README.md", """\
            # Top
            See [docs](docs/guide.md) and [section](docs/guide.md#deep-dive).
            External [link](https://example.com/x) is not fetched.
        """)
        self._write(root, "docs/guide.md", """\
            # Guide
            ## Deep dive
            Back to [readme](../README.md#top).
        """)
        assert doccheck.check_links(root) == []

    def test_broken_file_link_reported(self, tmp_path):
        root = str(tmp_path)
        self._write(root, "README.md", "[gone](docs/missing.md)\n")
        problems = doccheck.check_links(root)
        assert len(problems) == 1
        assert "missing.md" in problems[0]

    def test_broken_anchor_reported(self, tmp_path):
        root = str(tmp_path)
        self._write(root, "README.md", "[x](docs/guide.md#nope)\n")
        self._write(root, "docs/guide.md", "# Only heading\n")
        problems = doccheck.check_links(root)
        assert len(problems) == 1
        assert "#nope" in problems[0]

    def test_links_inside_code_fences_ignored(self, tmp_path):
        root = str(tmp_path)
        self._write(root, "README.md", """\
            # Top
            ```
            [not a real link](nowhere.md)
            ```
        """)
        assert doccheck.check_links(root) == []


class TestExampleChecking:
    def _example(self, root, name, source):
        path = os.path.join(root, "examples", name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(textwrap.dedent(source))
        return path

    def test_good_example_passes(self, tmp_path):
        path = self._example(str(tmp_path), "ok.py", """\
            from repro import EFDRecognizer
            import repro.serve
        """)
        assert doccheck.check_example_imports(path) == []

    def test_stale_name_reported(self, tmp_path):
        path = self._example(str(tmp_path), "stale.py", """\
            from repro import ThisWasRenamedLongAgo
        """)
        problems = doccheck.check_example_imports(path)
        assert len(problems) == 1
        assert "ThisWasRenamedLongAgo" in problems[0]

    def test_missing_module_reported(self, tmp_path):
        path = self._example(str(tmp_path), "gone.py", """\
            import repro.no_such_subsystem
        """)
        problems = doccheck.check_example_imports(path)
        assert len(problems) == 1
        assert "no_such_subsystem" in problems[0]

    def test_syntax_error_reported(self, tmp_path):
        path = self._example(str(tmp_path), "broken.py", "def nope(:\n")
        problems = doccheck.check_example_imports(path)
        assert len(problems) == 1
        assert "does not compile" in problems[0]
