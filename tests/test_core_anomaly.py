import numpy as np
import pytest

from repro.core.anomaly import DeviationDetector
from repro.core.recognizer import EFDRecognizer
from repro.data.dataset import ExecutionRecord
from repro.telemetry.timeseries import TimeSeries


def _detector(dataset, threshold=2.0, depth=2):
    recognizer = EFDRecognizer(depth=depth).fit(dataset)
    return DeviationDetector(
        recognizer.dictionary_, depth=depth, threshold_buckets=threshold
    )


def _synthetic_record(level, app="ft", inp="X", n=150, n_nodes=4):
    telemetry = {
        ("nr_mapped_vmstat", node): TimeSeries(np.full(n, float(level)))
        for node in range(n_nodes)
    }
    return ExecutionRecord(12345, app, inp, n_nodes, float(n), telemetry)


class TestDeviationDetector:
    def test_normal_executions_pass(self, tiny_dataset):
        detector = _detector(tiny_dataset)
        for record in list(tiny_dataset)[:8]:
            report = detector.check(record)
            assert not report.is_anomalous, str(report)
            assert report.max_distance < 2.0

    def test_shifted_execution_flagged(self, tiny_dataset):
        detector = _detector(tiny_dataset)
        # A "ft" run whose footprint is 3x the learned level: leaking
        # memory, wrong deck, or not actually ft.
        rogue = _synthetic_record(18000.0, app="ft")
        report = detector.check(rogue)
        assert report.is_anomalous
        assert set(report.anomalous_nodes()) == {0, 1, 2, 3}

    def test_single_degraded_node_flagged(self, tiny_dataset):
        detector = _detector(tiny_dataset)
        record = list(tiny_dataset)[0]
        telemetry = dict(record.telemetry)
        # Node 2 runs 40% hot; other nodes are untouched references.
        hot = telemetry[("nr_mapped_vmstat", 2)].values * 1.4
        telemetry[("nr_mapped_vmstat", 2)] = TimeSeries(hot)
        degraded = ExecutionRecord(
            777, record.app_name, record.input_size, record.n_nodes,
            record.duration, telemetry,
        )
        report = detector.check(degraded)
        assert report.is_anomalous
        assert report.anomalous_nodes() == [2]

    def test_distance_in_bucket_units(self, tiny_dataset):
        detector = _detector(tiny_dataset)
        # ft learned near 6000; a 6300 run is 3 depth-2 buckets away.
        report = detector.check(_synthetic_record(6300.0, app="ft"))
        assert report.max_distance == pytest.approx(3.0, abs=0.6)

    def test_check_against_declared_app(self, tiny_dataset):
        detector = _detector(tiny_dataset)
        # An execution labeled CoMD (learned near 8810) but fed ft-level
        # telemetry: checking against the declared app must flag it.
        liar = _synthetic_record(6000.0, app="CoMD")
        report = detector.check(liar, app="CoMD")
        assert report.is_anomalous
        # ... while checking against ft passes.
        assert not detector.check(liar, app="ft").is_anomalous

    def test_unknown_app_rejected(self, tiny_dataset):
        detector = _detector(tiny_dataset)
        with pytest.raises(KeyError, match="no fingerprints"):
            detector.check(_synthetic_record(1.0, app="hpl"))

    def test_missing_telemetry_window_is_anomalous(self, tiny_dataset):
        detector = _detector(tiny_dataset)
        short = _synthetic_record(6000.0, app="ft", n=50)  # ends before 60 s
        report = detector.check(short)
        assert report.is_anomalous
        assert all(not n.has_reference for n in report.nodes)

    def test_validation(self, tiny_dataset):
        from repro.core.dictionary import ExecutionFingerprintDictionary

        with pytest.raises(ValueError):
            DeviationDetector(ExecutionFingerprintDictionary())
        recognizer = EFDRecognizer(depth=2).fit(tiny_dataset)
        with pytest.raises(ValueError):
            DeviationDetector(recognizer.dictionary_, threshold_buckets=0.0)
        with pytest.raises(ValueError):
            DeviationDetector(recognizer.dictionary_, depth=0)

    def test_report_str(self, tiny_dataset):
        detector = _detector(tiny_dataset)
        report = detector.check(list(tiny_dataset)[0])
        assert "normal" in str(report)
        rogue = detector.check(_synthetic_record(18000.0, app="ft"))
        assert "ANOMALOUS" in str(rogue)
