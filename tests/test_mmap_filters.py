"""Unit tests for the mmap shard codec and the negative-lookup filters.

The property suite (``tests/test_engine_properties.py``) pins the
behavioral equivalence of the mmap storage; this file pins the codec
mechanics: byte layout, zero-copy mapping, named structural errors,
filter serialization, and the storage-conversion paths of
``compact_shards(layout=...)``.  The crash-interruption cases live in
``tests/test_faultinject.py``.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.core.serialization import (
    COLUMN_DTYPES,
    COLUMN_NAMES,
    column_lengths,
    dictionary_to_columns,
)
from repro.engine import (
    ShardedDictionary,
    compact_shards,
    load_columnar,
    save_columnar,
)
from repro.engine.keyfilter import (
    DEFAULT_BITS_PER_KEY,
    KeyFilter,
    filter_filename,
    key_hashes,
)
from repro.engine.mmapstore import (
    MmapShardFile,
    mmap_filename,
    write_mmap_shard,
)


def _fp(i: int) -> Fingerprint:
    return Fingerprint(
        metric=f"m{i % 3}",
        node=i % 5,
        interval=(float(i % 4) * 60.0, float(i % 4) * 60.0 + 60.0),
        value=float(i) * 100.0,
    )


def _sample_columns(n: int = 40):
    efd = ExecutionFingerprintDictionary()
    for i in range(n):
        efd.add(_fp(i), f"app{i % 6}_X")
    return dictionary_to_columns(efd, {}, {}, {})


def _sharded(n: int = 120, n_shards: int = 4) -> ShardedDictionary:
    sharded = ShardedDictionary(n_shards)
    for i in range(n):
        sharded.add(_fp(i), f"app{i % 6}_X")
    return sharded


class TestMmapShardCodec:
    def test_round_trip_exact(self, tmp_path):
        columns = _sample_columns()
        path = str(tmp_path / "shard-00.mmap")
        checksum = write_mmap_shard(path, columns)
        shard = MmapShardFile(
            path, "shard-00.mmap", checksum, len(columns["node"])
        )
        loaded = shard.columns()
        for name in COLUMN_NAMES:
            np.testing.assert_array_equal(loaded[name], columns[name])
            assert loaded[name].dtype in (np.int64, np.float64)

    def test_columns_are_views_over_one_mapping(self, tmp_path):
        # The zero-copy contract: every column is a view into the one
        # shared memmap, not a private decompressed copy.
        columns = _sample_columns()
        path = str(tmp_path / "shard-00.mmap")
        checksum = write_mmap_shard(path, columns)
        shard = MmapShardFile(
            path, "shard-00.mmap", checksum, len(columns["node"])
        )
        loaded = shard.columns()
        for name in COLUMN_NAMES:
            assert loaded[name].base is shard._mm

    def test_value_bits_round_trip(self, tmp_path):
        # -0.0 and subnormals survive the raw layout bit-exactly.
        columns = _sample_columns(8)
        columns["value"] = np.array(
            [-0.0, 0.0, 5e-324, -5e-324, 1.5, -1.5, 2.0, 3.0]
        )
        path = str(tmp_path / "s.mmap")
        checksum = write_mmap_shard(path, columns)
        shard = MmapShardFile(path, "s.mmap", checksum, 8)
        got = shard.columns()["value"]
        assert got.tobytes() == columns["value"].tobytes()

    def test_total_size_is_pure_function_of_header(self, tmp_path):
        columns = _sample_columns()
        path = str(tmp_path / "s.mmap")
        write_mmap_shard(path, columns)
        lengths = column_lengths(
            len(columns["node"]),
            len(columns["label_ids"]),
            len(columns["label_order"]),
        )
        payload = sum(
            lengths[name] * np.dtype(COLUMN_DTYPES[name]).itemsize
            for name in COLUMN_NAMES
        )
        size = os.path.getsize(path)
        assert size >= payload
        assert size % 64 == 0  # every column (and the tail) is aligned

    def test_missing_file_named(self, tmp_path):
        shard = MmapShardFile(
            str(tmp_path / "gone.mmap"), "gone.mmap", None, 3
        )
        with pytest.raises(FileNotFoundError, match="gone.mmap"):
            shard.columns()

    def test_truncated_file_named(self, tmp_path):
        columns = _sample_columns()
        path = str(tmp_path / "s.mmap")
        checksum = write_mmap_shard(path, columns)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        shard = MmapShardFile(path, "s.mmap", checksum, len(columns["node"]))
        with pytest.raises(ValueError, match="truncated"):
            shard.columns()

    def test_bad_magic_named(self, tmp_path):
        columns = _sample_columns()
        path = str(tmp_path / "s.mmap")
        checksum = write_mmap_shard(path, columns)
        data = bytearray(open(path, "rb").read())
        data[:8] = b"NOTMAGIC"
        open(path, "wb").write(bytes(data))
        shard = MmapShardFile(path, "s.mmap", checksum, len(columns["node"]))
        with pytest.raises(ValueError, match="bad magic"):
            shard.columns()

    def test_key_count_mismatch_named(self, tmp_path):
        columns = _sample_columns()
        path = str(tmp_path / "s.mmap")
        checksum = write_mmap_shard(path, columns)
        shard = MmapShardFile(path, "s.mmap", checksum, 999)
        with pytest.raises(ValueError, match="manifest expects 999"):
            shard.columns()

    def test_bit_flip_fails_checksum(self, tmp_path):
        columns = _sample_columns()
        path = str(tmp_path / "s.mmap")
        checksum = write_mmap_shard(path, columns)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0x40  # one flipped bit mid-payload
        open(path, "wb").write(bytes(data))
        shard = MmapShardFile(path, "s.mmap", checksum, len(columns["node"]))
        with pytest.raises(ValueError, match="checksum"):
            shard.columns()

    def test_generation_suffix_naming(self):
        assert mmap_filename(3) == "shard-03.mmap"
        assert mmap_filename(3, generation=2) == "shard-03.g2.mmap"
        assert filter_filename(3) == "shard-03.filter"
        assert filter_filename(3, generation=2) == "shard-03.g2.filter"


class TestKeyFilterCodec:
    def test_bytes_round_trip(self):
        hashes = key_hashes(
            np.arange(100), np.arange(100) % 3,
            np.arange(100) % 7, np.arange(100) * 17,
        )
        filt = KeyFilter.build(hashes, bits_per_key=8)
        back = KeyFilter.from_bytes(filt.to_bytes())
        assert np.array_equal(back.words, filt.words)
        assert back.n_hashes == filt.n_hashes
        assert back.n_keys == filt.n_keys
        assert bool(back.might_contain(hashes).all())

    def test_empty_filter_answers_absent(self):
        filt = KeyFilter.build(np.empty(0, dtype=np.uint64))
        probes = key_hashes(
            np.arange(10), np.zeros(10), np.zeros(10), np.arange(10)
        )
        assert not filt.might_contain(probes).any()
        back = KeyFilter.from_bytes(filt.to_bytes())
        assert not back.might_contain(probes).any()

    def test_truncated_header_named(self):
        with pytest.raises(ValueError, match="truncated header"):
            KeyFilter.from_bytes(b"EFD", name="shard-00.filter")

    def test_bad_magic_named(self):
        filt = KeyFilter.build(np.arange(5, dtype=np.uint64))
        data = b"XXXXXXXX" + filt.to_bytes()[8:]
        with pytest.raises(ValueError, match="bad magic"):
            KeyFilter.from_bytes(data, name="shard-00.filter")

    def test_truncated_words_named(self):
        filt = KeyFilter.build(np.arange(64, dtype=np.uint64))
        with pytest.raises(ValueError, match="header implies"):
            KeyFilter.from_bytes(filt.to_bytes()[:-8], name="f")

    def test_probe_hash_matches_stored_hash(self):
        # A probe built from scalar components hashes identically to
        # the stored row built from arrays — the property that lets
        # the store test probes against per-shard filters at all.
        stored = key_hashes(
            np.array([4]), np.array([2]), np.array([7]),
            np.array([123456789]),
        )
        probe = key_hashes(
            np.array([4], dtype=np.int64), np.array([2], dtype=np.int64),
            np.array([7], dtype=np.int64),
            np.array([123456789], dtype=np.int64),
        )
        assert stored[0] == probe[0]


class TestStoreLevelFilters:
    @pytest.mark.parametrize("storage", ("npz", "mmap"))
    def test_missing_filter_file_named_at_load(self, storage, tmp_path):
        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory, storage=storage)
        victim = next(
            f for f in sorted(os.listdir(directory)) if f.endswith(".filter")
        )
        os.remove(os.path.join(directory, victim))
        with pytest.raises(FileNotFoundError, match=victim):
            load_columnar(directory)

    @pytest.mark.parametrize("storage", ("npz", "mmap"))
    def test_corrupt_filter_file_named_at_load(self, storage, tmp_path):
        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory, storage=storage)
        victim = next(
            f for f in sorted(os.listdir(directory)) if f.endswith(".filter")
        )
        path = os.path.join(directory, victim)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(ValueError, match=victim):
            load_columnar(directory)

    @pytest.mark.parametrize("storage", ("npz", "mmap"))
    def test_missing_hash_index_named_at_load(self, storage, tmp_path):
        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory, storage=storage)
        victim = next(
            f for f in sorted(os.listdir(directory)) if f.endswith(".hashidx")
        )
        os.remove(os.path.join(directory, victim))
        with pytest.raises(FileNotFoundError, match=victim):
            load_columnar(directory)

    @pytest.mark.parametrize("storage", ("npz", "mmap"))
    def test_corrupt_hash_index_named_at_first_scan(self, storage, tmp_path):
        # The hash index reads lazily — open stays O(manifest) — so the
        # damage surfaces, by name, on the first filter-passing probe.
        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory, storage=storage)
        victim = next(
            f for f in sorted(os.listdir(directory)) if f.endswith(".hashidx")
        )
        path = os.path.join(directory, victim)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        open(path, "wb").write(bytes(data))
        store = load_columnar(directory)
        with pytest.raises(ValueError, match="checksum|corrupt"):
            store.lookup_many([_fp(i) for i in range(120)])

    def test_filterless_save_and_preservation(self, tmp_path):
        # filters=False writes the pre-filter manifest shape; folding
        # its delta-log keeps it filterless rather than upgrading.
        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory, filters=False)
        store = load_columnar(directory)
        assert store.filter_info() is None
        store.add(_fp(10_001), "late_X")
        compact_shards(directory)
        store = load_columnar(directory)
        assert store.filter_info() is None
        assert store.lookup(_fp(10_001)) == ["late_X"]

    @pytest.mark.parametrize("storage", ("npz", "mmap"))
    def test_unknown_metric_batch_reads_no_columns(self, storage, tmp_path):
        # Probes whose metric/interval was never learned short-circuit
        # before hashing — guaranteed zero column reads.
        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory, storage=storage)
        store = load_columnar(directory)
        misses = [
            Fingerprint("never_learned", i % 4, (0.0, 60.0), float(i))
            for i in range(200)
        ]
        assert store.lookup_many(misses) == [[] for _ in misses]
        assert not any(shard.hydrated for shard in store.shards)
        assert all(f._columns is None for f in store._files)
        assert store._full_index is None

    @pytest.mark.parametrize("storage", ("npz", "mmap"))
    def test_all_miss_batch_stays_lazy(self, storage, tmp_path):
        # Known-metric misses resolve through the filters; the rare
        # false positive falls through to the exact hash-scan (which
        # may read columns) but never hydrates per-shard dicts or
        # builds the full rank-packed index.
        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory, storage=storage)
        store = load_columnar(directory)
        misses = [_fp(i) for i in range(50_000, 50_200)]
        assert store.lookup_many(misses) == [[] for _ in misses]
        assert not any(shard.hydrated for shard in store.shards)
        assert store._full_index is None

    @pytest.mark.parametrize("storage", ("npz", "mmap"))
    def test_small_hit_batch_stays_lazy(self, storage, tmp_path):
        # A few filter-surviving probes resolve via the hash-scan
        # without paying the full rank-packed index build.
        directory = str(tmp_path / "efd")
        sharded = _sharded()
        save_columnar(sharded, directory, storage=storage)
        store = load_columnar(directory)
        probes = [_fp(3), _fp(50_000), _fp(7)]
        assert store.lookup_many(probes) == [
            sharded.lookup(fp) for fp in probes
        ]
        assert store._full_index is None

    def test_filter_info_shape(self, tmp_path):
        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory)
        info = load_columnar(directory).filter_info()
        assert info["bits_per_key"] == DEFAULT_BITS_PER_KEY
        assert info["n_shards"] == 4
        assert info["n_keys"] == 120
        assert 0.0 < info["fp_bound"] < 0.05

    def test_filter_count_mismatch_rejected(self, tmp_path):
        import json

        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["filters"]["shards"] = manifest["filters"]["shards"][:-1]
        json.dump(manifest, open(manifest_path, "w"))
        with pytest.raises(ValueError, match="filter"):
            load_columnar(directory)


class TestStorageConversion:
    def test_npz_to_mmap_and_back(self, tmp_path):
        directory = str(tmp_path / "efd")
        sharded = _sharded()
        save_columnar(sharded, directory, storage="npz")
        summary = compact_shards(directory, layout="mmap")
        assert summary["storage"] == "mmap"
        names = sorted(os.listdir(directory))
        assert not any(n.startswith("shard") and n.endswith(".npz")
                       for n in names)
        assert any(n.endswith(".mmap") for n in names)
        store = load_columnar(directory)
        assert store.storage == "mmap"
        assert list(store.entries()) == list(sharded.entries())
        summary = compact_shards(directory, layout="npz")
        assert summary["storage"] == "npz"
        store = load_columnar(directory)
        assert store.storage == "npz"
        assert list(store.entries()) == list(sharded.entries())

    def test_conversion_to_out_leaves_source(self, tmp_path):
        src = str(tmp_path / "src")
        dst = str(tmp_path / "dst")
        save_columnar(_sharded(), src, storage="npz")
        before = sorted(os.listdir(src))
        compact_shards(src, out=dst, layout="mmap")
        assert sorted(os.listdir(src)) == before
        assert load_columnar(dst).storage == "mmap"

    def test_noop_conversion_refused(self, tmp_path):
        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory, storage="mmap")
        with pytest.raises(ValueError, match="already columnar"):
            compact_shards(directory, layout="mmap")

    def test_unknown_layout_rejected(self, tmp_path):
        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory)
        with pytest.raises(ValueError, match="unknown columnar storage"):
            compact_shards(directory, layout="zip")

    def test_conversion_folds_pending_log(self, tmp_path):
        directory = str(tmp_path / "efd")
        save_columnar(_sharded(), directory, storage="npz")
        store = load_columnar(directory)
        late = _fp(70_000)
        store.add(late, "late_X")
        summary = compact_shards(directory, layout="mmap")
        assert summary["folded_records"] == 1
        store = load_columnar(directory)
        assert store.delta_pending == 0
        assert store.lookup(late) == ["late_X"]

    def test_json_to_mmap_direct(self, tmp_path):
        from repro.engine import save_sharded

        directory = str(tmp_path / "efd")
        sharded = _sharded()
        save_sharded(sharded, directory)
        summary = compact_shards(directory, layout="mmap")
        assert summary["storage"] == "mmap"
        store = load_columnar(directory)
        assert store.storage == "mmap"
        assert list(store.entries()) == list(sharded.entries())

    @pytest.mark.parametrize("storage", ("npz", "mmap"))
    def test_expand_removes_all_sidecars(self, storage, tmp_path):
        from repro.engine import expand_shards, load_sharded

        directory = str(tmp_path / "efd")
        sharded = _sharded()
        save_columnar(sharded, directory, storage=storage)
        expand_shards(directory)
        leftovers = [
            f for f in os.listdir(directory)
            if f.endswith((".npz", ".mmap", ".filter"))
        ]
        assert leftovers == []
        assert list(load_sharded(directory).entries()) == list(
            sharded.entries()
        )
