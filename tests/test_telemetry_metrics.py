import pytest

from repro.telemetry.metrics import (
    PAPER_METRIC,
    REGISTRY_SIZE,
    TABLE3_METRICS,
    MetricRegistry,
    MetricSpec,
    default_registry,
)


class TestMetricSpec:
    def test_valid_spec(self):
        spec = MetricSpec(name="x_vmstat", group="vmstat")
        assert spec.kind == "gauge"

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            MetricSpec(name="x", group="g", kind="counter")

    def test_rejects_bad_archetype(self):
        with pytest.raises(ValueError, match="archetype"):
            MetricSpec(name="x", group="g", archetype="sawtooth")

    def test_rejects_out_of_range_discriminative(self):
        with pytest.raises(ValueError):
            MetricSpec(name="x", group="g", discriminative=1.5)

    def test_rejects_non_positive_magnitude(self):
        with pytest.raises(ValueError):
            MetricSpec(name="x", group="g", magnitude=0.0)


class TestDefaultRegistry:
    def test_has_exactly_562_metrics(self):
        assert len(default_registry()) == REGISTRY_SIZE == 562

    def test_cached_instance(self):
        assert default_registry() is default_registry()

    def test_contains_every_paper_metric(self):
        registry = default_registry()
        for name in TABLE3_METRICS:
            assert name in registry, name

    def test_paper_metric_is_most_discriminative(self):
        spec = default_registry().get(PAPER_METRIC)
        assert spec.discriminative == 1.0

    def test_table3_ordering_reflected_in_discriminative(self):
        registry = default_registry()
        scores = [registry.get(m).discriminative for m in TABLE3_METRICS]
        assert scores == sorted(scores, reverse=True)

    def test_groups_cover_ldms_families(self):
        groups = set(default_registry().groups())
        assert {"vmstat", "meminfo", "metric_set_nic", "lustre", "procstat"} <= groups

    def test_names_unique(self):
        names = default_registry().names()
        assert len(names) == len(set(names))

    def test_get_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="nr_mapped"):
            default_registry().get("nr_mapped")  # missing group suffix

    def test_by_group_unknown_raises(self):
        with pytest.raises(KeyError):
            default_registry().by_group("gpu")

    def test_top_metrics_starts_with_paper_metric(self):
        top = default_registry().top_metrics(4)
        assert top[0].name == PAPER_METRIC
        assert all(s.discriminative == 1.0 for s in top)

    def test_subset_preserves_order(self):
        registry = default_registry()
        sub = registry.subset(["Active_meminfo", "nr_mapped_vmstat"])
        assert sub.names() == ["Active_meminfo", "nr_mapped_vmstat"]

    def test_constant_system_metrics_not_discriminative(self):
        spec = default_registry().get("MemTotal_meminfo")
        assert spec.discriminative == 0.0

    def test_duplicate_names_rejected(self):
        spec = MetricSpec(name="dup", group="g")
        with pytest.raises(ValueError, match="duplicate"):
            MetricRegistry([spec, spec])
