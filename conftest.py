"""Repo-level pytest wiring: keep benchmarks out of tier-1.

Every file under ``benchmarks/`` is auto-marked ``bench`` and deselected
from a plain ``pytest -x -q`` run (the tier-1 gate), keeping the fast
correctness suite fast.  Benchmarks run explicitly with::

    pytest benchmarks -m bench

Passing any ``-m`` expression disables the auto-deselection — marker
filtering is then fully under the caller's control.
"""

from __future__ import annotations

import os

import pytest

_BENCH_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "benchmarks")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench: long-running benchmark (excluded from tier-1; run with "
        "`pytest benchmarks -m bench`)",
    )


def pytest_collection_modifyitems(config, items):
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR + os.sep):
            item.add_marker(pytest.mark.bench)
    if config.getoption("-m"):
        return  # caller is steering marker selection explicitly
    kept = [i for i in items if not i.get_closest_marker("bench")]
    deselected = [i for i in items if i.get_closest_marker("bench")]
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = kept
